"""Benchmark harness package.

Being a package lets the bench modules share ``conftest.py`` constants
via ``from .conftest import ...`` when invoked by file path (pytest
then imports them package-aware), e.g.::

    pytest benchmarks/bench_fig2_sparse_vs_gaussian.py -q
"""
