"""Design-choice ablations: wavelet basis, decomposition depth, quantizer.

These back the defaults DESIGN.md commits to (db4, 5 levels, shift 4)
with measurements:

- wavelet family sweep: db4-class bases capture ECG energy in fewer
  coefficients than Haar, which shows up directly as reconstruction SNR;
- depth sweep: shallow decompositions waste the coarse band;
- quantizer-shift sweep: the rate/distortion/saturation triangle behind
  the ``shift = 4`` default.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    render_table,
    run_level_ablation,
    run_quantizer_ablation,
    run_wavelet_ablation,
)
from repro.wavelet import WaveletTransform


@pytest.fixture(scope="module")
def wavelet_rows(bench_database):
    return run_wavelet_ablation(
        wavelets=("haar", "db2", "db4", "db8", "sym4", "sym8"),
        records=("100", "119"),
        packets_per_record=5,
        database=bench_database,
    )


@pytest.fixture(scope="module")
def quantizer_rows(bench_database):
    return run_quantizer_ablation(
        shifts=(0, 2, 3, 4, 5, 6), packets=8, database=bench_database
    )


def test_wavelet_ablation(wavelet_rows, benchmark, bench_database, bench_json):
    transform = WaveletTransform(512, "db4", 5)
    import numpy as np

    x = np.random.default_rng(0).standard_normal(512)
    benchmark(transform.forward, x)

    print("\n" + render_table(wavelet_rows, title="wavelet family ablation"))
    by_name = {row["wavelet"]: row for row in wavelet_rows}
    benchmark.extra_info["db4_snr"] = round(by_name["db4"]["snr_db"], 2)
    benchmark.extra_info["haar_snr"] = round(by_name["haar"]["snr_db"], 2)

    assert (
        by_name["db4"]["sparsity_50_capture"]
        > by_name["haar"]["sparsity_50_capture"]
    )
    assert by_name["db4"]["snr_db"] >= by_name["haar"]["snr_db"] - 0.5
    bench_json(
        "ablation_design",
        params={"records": ["100", "119"], "packets_per_record": 5},
        rows=wavelet_rows,
    )


def test_level_ablation(benchmark, bench_database):
    rows = run_level_ablation(
        levels=(2, 3, 4, 5, 6),
        records=("100",),
        packets_per_record=5,
        database=bench_database,
    )

    transform = WaveletTransform(512, "db4", 5)
    import numpy as np

    c = np.random.default_rng(1).standard_normal(512)
    benchmark(transform.inverse, c)

    print("\n" + render_table(rows, title="decomposition-depth ablation"))
    by_depth = {int(row["levels"]): row["snr_db"] for row in rows}
    assert by_depth[5] > by_depth[2] - 0.5


def test_quantizer_ablation(quantizer_rows, benchmark):
    from repro.core import MeasurementQuantizer
    import numpy as np

    quantizer = MeasurementQuantizer(shift=4, d=12)
    y = np.random.default_rng(2).integers(-4000, 4000, size=256)
    benchmark(quantizer.quantize, y)

    print("\n" + render_table(quantizer_rows, title="quantizer-shift ablation"))
    by_shift = {int(row["shift"]): row for row in quantizer_rows}
    benchmark.extra_info["shift4_cr"] = round(by_shift[4]["measured_cr"], 2)

    # the shift-4 default: negligible saturation, strong CR
    assert by_shift[4]["saturation_percent"] < 1.0
    assert by_shift[0]["saturation_percent"] > by_shift[4]["saturation_percent"]
    assert by_shift[6]["measured_cr"] > by_shift[4]["measured_cr"]
