"""Section IV-A d-choice ablation: why d = 12.

Paper: "d = 12 was identified as the minimum value [with] the optimal
trade-off between execution time (a 2-second vector is now CS-sampled
in 82 ms) and (signal) recovery/reconstruction error."

Reproduced: SNR and modeled MSP430 sensing time over a d sweep — SNR
saturates around d ~ 10-12 while time keeps growing linearly with d.
The timed kernel is the sparse integer measurement as d varies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.experiments import render_table, run_sensing_ablation
from repro.sensing import SparseBinaryMatrix

D_VALUES = (2, 4, 6, 8, 10, 12, 16, 24)


@pytest.fixture(scope="module")
def d_sweep(bench_database):
    return run_sensing_ablation(
        d_values=D_VALUES,
        nominal_cr=60.0,
        records=("100", "119", "201"),
        packets_per_record=6,
        database=bench_database,
    )


def test_d_sweep_table(d_sweep, benchmark, paper_point_windows, bench_json):
    config = SystemConfig()
    phi = SparseBinaryMatrix(config.m, config.n, d=12, seed=config.seed)
    window = (paper_point_windows[0] - 1024).astype(np.int64)
    benchmark(phi.measure_integer, window)

    print("\n" + render_table(d_sweep, title="d sweep (paper: d = 12 optimal trade-off)"))
    for row in d_sweep:
        benchmark.extra_info[f"d{int(row['d'])}_snr"] = round(row["snr_db"], 2)

    by_d = {int(row["d"]): row for row in d_sweep}
    # recovery quality grows from very sparse toward d ~ 12...
    assert by_d[12]["snr_db"] > by_d[2]["snr_db"] + 1.0
    # ...and doubling d beyond 12 buys nothing (the integer sums grow,
    # so quantization eats any incoherence gain) while time doubles —
    # exactly the paper's "d = 12 is the optimal trade-off"
    assert by_d[24]["snr_db"] <= by_d[12]["snr_db"] + 0.5
    assert by_d[24]["sensing_time_ms"] == pytest.approx(
        2.0 * by_d[12]["sensing_time_ms"], rel=0.1
    )
    # d = 12 at the paper's operating point costs 82 ms
    assert by_d[12]["sensing_time_ms"] == pytest.approx(82.0, abs=0.5)
    bench_json(
        "ablation_sensing_d",
        params={"d_values": list(D_VALUES), "nominal_cr": 60.0},
        rows=d_sweep,
    )


@pytest.mark.parametrize("d", [4, 12, 24])
def test_sensing_kernel_scales_with_d(benchmark, paper_point_windows, d):
    config = SystemConfig()
    phi = SparseBinaryMatrix(config.m, config.n, d=d, seed=config.seed)
    window = (paper_point_windows[0] - 1024).astype(np.int64)
    benchmark(phi.measure_integer, window)
