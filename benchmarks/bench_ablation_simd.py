"""Figures 3-5 + Section V: the NEON optimization ablation.

Paper's results reproduced:

- Fig 3: leftover-element strategies ranked padding < lane-by-lane <
  scalar epilogue (and all numerically identical);
- Fig 4: if-conversion removes the per-element branch of the
  soft-threshold loop (numerically identical, large cycle win);
- Fig 5: outer-loop vectorization of the filter-bank nest beats
  inner-loop (2*(I/L)*m vector MACs vs extra 2*I*(L-1) adds);
- Section V: the optimized decoder is ~2.43x faster; real-time caps
  800 (scalar) vs 2000 (NEON) iterations.

Timed kernels: the three Python prox implementations (the functional
counterparts of Figure 4's loops).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import render_table, run_simd_ablation
from repro.solvers import (
    soft_threshold,
    soft_threshold_branchy,
    soft_threshold_if_converted,
)


@pytest.fixture(scope="module")
def ablation():
    return run_simd_ablation()


def test_simd_ablation_tables(ablation, benchmark, bench_json):
    u = np.random.default_rng(0).standard_normal(512)
    benchmark(soft_threshold, u, 0.3)

    print("\n" + render_table(ablation["fig3"], title="Figure 3: leftover strategies (cycles)"))
    print(render_table([ablation["fig4"]], title="Figure 4: if-conversion"))
    print(render_table(ablation["fig5"], title="Figure 5: loop-nest vectorization"))
    print(render_table(ablation["iteration_kernels"], title="per-kernel scalar vs NEON cycles"))
    summary = {
        "speedup_at_1000_iters": ablation["speedup_at_1000_iters"],
        "max_iterations_scalar": ablation["max_iterations_scalar"],
        "max_iterations_neon": ablation["max_iterations_neon"],
    }
    print(render_table([summary], title="Section V (paper: 2.43x, 800 vs 2000)"))

    benchmark.extra_info["speedup"] = round(ablation["speedup_at_1000_iters"], 3)
    benchmark.extra_info["cap_scalar"] = ablation["max_iterations_scalar"]
    benchmark.extra_info["cap_neon"] = ablation["max_iterations_neon"]

    assert ablation["fig3_max_deviation"] == 0.0
    assert all(r["fastest"] == "array-padding" for r in ablation["fig3"])
    assert ablation["fig4"]["max_deviation"] == 0.0
    assert all(r["outer_wins"] for r in ablation["fig5"])
    assert ablation["speedup_at_1000_iters"] == pytest.approx(2.43, abs=0.15)
    assert ablation["max_iterations_scalar"] == pytest.approx(800, abs=8)
    assert ablation["max_iterations_neon"] == pytest.approx(2000, abs=20)
    bench_json(
        "ablation_simd",
        timings={
            "speedup_at_1000_iters": ablation["speedup_at_1000_iters"],
            "max_iterations_scalar": ablation["max_iterations_scalar"],
            "max_iterations_neon": ablation["max_iterations_neon"],
        },
        rows=ablation["iteration_kernels"],
    )


def test_branchy_prox_kernel(benchmark):
    """The pre-optimization loop of Figure 4 (element-wise branches)."""
    u = np.random.default_rng(1).standard_normal(512)
    result = benchmark(soft_threshold_branchy, u, 0.3)
    assert np.array_equal(result, soft_threshold(u, 0.3))


def test_if_converted_prox_kernel(benchmark):
    """The masked form of Figure 4 (comparison results as values)."""
    u = np.random.default_rng(2).standard_normal(512)
    result = benchmark(soft_threshold_if_converted, u, 0.3)
    assert np.array_equal(result, soft_threshold(u, 0.3))
