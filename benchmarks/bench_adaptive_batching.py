"""Adaptive batch control vs fixed batching, under bursty arrivals.

The pins for the telemetry-plane PR:

1. **Bursty superiority.**  A bursty workload — cohort bursts (a
   block of windows lands at once, then the link idles) punctuated by
   a full surge wave — is driven through one gateway per
   configuration: a sweep of fixed batch sizes and the adaptive
   controller.  The score is *windows within the real-time budget*.
   Required: adaptive >= 1.15x the best fixed batch size.  Fixed
   batching loses coming and going: a cohort smaller than the batch
   width sits out the idle-flush deadline, and the budget does not
   afford that wait plus the solve — the *pressure rule* flushes the
   cohort exactly when waiting longer would forfeit it, which no
   fixed deadline can do for every load; meanwhile unbatched (or
   tiny) widths survive the cohorts but serialize per-flush overhead
   under the surge wave and drown.  One knob setting cannot win both
   regimes; the controller retunes between them.

2. **Steady-state equivalence.**  With no backlog and no budget
   threat the controller must hold the configured operating point, so
   adaptive batching costs nothing when it is not needed: on a paced
   workload the adaptive gateway's batch compositions equal the fixed
   gateway's flush for flush, decoded windows are **bit-identical**,
   and throughput matches within 5%.

3. **Telemetry round-trip.**  The gateway's registry survives its two
   persistent sinks: the Prometheus exposition scraped over real HTTP
   parses back to every sample, and the JSONL ring file replays to
   the same final snapshot.

Budget calibration: the paper's 2 s budget binds on its reference
hardware; what defines the *regime* is how the budget relates to the
two knobs under test — the configured idle-flush deadline and the
measured cohort solve time.  The bench probes this machine's solve
cost and places the budget mid-corridor between the adaptive path
(pressure-flush lead + cohort solve) and the fixed path (idle
deadline + cohort solve), so the same scenario runs on any machine: a
3x faster solver does not trivially hit every deadline, a 3x slower
one does not miss them all.  On hardware so slow that the corridor
closes (the cohort solve alone exceeds what the deadline leaves of
the budget) the >= 1.15x assertion is skipped with a printed reason,
exactly like the CPU-gated sharding benches.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the cohort count and the
sweep; the >= 1.15x pin is asserted in both modes because the
scenario is calibrated, not wall-clock-bound.  Results aggregate into
one ``BENCH_adaptive_batching.json``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import time

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import EcgMonitorSystem
from repro.core.batch import encode_record_windows
from repro.core.decoder import PacketPayloadDecoder
from repro.ecg import RECORD_NAMES, SyntheticMitBih
from repro.experiments import render_table
from repro.fleet.engine import solve_measurement_block
from repro.ingest import (
    AdaptiveConfig,
    FrameKind,
    Handshake,
    IngestGateway,
    NodeClient,
    encode_frame,
    encode_json_frame,
)
from repro.telemetry import (
    JsonlRingSink,
    MetricsServer,
    exposition_matches_snapshot,
    replay_ring,
    scrape_local,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: the paper's operating point.  The regime that decides the outcome —
#: the ratio of per-flush overhead to per-window solve cost — is a
#: property of the *configuration* (both scale with the same matrix
#: sizes), so it stays put across machines of different speeds.
BENCH_CONFIG = SystemConfig()

#: the configured (base) operating point every gateway starts from —
#: the serve defaults a deployer would reasonably run
BASE_BATCH = 16
BASE_FLUSH_MS = 500.0
#: fixed sweep compared against the adaptive controller: quarter
#: base, base, and 4x base (width 1 — no batching at all — is the
#: degenerate gateway the batched decode engine exists to replace)
FIXED_SWEEP = (4, 16, 64)
#: streams; cohort bursts land COHORT windows at once (round-robin
#: across streams), surge waves dump WAVE_PER_STREAM windows per
#: stream at once
STREAMS = 4
COHORT = 7
WAVE_PER_STREAM = 8
COHORTS_SCORED = 8 if SMOKE else 10
WAVES_SCORED = 1
#: warmup (unscored, identical for every configuration): one wave to
#: warm caches and let the controller learn the solve-time model,
#: then two cohorts
WARMUP_WAVES = 1
WARMUP_COHORTS = 2
#: pressure-lead safety margin of the adaptive controller, as a
#: fraction of the budget (generous: all-or-nothing cohort flushes
#: must not ride on model-fit noise)
SAFETY_FRAC = 0.3
#: the acceptance pin
MIN_RATIO = 1.15

#: steady-state scenario
STEADY_STREAMS = 3
STEADY_ROUNDS = 3 if SMOKE else 5
STEADY_BATCH = 8
STEADY_FLUSH_MS = 80.0
#: paced throughput comparison: the pacing span must dominate the
#: decode tail, or wall-clock noise masquerades as a drift
PACED_WINDOWS = 8
PACED_INTERVAL_S = 0.3
PACED_REPEATS = 2
MAX_THROUGHPUT_DRIFT = 0.05


@pytest.fixture(scope="module")
def adaptive_bench(bench_json):
    """Accumulate every section into one BENCH_adaptive_batching.json."""
    payload: dict = {"params": {}, "timings": {}}
    yield payload
    bench_json(
        "adaptive_batching",
        params=payload["params"],
        timings=payload["timings"],
    )


def _build_streams(count: int, windows: int):
    """``count`` calibrated systems sharing one operator group, plus
    their pre-encoded packets (``windows`` each, one encode pass)."""
    database = SyntheticMitBih(
        duration_s=windows * BENCH_CONFIG.packet_seconds + 4.0, seed=2011
    )
    streams = []
    for index in range(count):
        record = database.load(list(RECORD_NAMES)[index % 8])
        system = EcgMonitorSystem(BENCH_CONFIG)
        system.calibrate(record)
        _, packets = encode_record_windows(
            system, record, max_packets=windows
        )
        streams.append((system, record, packets))
    return streams


def _calibrate(streams) -> dict:
    """Probe this machine's solve cost and place the budget.

    Measures one cohort-wide solve (median of two) and derives the
    two latency paths a cohort can take:

    - adaptive: pressure-flush lead (safety margin) + cohort solve;
    - fixed:    configured idle-flush deadline + cohort solve
      (a cohort narrower than the batch width has no other trigger).

    The budget lands mid-corridor between them.  ``corridor_ok`` is
    False when the machine is too slow for the corridor to exist; the
    superiority assertion is then skipped (printed), mirroring the
    CPU-gated benches.  The probe also warms the operator/Lipschitz
    caches so no timed leg pays first-call costs.
    """
    system, _record, packets = streams[0]
    payload = PacketPayloadDecoder(
        BENCH_CONFIG, codebook=system.encoder.codebook
    )
    payload.reset()
    block = payload.measurement_block(packets[:16], np.float64)
    fractions = np.full(block.shape[1], BENCH_CONFIG.lam)

    def solve_seconds(width: int) -> float:
        started = time.perf_counter()
        solve_measurement_block(
            {
                "config": dataclasses.asdict(BENCH_CONFIG),
                "precision": "float64",
                "block": block[:, :width],
                "fractions": fractions[:width],
                "batch_size": width,
                "max_iterations": BENCH_CONFIG.max_iterations,
                "tolerance": BENCH_CONFIG.tolerance,
            }
        )
        return time.perf_counter() - started

    solve_seconds(4)  # warm caches (operator build, BLAS, imports)
    t_cohort = float(
        np.median([solve_seconds(COHORT) for _ in range(2)])
    )
    base_flush_s = BASE_FLUSH_MS / 1000.0
    # the adaptive path needs the cohort solve plus its pressure lead
    # (the controller flushes SAFETY_FRAC x budget early, so the
    # budget must leave that fraction spare); the fixed path pays the
    # idle deadline plus the (smaller) remainder solve — 0.5 x
    # t_cohort is a conservative stand-in for the worst sweep
    # member's remainder
    adaptive_path = (1.2 * t_cohort + 0.08) / (1.0 - SAFETY_FRAC)
    fixed_path = base_flush_s + 0.5 * t_cohort
    return {
        "t_cohort_s": t_cohort,
        "adaptive_path_s": adaptive_path,
        "fixed_path_s": fixed_path,
        "budget_s": 0.5 * (adaptive_path + fixed_path),
        "corridor_ok": adaptive_path < fixed_path,
    }


def _windows_per_stream() -> int:
    cohorts = (WARMUP_COHORTS + COHORTS_SCORED) * COHORT
    waves = (WARMUP_WAVES + WAVES_SCORED) * WAVE_PER_STREAM * STREAMS
    return -(-(cohorts + waves) // STREAMS) + COHORT  # rr slack


@pytest.fixture(scope="module")
def calibration():
    streams = _build_streams(STREAMS, _windows_per_stream())
    return streams, _calibrate(streams)


async def _open_session(gateway, system, record):
    reader, writer = gateway.connect_local()
    writer.write(
        Handshake(
            record=record.name,
            channel=0,
            config=system.config,
            codebook=system.encoder.codebook,
        ).to_frame()
    )
    return reader, writer


async def _wait_decoded(gateway, expected: int, timeout_s: float = 600.0):
    deadline = time.monotonic() + timeout_s
    while gateway.stats.windows_decoded < expected:
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"gateway decoded {gateway.stats.windows_decoded} of "
                f"{expected} windows within {timeout_s}s"
            )
        await asyncio.sleep(0.01)


def _build_plan():
    """The bursty arrival schedule, identical for every configuration.

    Events in order: warmup wave, warmup cohorts, scored cohorts,
    scored surge wave.  Each event lists ``(stream_index,
    window_index)`` pairs; cohorts draw round-robin across streams
    (every stream's windows stay in order — the stateful stages
    upstream require it).  Returns ``(events, scored)`` where each
    event is ``(kind, [(stream, window), ...], is_scored)`` and
    ``scored`` is the set of scored pairs.
    """
    cursors = [0] * STREAMS
    rr = 0
    events = []
    scored: set[tuple[int, int]] = set()

    def take_cohort():
        nonlocal rr
        members = []
        for _ in range(COHORT):
            stream = rr % STREAMS
            members.append((stream, cursors[stream]))
            cursors[stream] += 1
            rr += 1
        return members

    def take_wave():
        members = []
        for stream in range(STREAMS):
            for _ in range(WAVE_PER_STREAM):
                members.append((stream, cursors[stream]))
                cursors[stream] += 1
        return members

    for _ in range(WARMUP_WAVES):
        events.append(("wave", take_wave(), False))
    for _ in range(WARMUP_COHORTS):
        events.append(("cohort", take_cohort(), False))
    for _ in range(COHORTS_SCORED):
        members = take_cohort()
        scored.update(members)
        events.append(("cohort", members, True))
    for _ in range(WAVES_SCORED):
        members = take_wave()
        scored.update(members)
        events.append(("wave", members, True))
    return events, scored


async def _run_bursty_workload(gateway, streams, events):
    """Replay the arrival plan: each event's windows land at once,
    then the gateway fully drains before the next burst (the lull)."""
    sessions = [
        await _open_session(gateway, system, record)
        for system, record, _packets in streams
    ]
    sent = 0
    for _kind, members, _is_scored in events:
        for stream, window in members:
            _reader, writer = sessions[stream]
            packet = streams[stream][2][window]
            writer.write(encode_frame(FrameKind.PACKET, packet.to_bytes()))
        sent += len(members)
        await _wait_decoded(gateway, sent)
        await asyncio.sleep(0.05)  # the lull between bursts
    for stream, (_reader, writer) in enumerate(sessions):
        count = max(w for s, w in _all_pairs(events) if s == stream) + 1
        writer.write(encode_json_frame(FrameKind.BYE, {"windows": count}))
    while len(gateway.results) < len(streams):
        await asyncio.sleep(0.01)
    await gateway.close()


def _all_pairs(events):
    for _kind, members, _is_scored in events:
        yield from members


def _run_bursty(streams, events, scored, batch_size, adaptive, budget_s):
    """One configuration through the bursty plan; returns the gateway
    and its windows-within-budget count over the scored events."""
    gateway = IngestGateway(
        batch_size=batch_size,
        flush_ms=BASE_FLUSH_MS,
        adaptive=adaptive,
        adaptive_config=(
            # scenario tuning: converge on widths whose solve fits 75%
            # of the budget, shed only when one solve eats it whole
            AdaptiveConfig(
                budget_s=budget_s,
                headroom_fraction=0.75,
                shed_fraction=0.85,
                safety_s=SAFETY_FRAC * budget_s,
                max_batch_factor=8,
            )
            if adaptive
            else None
        ),
        max_pending=4096,  # arrival shaping off: each burst lands whole
    )
    asyncio.run(_run_bursty_workload(gateway, streams, events))
    total = sum(len(members) for _k, members, _s in events)
    assert gateway.stats.windows_decoded == total
    record_to_stream = {
        record.name: index
        for index, (_system, record, _packets) in enumerate(streams)
    }
    hits = 0
    seen = 0
    for result in gateway.results:
        stream = record_to_stream[result.record]
        ordered = result.ordered()
        for index, latency in zip(ordered.indices, ordered.latencies_s):
            if (stream, index) in scored:
                seen += 1
                if latency <= budget_s:
                    hits += 1
    assert seen == len(scored)
    return gateway, hits, seen


def test_adaptive_beats_fixed_under_bursty_load(
    calibration, adaptive_bench
):
    streams, probe = calibration
    budget = probe["budget_s"]
    events, scored_set = _build_plan()

    rows = []
    fixed_hits = {}
    for batch in FIXED_SWEEP:
        gateway, hits, scored = _run_bursty(
            streams, events, scored_set, batch, False, budget
        )
        fixed_hits[batch] = hits
        rows.append(
            {
                "config": f"fixed-{batch}",
                "within_budget": hits,
                "scored": scored,
                "hit_rate": hits / scored,
                "widest_flush": max(
                    len(m) for _k, m, _r in gateway.batch_log
                ),
                "pressure_flushes": gateway.stats.flushes_pressure,
            }
        )

    adaptive_gateway, adaptive_windows, scored = _run_bursty(
        streams, events, scored_set, BASE_BATCH, True, budget
    )
    controller = adaptive_gateway.controller
    rows.append(
        {
            "config": "adaptive",
            "within_budget": adaptive_windows,
            "scored": scored,
            "hit_rate": adaptive_windows / scored,
            "widest_flush": max(
                len(m) for _k, m, _r in adaptive_gateway.batch_log
            ),
            "pressure_flushes": adaptive_gateway.stats.flushes_pressure,
        }
    )
    print(
        "\n"
        + render_table(
            rows,
            title=(
                f"bursty cohorts+surge: {COHORTS_SCORED} cohorts x "
                f"{COHORT} + {WAVES_SCORED} wave(s) x "
                f"{STREAMS * WAVE_PER_STREAM}, budget {budget:.3f}s, "
                f"flush deadline {BASE_FLUSH_MS:.0f} ms"
            ),
        )
    )

    best_fixed = max(fixed_hits.values())
    ratio = adaptive_windows / max(best_fixed, 1)
    adaptive_bench["params"].update(
        {
            "streams": STREAMS,
            "cohort": COHORT,
            "cohorts_scored": COHORTS_SCORED,
            "wave_per_stream": WAVE_PER_STREAM,
            "waves_scored": WAVES_SCORED,
            "base_batch": BASE_BATCH,
            "base_flush_ms": BASE_FLUSH_MS,
            "fixed_sweep": list(FIXED_SWEEP),
            "paper_budget_s": SystemConfig().packet_seconds,
        }
    )
    adaptive_bench["timings"].update(
        {
            "probe_t_cohort_s": probe["t_cohort_s"],
            "adaptive_path_s": probe["adaptive_path_s"],
            "fixed_path_s": probe["fixed_path_s"],
            "corridor_ok": probe["corridor_ok"],
            "budget_s": budget,
            "fixed_within_budget": {
                str(batch): hits for batch, hits in fixed_hits.items()
            },
            "adaptive_within_budget": adaptive_windows,
            "best_fixed_within_budget": best_fixed,
            "within_budget_ratio": ratio,
            "adaptive_effective_batch_final": controller.effective_batch,
            "adaptive_widen_count": controller.widen_count,
            "adaptive_shed_count": controller.shed_count,
            "adaptive_pressure_flushes": int(
                adaptive_gateway.stats.flushes_pressure
            ),
        }
    )
    if not probe["corridor_ok"]:
        print(
            f"superiority assertion skipped: cohort solve "
            f"{probe['t_cohort_s']:.3f}s leaves no corridor between the "
            f"adaptive path ({probe['adaptive_path_s']:.3f}s) and the "
            f"deadline path ({probe['fixed_path_s']:.3f}s) on this "
            f"machine (ratio observed: {ratio:.3f})"
        )
        return
    # the controller must actually be steering (pressure flushes are
    # its budget-aware trigger; a tie of identical gateways cannot
    # produce them)
    assert adaptive_gateway.stats.flushes_pressure >= 1
    assert ratio >= MIN_RATIO, (
        f"adaptive put {adaptive_windows} windows inside the budget vs "
        f"{best_fixed} for the best fixed batch "
        f"(ratio {ratio:.3f} < {MIN_RATIO})"
    )


# ----------------------------------------------------------------------
# steady state: identical schedule, bit-identical output, equal speed
# ----------------------------------------------------------------------


async def _run_steady_rounds(gateway, streams, rounds: int):
    """One window per stream per round, drained between rounds: a
    paced, unthreatened workload with deterministic flush content."""
    sessions = [
        await _open_session(gateway, system, record)
        for system, record, _packets in streams
    ]
    for round_index in range(rounds):
        for (reader, writer), (_s, _r, packets) in zip(sessions, streams):
            writer.write(
                encode_frame(
                    FrameKind.PACKET, packets[round_index].to_bytes()
                )
            )
        await _wait_decoded(gateway, (round_index + 1) * len(streams))
    for (reader, writer), _stream in zip(sessions, streams):
        writer.write(encode_json_frame(FrameKind.BYE, {"windows": rounds}))
    while len(gateway.results) < len(streams):
        await asyncio.sleep(0.01)
    await gateway.close()


def test_steady_state_matches_fixed_bitwise(calibration, adaptive_bench):
    streams_all, probe = calibration
    streams = streams_all[:STEADY_STREAMS]
    budget = probe["budget_s"]

    def run(adaptive: bool) -> IngestGateway:
        gateway = IngestGateway(
            batch_size=STEADY_BATCH,
            flush_ms=STEADY_FLUSH_MS,
            adaptive=adaptive,
            adaptive_config=(
                AdaptiveConfig(budget_s=budget) if adaptive else None
            ),
        )
        asyncio.run(_run_steady_rounds(gateway, streams, STEADY_ROUNDS))
        return gateway

    fixed = run(adaptive=False)
    adaptive = run(adaptive=True)

    # the controller never left the configured operating point
    assert adaptive.controller.at_base_point
    assert adaptive.controller.widen_count == 0
    assert adaptive.controller.shed_count == 0
    # identical flush schedule: same compositions, same reasons
    assert [
        (members, reason) for _k, members, reason in adaptive.batch_log
    ] == [(members, reason) for _k, members, reason in fixed.batch_log]
    # bit-identical decoded windows, stream by stream
    fixed_by_record = {r.record: r.ordered() for r in fixed.results}
    for result in adaptive.results:
        reference = fixed_by_record[result.record]
        ordered = result.ordered()
        assert ordered.iterations == reference.iterations
        assert ordered.sequences == reference.sequences
        for ours, theirs in zip(
            ordered.samples_adu, reference.samples_adu
        ):
            np.testing.assert_array_equal(ours, theirs)

    adaptive_bench["params"].update(
        {
            "steady_streams": STEADY_STREAMS,
            "steady_rounds": STEADY_ROUNDS,
            "steady_batch": STEADY_BATCH,
        }
    )
    adaptive_bench["timings"]["steady_bit_identical"] = True
    adaptive_bench["timings"]["steady_schedule_identical"] = True


def test_steady_state_throughput_parity(adaptive_bench):
    """Paced clients over the loopback: adaptive overhead must be
    invisible (wall clock within 5% of fixed batching).  Best of two
    runs per mode, so a scheduler hiccup in either leg does not read
    as a structural drift."""
    streams = _build_streams(STEADY_STREAMS, PACED_WINDOWS)

    def run_once(adaptive: bool) -> float:
        gateway = IngestGateway(
            batch_size=STEADY_BATCH,
            flush_ms=STEADY_FLUSH_MS,
            adaptive=adaptive,
        )

        async def scenario():
            clients = [
                NodeClient(
                    system,
                    record,
                    max_packets=PACED_WINDOWS,
                    interval_s=PACED_INTERVAL_S,
                )
                for system, record, _packets in streams
            ]
            links = [gateway.connect_local() for _ in clients]
            started = time.perf_counter()
            await asyncio.gather(
                *[
                    client.run(reader, writer)
                    for client, (reader, writer) in zip(clients, links)
                ]
            )
            wall = time.perf_counter() - started
            await gateway.close()
            return wall

        wall = asyncio.run(scenario())
        total = STEADY_STREAMS * PACED_WINDOWS
        assert gateway.stats.windows_decoded == total
        return total / wall

    def run(adaptive: bool) -> float:
        return max(run_once(adaptive) for _ in range(PACED_REPEATS))

    fixed_throughput = run(adaptive=False)
    adaptive_throughput = run(adaptive=True)
    drift = adaptive_throughput / fixed_throughput - 1.0
    print(
        f"\nsteady throughput: fixed {fixed_throughput:.2f} windows/s, "
        f"adaptive {adaptive_throughput:.2f} windows/s "
        f"(drift {100 * drift:+.2f}%)"
    )
    adaptive_bench["timings"].update(
        {
            "steady_fixed_windows_per_s": fixed_throughput,
            "steady_adaptive_windows_per_s": adaptive_throughput,
            "steady_throughput_drift": drift,
        }
    )
    assert abs(drift) <= MAX_THROUGHPUT_DRIFT, (
        f"adaptive throughput drifted {100 * drift:+.1f}% from fixed "
        f"batching at steady state (allowed +/-5%)"
    )


# ----------------------------------------------------------------------
# telemetry persistence round-trips
# ----------------------------------------------------------------------


def test_telemetry_exposition_and_ring_round_trip(
    calibration, adaptive_bench, tmp_path
):
    streams_all, probe = calibration
    streams = streams_all[:2]

    async def scenario():
        gateway = IngestGateway(
            batch_size=4,
            flush_ms=60.0,
            adaptive=True,
            adaptive_config=AdaptiveConfig(budget_s=probe["budget_s"]),
        )
        server = MetricsServer(gateway.telemetry)
        port = await server.start()
        ring = JsonlRingSink(tmp_path / "gateway_ring.jsonl", max_records=8)
        sessions = [
            await _open_session(gateway, system, record)
            for system, record, _packets in streams
        ]
        for round_index in range(4):
            for (reader, writer), (_s, _r, packets) in zip(
                sessions, streams
            ):
                writer.write(
                    encode_frame(
                        FrameKind.PACKET, packets[round_index].to_bytes()
                    )
                )
            await _wait_decoded(gateway, (round_index + 1) * len(streams))
            ring.append(gateway.telemetry.snapshot())
        for (reader, writer), _stream in zip(sessions, streams):
            writer.write(encode_json_frame(FrameKind.BYE, {"windows": 4}))
        while len(gateway.results) < len(streams):
            await asyncio.sleep(0.01)
        await gateway.close()
        ring.append(gateway.telemetry.snapshot())
        scraped = await scrape_local(port)
        await server.close()
        return gateway, ring, scraped

    gateway, ring, scraped = asyncio.run(scenario())
    final = gateway.telemetry.snapshot()
    # the scrape parses back to every counter/gauge/bucket published
    scrape_ok = exposition_matches_snapshot(scraped, final)
    # the ring file replays to the same final snapshot
    ring_ok = replay_ring(ring.path) == final
    adaptive_bench["timings"].update(
        {
            "exposition_round_trip_ok": scrape_ok,
            "ring_replay_ok": ring_ok,
            "ring_records": 8,
        }
    )
    assert scrape_ok
    assert ring_ok
    assert final.counter_total("ingest_windows_decoded") == 2 * 4
