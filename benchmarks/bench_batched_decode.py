"""Batched decode engine vs the serial reference decoder.

The tentpole claim of the batched engine: stacking measurement vectors
into an ``(m, B)`` matrix and running FISTA on all columns at once (one
GEMM pair per iteration, per-column convergence masking) beats the
one-window-at-a-time serial loop by >= 3x wall-clock at large batch
sizes, while producing bit-identical packets and identical per-packet
iteration counts.

The speedup grows with the batch width: a wider GEMM amortizes both the
operator traversal and the per-iteration Python overhead over more
columns, and the convergence-spread "straggler" tail (the batched loop
runs until its slowest column finishes) shrinks relative to total work.
On a single-core BLAS the GEMV->GEMM kernel advantage caps batch 32 at
roughly 2.5x; batch 128 clears 3x with margin.

On top of that sit the **raw-speed levers** of the structured solver
(``test_raw_speed_levers``), each pinned as its own line:

- ``sparse``  — the structured float64 pipeline: identical GEMM
  iteration plus the scatter/gather ``Phi`` residual gate (the gate
  must be ~free: its ``n*d`` adds replace nothing in this leg, so the
  line pins its overhead near 1.0x);
- ``hybrid``  — float32 iteration + sparse gate + float64 polish:
  the combined raw-speed path, required >= 2x windows/s over the
  float64 baseline at unchanged packet bytes, with PRD inside the
  fig-6 corridor and the polish rate reported;
- ``workspace`` — persistent arenas: after the first solve the arena
  map must reach a fixed point (steady-state serve allocates no new
  scratch per batch).

Everything aggregates into one ``BENCH_batched_decode.json``.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the workload so
``scripts/run_tier1.sh`` can exercise the full path in seconds; the
equivalence assertions stay, the timing thresholds relax.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import EcgMonitorSystem
from repro.core.batch import window_record
from repro.experiments import render_table
from repro.metrics import prd
from repro.solvers import (
    DEFAULT_POLISH_CORRIDOR,
    BatchedFista,
    batched_lambda_from_fraction,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: windows decoded per comparison (4+ minutes of signal in full mode)
TOTAL_WINDOWS = 16 if SMOKE else 128
BATCH_SIZES = (8, 16) if SMOKE else (32, 64, 128)
#: required speedup at the largest batch size
MIN_SPEEDUP = 1.2 if SMOKE else 3.0
#: solve width of the per-lever comparison — full mode uses the widest
#: batch so the float32 GEMM advantage dominates the fixed per-slice
#: costs (float64 lambda GEMM, residual gate)
LEVER_BATCH = 8 if SMOKE else 128
#: required combined (hybrid) windows/s speedup over the float64
#: baseline — the tentpole raw-speed target in full mode; smoke runs
#: too few iterations for the GEMM width to dominate, so it only has
#: to not regress
MIN_HYBRID_SPEEDUP = 1.05 if SMOKE else 2.0
#: timed passes per lever; the best is reported (solves are
#: deterministic, so repeats only damp scheduler noise)
LEVER_REPEATS = 1 if SMOKE else 2
#: hybrid PRD must sit within this many percentage points of float64
PRD_GAP_BOUND = 0.5


@pytest.fixture(scope="module")
def batched_bench(bench_json):
    """Accumulate every section into one BENCH_batched_decode.json."""
    payload: dict = {
        "params": {
            "total_windows": TOTAL_WINDOWS,
            "batch_sizes": list(BATCH_SIZES),
            "lever_batch": LEVER_BATCH,
            "lever_repeats": LEVER_REPEATS,
            "min_hybrid_speedup": MIN_HYBRID_SPEEDUP,
            "prd_gap_bound": PRD_GAP_BOUND,
        },
        "timings": {},
        "rows": [],
        "levers": {},
    }
    yield payload
    bench_json(
        "batched_decode",
        params=payload["params"],
        timings=payload["timings"],
        rows=payload["rows"],
        levers=payload["levers"],
    )


@pytest.fixture(scope="module")
def decode_workload(bench_database):
    """Encoded packets + windows of record 100 at the paper point."""
    from repro.ecg import SyntheticMitBih
    from repro.ecg.resample import resample_record

    config = SystemConfig()
    seconds_needed = TOTAL_WINDOWS * config.packet_seconds + 4.0
    database = SyntheticMitBih(duration_s=seconds_needed, seed=2011)
    system = EcgMonitorSystem(config)
    system.calibrate(database.load("100"))

    record = resample_record(database.load("100"), 256.0)
    samples = record.adc.digitize(record.channel(0))
    windows = window_record(samples, config.n, TOTAL_WINDOWS)
    assert windows.shape[0] == TOTAL_WINDOWS

    system.encoder.reset()
    packets = system.encoder.encode_batch(windows)
    return {"system": system, "packets": packets, "windows": windows}


def test_encode_batch_bit_exact(decode_workload):
    """The batched encoder emits byte-identical packets."""
    system = decode_workload["system"]
    serial_encoder = EcgMonitorSystem(system.config)
    serial_encoder.encoder.codebook = system.encoder.codebook
    serial_encoder.decoder.codebook = system.encoder.codebook
    serial_encoder.encoder.reset()
    serial_packets = [
        serial_encoder.encoder.encode(w) for w in decode_workload["windows"]
    ]
    assert len(serial_packets) == len(decode_workload["packets"])
    for p_serial, p_batched in zip(serial_packets, decode_workload["packets"]):
        assert p_serial.to_bytes() == p_batched.to_bytes()


def test_batched_decode_speedup(decode_workload, benchmark, batched_bench):
    """>= 3x wall-clock over the serial decode loop at the largest batch."""
    system = decode_workload["system"]
    packets = decode_workload["packets"]

    system.decoder.reset()
    started = time.perf_counter()
    serial = [system.decoder.decode(p) for p in packets]
    serial_seconds = time.perf_counter() - started

    rows = []
    speedups = {}
    for batch_size in BATCH_SIZES:
        system.decoder.reset()
        started = time.perf_counter()
        batched = []
        for start in range(0, len(packets), batch_size):
            batched.extend(
                system.decoder.decode_batch(packets[start : start + batch_size])
            )
        batched_seconds = time.perf_counter() - started

        # equivalence: identical iteration counts, reconstructions to
        # floating-point noise
        assert [d.iterations for d in serial] == [
            d.iterations for d in batched
        ]
        worst = max(
            float(np.max(np.abs(a.samples_adu - b.samples_adu)))
            for a, b in zip(serial, batched)
        )
        assert worst < 1e-6

        speedups[batch_size] = serial_seconds / batched_seconds
        rows.append(
            {
                "batch": batch_size,
                "serial_s": serial_seconds,
                "batched_s": batched_seconds,
                "speedup": speedups[batch_size],
                "max_adu_diff": worst,
            }
        )
        benchmark.extra_info[f"speedup_b{batch_size}"] = round(
            speedups[batch_size], 2
        )

    print("\n" + render_table(rows, title="batched decode engine vs serial"))
    batched_bench["rows"].extend(rows)
    batched_bench["timings"]["serial_s"] = serial_seconds
    for b, s in speedups.items():
        batched_bench["timings"][f"speedup_b{b}"] = s

    largest = BATCH_SIZES[-1]
    assert speedups[largest] >= MIN_SPEEDUP, (
        f"batched decode at B={largest} reached only "
        f"{speedups[largest]:.2f}x (need >= {MIN_SPEEDUP}x)"
    )
    # wider batches must not be slower than the narrowest
    assert speedups[largest] >= speedups[BATCH_SIZES[0]]

    def timed_batched():
        system.decoder.reset()
        out = []
        for start in range(0, len(packets), largest):
            out.extend(
                system.decoder.decode_batch(packets[start : start + largest])
            )
        return out

    benchmark.pedantic(timed_batched, rounds=1, iterations=1)


def test_raw_speed_levers(decode_workload, batched_bench):
    """Per-lever lines of the structured solver at unchanged bytes.

    The packets on the wire are the float64 run's packets — the levers
    change only the decode side, so "unchanged packet bytes" holds by
    construction; what must be shown is windows/s and quality."""
    system = decode_workload["system"]
    packets = decode_workload["packets"]
    windows = decode_workload["windows"]
    config = system.config

    hybrid = EcgMonitorSystem(config, precision="hybrid")
    hybrid.decoder.codebook = system.encoder.codebook
    decoder = hybrid.decoder
    solver = decoder.batched_solver()
    structure = solver.structure
    block = decoder.payload.measurement_block(packets, np.float64)
    assert block.shape[1] == TOTAL_WINDOWS
    dc = decoder.dc_offset
    kwargs = dict(
        max_iterations=config.max_iterations, tolerance=config.tolerance
    )

    def slices():
        for start in range(0, TOTAL_WINDOWS, LEVER_BATCH):
            yield block[:, start : start + LEVER_BATCH]

    def prd_of(signals_by_batch):
        signals = np.concatenate(signals_by_batch, axis=1)
        return np.array(
            [
                prd(windows[i] - dc, signals[:, i])
                for i in range(TOTAL_WINDOWS)
            ]
        )

    def timed(leg):
        best, out = np.inf, None
        for _ in range(LEVER_REPEATS):
            started = time.perf_counter()
            out = leg()
            best = min(best, time.perf_counter() - started)
        return best, out

    # baseline: the plain float64 dense path (lambdas + masked FISTA +
    # inverse transform), exactly what precision="float64" runs
    plain = BatchedFista(structure.dense64, lipschitz=structure.lipschitz)
    plain.solve(block[:, :2], config.lam, max_iterations=5)  # warm BLAS

    def leg_baseline():
        signals = []
        for piece in slices():
            lams = batched_lambda_from_fraction(
                structure.dense64, piece, config.lam
            )
            result = plain.solve(piece, lams, **kwargs)
            signals.append(
                decoder.transform.inverse_batch(result.coefficients)
            )
        return signals

    baseline_s, baseline_signals = timed(leg_baseline)
    baseline_prd = prd_of(baseline_signals)

    # lever 1 — sparse gate, float64 iterate: same GEMM iteration, the
    # scatter/gather residual gate rides along (pins its overhead)
    solver.solve_structured(block[:, :2], config.lam, max_iterations=5)
    sparse_s, sparse_signals = timed(
        lambda: [
            solver.solve_structured(
                piece, config.lam, iterate_dtype=np.float64, **kwargs
            ).signals
            for piece in slices()
        ]
    )
    sparse_prd = prd_of(sparse_signals)

    # lever 2 — the combined hybrid path (float32 + gate + polish)
    hybrid_s, hybrid_results = timed(
        lambda: [
            solver.solve_structured(piece, config.lam, **kwargs)
            for piece in slices()
        ]
    )
    hybrid_prd = prd_of([r.signals for r in hybrid_results])
    polished = int(sum(np.count_nonzero(r.polished) for r in hybrid_results))
    rel_residuals = np.concatenate(
        [r.rel_residuals for r in hybrid_results]
    )
    corridor_pass = bool(
        np.all(np.isfinite(rel_residuals))
        and np.all(rel_residuals <= DEFAULT_POLISH_CORRIDOR)
    )

    # lever 3 — workspace arenas: the map must be at a fixed point now
    arenas = {
        key: id(buf) for key, buf in solver.workspace._arenas.items()
    }
    solver.solve_structured(block[:, :LEVER_BATCH], config.lam, **kwargs)
    steady_state = arenas == {
        key: id(buf) for key, buf in solver.workspace._arenas.items()
    }

    prd_gap = float(np.max(np.abs(hybrid_prd - baseline_prd)))
    rows = [
        {
            "lever": "baseline-f64",
            "seconds": baseline_s,
            "windows_per_s": TOTAL_WINDOWS / baseline_s,
            "speedup": 1.0,
            "mean_prd": float(baseline_prd.mean()),
        },
        {
            "lever": "sparse-gate-f64",
            "seconds": sparse_s,
            "windows_per_s": TOTAL_WINDOWS / sparse_s,
            "speedup": baseline_s / sparse_s,
            "mean_prd": float(sparse_prd.mean()),
        },
        {
            "lever": "hybrid-f32+polish",
            "seconds": hybrid_s,
            "windows_per_s": TOTAL_WINDOWS / hybrid_s,
            "speedup": baseline_s / hybrid_s,
            "mean_prd": float(hybrid_prd.mean()),
        },
    ]
    print("\n" + render_table(rows, title="raw-speed levers (structured solver)"))

    batched_bench["levers"] = {
        "batch": LEVER_BATCH,
        "baseline": {
            "seconds": baseline_s,
            "windows_per_s": TOTAL_WINDOWS / baseline_s,
            "mean_prd": float(baseline_prd.mean()),
        },
        "sparse": {
            "seconds": sparse_s,
            "windows_per_s": TOTAL_WINDOWS / sparse_s,
            "speedup": baseline_s / sparse_s,
            "mean_prd": float(sparse_prd.mean()),
        },
        "hybrid": {
            "seconds": hybrid_s,
            "windows_per_s": TOTAL_WINDOWS / hybrid_s,
            "speedup": baseline_s / hybrid_s,
            "mean_prd": float(hybrid_prd.mean()),
            "prd_gap": prd_gap,
            "polish_rate": polished / TOTAL_WINDOWS,
            "corridor_pass": corridor_pass,
        },
        "workspace": {
            "steady_state": bool(steady_state),
            "arenas": len(arenas),
        },
    }

    # quality gates: structured-f64 is the same iteration (same PRD to
    # noise), hybrid stays inside the fig-6 corridor of the baseline
    np.testing.assert_allclose(sparse_prd, baseline_prd, atol=1e-9)
    assert corridor_pass
    assert prd_gap < PRD_GAP_BOUND, (
        f"hybrid PRD drifted {prd_gap:.3f} points from float64 "
        f"(bound {PRD_GAP_BOUND})"
    )
    assert steady_state, "workspace arenas kept growing after warmup"
    # the sparse gate must be ~free on top of the float64 iteration
    assert baseline_s / sparse_s > 0.8
    combined = baseline_s / hybrid_s
    assert combined >= MIN_HYBRID_SPEEDUP, (
        f"hybrid raw-speed path reached only {combined:.2f}x over the "
        f"float64 baseline (need >= {MIN_HYBRID_SPEEDUP}x)"
    )
