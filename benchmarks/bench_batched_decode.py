"""Batched decode engine vs the serial reference decoder.

The tentpole claim of the batched engine: stacking measurement vectors
into an ``(m, B)`` matrix and running FISTA on all columns at once (one
GEMM pair per iteration, per-column convergence masking) beats the
one-window-at-a-time serial loop by >= 3x wall-clock at large batch
sizes, while producing bit-identical packets and identical per-packet
iteration counts.

The speedup grows with the batch width: a wider GEMM amortizes both the
operator traversal and the per-iteration Python overhead over more
columns, and the convergence-spread "straggler" tail (the batched loop
runs until its slowest column finishes) shrinks relative to total work.
On a single-core BLAS the GEMV->GEMM kernel advantage caps batch 32 at
roughly 2.5x; batch 128 clears 3x with margin.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the workload so
``scripts/run_tier1.sh`` can exercise the full path in seconds; the
equivalence assertions stay, the timing thresholds relax.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import EcgMonitorSystem
from repro.core.batch import window_record
from repro.experiments import render_table

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: windows decoded per comparison (4+ minutes of signal in full mode)
TOTAL_WINDOWS = 16 if SMOKE else 128
BATCH_SIZES = (8, 16) if SMOKE else (32, 64, 128)
#: required speedup at the largest batch size
MIN_SPEEDUP = 1.2 if SMOKE else 3.0


@pytest.fixture(scope="module")
def decode_workload(bench_database):
    """Encoded packets + windows of record 100 at the paper point."""
    from repro.ecg import SyntheticMitBih
    from repro.ecg.resample import resample_record

    config = SystemConfig()
    seconds_needed = TOTAL_WINDOWS * config.packet_seconds + 4.0
    database = SyntheticMitBih(duration_s=seconds_needed, seed=2011)
    system = EcgMonitorSystem(config)
    system.calibrate(database.load("100"))

    record = resample_record(database.load("100"), 256.0)
    samples = record.adc.digitize(record.channel(0))
    windows = window_record(samples, config.n, TOTAL_WINDOWS)
    assert windows.shape[0] == TOTAL_WINDOWS

    system.encoder.reset()
    packets = system.encoder.encode_batch(windows)
    return {"system": system, "packets": packets, "windows": windows}


def test_encode_batch_bit_exact(decode_workload):
    """The batched encoder emits byte-identical packets."""
    system = decode_workload["system"]
    serial_encoder = EcgMonitorSystem(system.config)
    serial_encoder.encoder.codebook = system.encoder.codebook
    serial_encoder.decoder.codebook = system.encoder.codebook
    serial_encoder.encoder.reset()
    serial_packets = [
        serial_encoder.encoder.encode(w) for w in decode_workload["windows"]
    ]
    assert len(serial_packets) == len(decode_workload["packets"])
    for p_serial, p_batched in zip(serial_packets, decode_workload["packets"]):
        assert p_serial.to_bytes() == p_batched.to_bytes()


def test_batched_decode_speedup(decode_workload, benchmark, bench_json):
    """>= 3x wall-clock over the serial decode loop at the largest batch."""
    system = decode_workload["system"]
    packets = decode_workload["packets"]

    system.decoder.reset()
    started = time.perf_counter()
    serial = [system.decoder.decode(p) for p in packets]
    serial_seconds = time.perf_counter() - started

    rows = []
    speedups = {}
    for batch_size in BATCH_SIZES:
        system.decoder.reset()
        started = time.perf_counter()
        batched = []
        for start in range(0, len(packets), batch_size):
            batched.extend(
                system.decoder.decode_batch(packets[start : start + batch_size])
            )
        batched_seconds = time.perf_counter() - started

        # equivalence: identical iteration counts, reconstructions to
        # floating-point noise
        assert [d.iterations for d in serial] == [
            d.iterations for d in batched
        ]
        worst = max(
            float(np.max(np.abs(a.samples_adu - b.samples_adu)))
            for a, b in zip(serial, batched)
        )
        assert worst < 1e-6

        speedups[batch_size] = serial_seconds / batched_seconds
        rows.append(
            {
                "batch": batch_size,
                "serial_s": serial_seconds,
                "batched_s": batched_seconds,
                "speedup": speedups[batch_size],
                "max_adu_diff": worst,
            }
        )
        benchmark.extra_info[f"speedup_b{batch_size}"] = round(
            speedups[batch_size], 2
        )

    print("\n" + render_table(rows, title="batched decode engine vs serial"))
    bench_json(
        "batched_decode",
        params={
            "total_windows": TOTAL_WINDOWS,
            "batch_sizes": list(BATCH_SIZES),
        },
        timings={
            "serial_s": serial_seconds,
            **{f"speedup_b{b}": s for b, s in speedups.items()},
        },
        rows=rows,
    )

    largest = BATCH_SIZES[-1]
    assert speedups[largest] >= MIN_SPEEDUP, (
        f"batched decode at B={largest} reached only "
        f"{speedups[largest]:.2f}x (need >= {MIN_SPEEDUP}x)"
    )
    # wider batches must not be slower than the narrowest
    assert speedups[largest] >= speedups[BATCH_SIZES[0]]

    def timed_batched():
        system.decoder.reset()
        out = []
        for start in range(0, len(packets), largest):
            out.extend(
                system.decoder.decode_batch(packets[start : start + largest])
            )
        return out

    benchmark.pedantic(timed_batched, rounds=1, iterations=1)
