"""Encoder-stage ablation: what each of the three stages contributes.

The paper's encoder is sensing -> redundancy removal -> Huffman.  This
bench quantifies each stage's contribution to the final compression
ratio at the paper's operating point: measurement-domain CR alone
(m/n), plus differencing, plus entropy coding — and the cost of
skipping the redundancy-removal stage (coding raw quantized
measurements with a wider fixed-width code).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import BitWriter, train_codebook
from repro.config import SystemConfig
from repro.core import CSEncoder
from repro.experiments import render_table


@pytest.fixture(scope="module")
def stage_rows(bench_database, paper_point_windows):
    config = SystemConfig()
    windows = paper_point_windows[:12]
    original_bits = config.original_packet_bits * len(windows)

    # stage 1 only: raw 16-bit quantized measurements
    encoder = CSEncoder(config)
    measurement_bits = 16 * config.m * len(windows)

    # stages 1+2+3: the full pipeline
    encoder.reset()
    full_bits = 0
    diffs: list[int] = []
    for index, window in enumerate(windows):
        packet = encoder.encode(window)
        full_bits += packet.total_bits

    # stages 1+3 (no differencing): Huffman directly on quantized
    # measurements is impossible with the 512-symbol book (range too
    # wide), so a 16-bit fixed code stands in — exactly the paper's
    # argument for the redundancy-removal stage.
    no_diff_bits = measurement_bits

    def cr(bits: int) -> float:
        return (original_bits - bits) / original_bits * 100.0

    return [
        {"pipeline": "measurements only (m/n)", "cr_percent": cr(measurement_bits)},
        {"pipeline": "no differencing (fixed 16-bit)", "cr_percent": cr(no_diff_bits)},
        {"pipeline": "full: diff + huffman", "cr_percent": cr(full_bits)},
    ]


def test_coding_stage_ablation(stage_rows, benchmark, paper_point_windows, bench_json):
    config = SystemConfig()
    encoder = CSEncoder(config)
    encoder.reset()
    encoder.encode(paper_point_windows[0])
    y_q = encoder.measure(paper_point_windows[1])
    _, diff = encoder.codec.encode(y_q)

    def huffman_encode():
        writer = BitWriter()
        for value in diff:
            encoder.codebook.code.encode_symbol(
                encoder.codebook.symbol_for(int(value)), writer
            )
        return writer

    benchmark(huffman_encode)

    print("\n" + render_table(stage_rows, title="encoder-stage ablation (CR contributions)"))
    by_name = {row["pipeline"]: row["cr_percent"] for row in stage_rows}
    full = by_name["full: diff + huffman"]
    raw = by_name["no differencing (fixed 16-bit)"]
    benchmark.extra_info["full_cr"] = round(full, 2)
    benchmark.extra_info["no_diff_cr"] = round(raw, 2)
    # entropy coding the differences must add real compression
    assert full > raw + 10.0
    bench_json(
        "coding_stages",
        params={"windows": 12},
        rows=stage_rows,
    )


def test_codebook_training_kernel(benchmark):
    """Offline codebook generation (package-merge over 512 symbols)."""
    rng = np.random.default_rng(3)
    samples = np.clip(
        np.round(rng.laplace(scale=12.0, size=20_000)), -256, 255
    ).astype(int)

    benchmark(train_codebook, list(samples))


def test_rice_vs_huffman(benchmark, paper_point_windows):
    """Extension: the codebook-free Rice coder vs the trained Huffman.

    Rice needs zero flash for tables (vs 1.5 kB) at a small bit-rate
    cost — the trade the paper's designers implicitly declined.
    """
    from repro.coding import RiceCoder
    from repro.config import SystemConfig
    from repro.core import CSEncoder

    config = SystemConfig()
    encoder = CSEncoder(config)
    encoder.reset()
    encoder.encode(paper_point_windows[0])

    rice = RiceCoder()
    huffman_bits = 0
    rice_bits = 0
    for window in paper_point_windows[1:10]:
        y_q = encoder.measure(window)
        _, diff = encoder.codec.encode(y_q)
        values = [int(v) for v in diff]
        frequencies = [0] * encoder.codebook.num_symbols
        for value in values:
            frequencies[encoder.codebook.symbol_for(value)] += 1
        huffman_bits += int(encoder.codebook.code.expected_bits(frequencies))
        rice_bits += rice.encoded_bits(values)

    benchmark(rice.encoded_bits, values)

    overhead = rice_bits / huffman_bits
    print(
        f"\nRice vs Huffman on difference packets: {rice_bits} vs "
        f"{huffman_bits} bits ({(overhead - 1) * 100:+.1f} %), "
        f"codebook flash saved: 1536 B"
    )
    benchmark.extra_info["rice_over_huffman"] = round(overhead, 4)
    # within 20 % of the trained codebook, with zero table storage
    assert overhead < 1.2
