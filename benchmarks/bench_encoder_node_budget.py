"""Section IV-A / V node-side table: timing, memory, energy, lifetime.

Paper's numbers reproduced here:

- sparse binary CS samples a 2 s vector in **82 ms** (approach 3);
- approach 1 (on-board Gaussian) is **not real-time**; approach 2
  (stored Gaussian) is memory-infeasible and ~18x slower than sparse;
- **6.5 kB RAM / 7.5 kB flash** (1.5 kB of it Huffman tables);
- node CPU **< 5 %**;
- **12.9 %** lifetime extension vs uncompressed streaming at CR = 50 %.

The timed kernel is the full software encoder on one packet.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core import CSEncoder
from repro.experiments import render_table, run_encoder_budget
from repro.platforms import encoder_memory_map


@pytest.fixture(scope="module")
def budget(bench_database):
    return run_encoder_budget(database=bench_database)


def test_node_budget_table(budget, benchmark, paper_point_windows, bench_json):
    config = SystemConfig()
    encoder = CSEncoder(config)

    def encode_packet():
        encoder.reset()
        return encoder.encode(paper_point_windows[0])

    benchmark(encode_packet)

    headline = {
        "sensing_ms": budget["sensing_time_ms"],
        "encode_ms": budget["encode_time_ms"],
        "node_cpu_percent": budget["node_cpu_percent"],
        "ram_bytes": budget["ram_bytes"],
        "flash_bytes": budget["flash_bytes"],
    }
    print("\n" + render_table([headline], title="node budget (paper: 82 ms, <5 %, 6.5/7.5 kB)"))
    print(render_table(budget["approaches"], title="sensing approaches (Section IV-A2)"))
    print(render_table(budget["lifetime"], title="lifetime extension vs CR (paper: 12.9 % @ CR 50)"))
    print("\n" + encoder_memory_map(config).render())

    benchmark.extra_info["sensing_ms"] = round(budget["sensing_time_ms"], 2)
    benchmark.extra_info["node_cpu_percent"] = round(budget["node_cpu_percent"], 2)

    assert budget["sensing_time_ms"] == pytest.approx(82.0, abs=0.5)
    assert budget["node_cpu_percent"] < 5.0
    assert budget["ram_bytes"] == 6656
    assert 7000 < budget["flash_bytes"] < 8000
    reference = budget["lifetime"][-1]
    assert reference["extension_percent"] == pytest.approx(12.9, abs=0.1)
    bench_json(
        "encoder_node_budget",
        timings={
            "sensing_ms": budget["sensing_time_ms"],
            "encode_ms": budget["encode_time_ms"],
            "node_cpu_percent": budget["node_cpu_percent"],
        },
        params={
            "ram_bytes": budget["ram_bytes"],
            "flash_bytes": budget["flash_bytes"],
        },
        rows=budget["lifetime"],
    )


def test_huffman_stage_kernel(budget, benchmark, paper_point_windows):
    """Timed kernel: redundancy removal + Huffman on one packet."""
    config = SystemConfig()
    encoder = CSEncoder(config)
    encoder.reset()
    encoder.encode(paper_point_windows[0])  # prime the reference

    window = paper_point_windows[1]
    benchmark(encoder.encode, window)
