"""Federation front door: N-process scale-out, identity, failover.

Three tentpole claims for :class:`repro.ingest.FederationFrontDoor`
(PR 10):

1. **Horizontal scaling.**  Eight operator groups streamed through a
   4-gateway federation decode >= 2.5x more windows/s than the same
   fleet through a 1-gateway federation (same supervised code path,
   so the delta is pure scale-out, not proxy overhead).  The group
   ids are chosen so the seeded ring places exactly two groups per
   gateway — the measurement reflects compute, not placement luck
   (placement is deterministic: seed 2011, 64 replicas).  Asserted
   only where >= 4 CPUs exist and real worker processes spawned.

2. **Bit-identity.**  Per-stream output through the front door equals
   a node dialing a single plain :class:`IngestGateway` directly —
   same solver iteration trajectories, ``assert_array_equal`` on
   every reconstructed window.  The front door re-encodes exactly one
   frame (the routed HELLO) and pumps bytes after that, so this holds
   exactly, not approximately.  Runs in thread mode: the byte path is
   identical and the check stays sandbox-proof.

3. **Bounded failover damage.**  Killing the busiest gateway
   mid-stream costs each of its fec-protected streams at most
   ``keyframe_interval`` windows (the ISSUE bound) — and with the
   retransmit-ring replay, zero in practice: every sent window
   decodes.  The reroute is counted against the dead gateway.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the fleet and skips the
scaling assertion (2 gateways cannot show 2.5x) so
``scripts/run_tier1.sh`` exercises the full federation wire path in
seconds.  All sections aggregate into one ``BENCH_federation.json``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import time

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import EcgMonitorSystem
from repro.ecg import RECORD_NAMES, SyntheticMitBih
from repro.experiments import render_table
from repro.ingest import FederationFrontDoor, IngestGateway, NodeClient
from repro.ingest.gateway import merge_stream_results

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: scale-out comparison: gateway counts of the two timed legs
SCALE_GATEWAYS = 2 if SMOKE else 4
#: operator-group ids of the scaling fleet (one stream each).  The
#: full-mode eight are hand-picked so the seeded ring spreads them
#: 2/2/2/2 across gw0..gw3 (deterministic; verified by the balance
#: assertion below) — an even spread makes the 2.5x floor a statement
#: about compute, with the ring's placement variance factored out.
SCALE_GROUPS = (0, 1) if SMOKE else (0, 1, 2, 3, 4, 5, 7, 8)
SCALE_WINDOWS = 2 if SMOKE else 6
MIN_SCALING = 2.5
#: bit-identity fleet: two groups, two streams each
IDENTITY_SPECS = (("100", 0), ("101", 1), ("102", 0), ("103", 1))
IDENTITY_WINDOWS = 3 if SMOKE else 4
#: failover fleet: groups 0/1/2 place gw1:2 gw0:1 on the 2-node ring,
#: so the busiest-gateway kill always has >= 2 victim streams
FAILOVER_SPECS = (("100", 0), ("119", 1), ("217", 2))
FAILOVER_WINDOWS = 4 if SMOKE else 6
FAILOVER_INTERVAL_S = 0.06 if SMOKE else 0.08
BATCH_SIZE = 8
FLUSH_MS = 100.0


@pytest.fixture(scope="module")
def federation_bench(bench_json):
    """Accumulate every section into one BENCH_federation.json."""
    payload: dict = {"params": {}, "timings": {}, "extra": {}}
    yield payload
    bench_json(
        "federation",
        params=payload["params"],
        timings=payload["timings"],
        **payload["extra"],
    )


def _build_fleet(specs, windows):
    """One calibrated node system per ``(record_name, group)`` spec.

    Group ``g`` perturbs the config seed (``seed + g``) exactly as the
    CLI's ``--groups`` spread does: distinct seeds -> distinct
    operator keys -> distinct ring segments.
    """
    base = SystemConfig()
    database = SyntheticMitBih(
        duration_s=windows * base.packet_seconds + 4.0, seed=2011
    )
    systems, records = [], []
    for record_name, group in specs:
        record = database.load(record_name)
        config = dataclasses.replace(base, seed=base.seed + group)
        system = EcgMonitorSystem(config)
        system.calibrate(record)
        systems.append(system)
        records.append(record)
    return systems, records


def _clients(systems, records, windows, **kwargs):
    return [
        NodeClient(system, record, max_packets=windows, **kwargs)
        for system, record in zip(systems, records)
    ]


async def _run_federated(front_door, clients):
    """Stream every client through the front door; timed gather."""
    port = await front_door.start("127.0.0.1", 0)
    fallback = any(
        worker.in_process for worker in front_door._workers.values()
    )
    started = time.perf_counter()
    reports = await asyncio.gather(
        *[client.run_tcp("127.0.0.1", port) for client in clients]
    )
    wall = time.perf_counter() - started
    await front_door.close()
    return reports, wall, fallback


def test_federation_scaling(federation_bench):
    """N-gateway scale-out: windows/s at SCALE_GATEWAYS vs 1."""
    specs = [
        (list(RECORD_NAMES)[i % 8], group)
        for i, group in enumerate(SCALE_GROUPS)
    ]
    systems, records = _build_fleet(specs, SCALE_WINDOWS)
    total = len(specs) * SCALE_WINDOWS

    walls, fallbacks = {}, {}
    balance = {}
    for gateways in (1, SCALE_GATEWAYS):
        front_door = FederationFrontDoor(
            gateways=gateways, batch_size=BATCH_SIZE, flush_ms=FLUSH_MS
        )
        clients = _clients(systems, records, SCALE_WINDOWS)
        reports, wall, fallback = asyncio.run(
            _run_federated(front_door, clients)
        )
        assert all(report.error is None for report in reports)
        final = front_door.federation_stats()
        assert final.windows_decoded == total
        assert final.streams_routed == len(specs)
        walls[gateways] = wall
        fallbacks[gateways] = fallback
        balance[gateways] = dict(final.streams_by_gateway)

    speedup = walls[1] / walls[SCALE_GATEWAYS]
    rows = [
        {
            "gateways": gateways,
            "streams": len(specs),
            "windows_each": SCALE_WINDOWS,
            "wall_s": walls[gateways],
            "windows_per_s": total / walls[gateways],
        }
        for gateways in (1, SCALE_GATEWAYS)
    ]
    print("\n" + render_table(rows, title="federation scale-out"))
    print(f"scaling speedup: {speedup:.2f}x, balance: {balance}")
    federation_bench["params"].update(
        {
            "scale_gateways": SCALE_GATEWAYS,
            "scale_groups": list(SCALE_GROUPS),
            "scale_windows": SCALE_WINDOWS,
            "batch_size": BATCH_SIZE,
            "flush_ms": FLUSH_MS,
        }
    )
    federation_bench["timings"].update(
        {
            "scale_wall_1gw_s": walls[1],
            "scale_wall_ngw_s": walls[SCALE_GATEWAYS],
            "windows_per_s_1gw": total / walls[1],
            "windows_per_s_ngw": total / walls[SCALE_GATEWAYS],
            "scaling_speedup": speedup,
        }
    )
    federation_bench["extra"]["streams_by_gateway"] = balance[
        SCALE_GATEWAYS
    ]

    cpus = os.cpu_count() or 1
    if SMOKE or cpus < SCALE_GATEWAYS or any(fallbacks.values()):
        print(
            f"scaling assertion skipped: smoke={SMOKE}, cpus={cpus}, "
            f"thread_fallback={any(fallbacks.values())} (process "
            "scale-out cannot exceed 1x without the cores)"
        )
        return
    # the hand-picked groups must actually spread evenly, else the
    # speedup floor measures placement, not compute
    per_gateway = balance[SCALE_GATEWAYS]
    assert max(per_gateway.values()) == len(specs) // SCALE_GATEWAYS
    assert speedup >= MIN_SCALING, (
        f"{SCALE_GATEWAYS}-gateway federation reached only "
        f"{speedup:.2f}x over one gateway (need >= {MIN_SCALING}x)"
    )


def test_federation_bit_identity(federation_bench):
    """Front-door output == direct single-gateway output, exactly.

    Both legs run with ``batch_size=1``: pooled-batch *composition* is
    arrival-timing dependent, and BLAS reduction order varies with
    block width — last-ULP drift (~1e-13) that the ingest-gateway
    bench already pins via offline batch-log replay.  Width-1 blocks
    make the composition deterministic, so the remaining claim under
    test is exactly the federation's: the front door re-encodes one
    HELLO and pumps bytes, adding nothing — ``assert_array_equal``,
    not allclose.
    """
    systems, records = _build_fleet(IDENTITY_SPECS, IDENTITY_WINDOWS)

    front_door = FederationFrontDoor(
        gateways=2,
        batch_size=1,
        flush_ms=FLUSH_MS,
        use_processes=False,
    )
    reports, _, _ = asyncio.run(
        _run_federated(
            front_door, _clients(systems, records, IDENTITY_WINDOWS)
        )
    )
    assert all(report.error is None for report in reports)
    federated = front_door.merged_results()

    async def run_direct():
        gateway = IngestGateway(batch_size=1, flush_ms=FLUSH_MS)
        port = await gateway.start("127.0.0.1", 0)
        reports = await asyncio.gather(
            *[
                client.run_tcp("127.0.0.1", port)
                for client in _clients(
                    systems, records, IDENTITY_WINDOWS
                )
            ]
        )
        await gateway.close()
        return reports, merge_stream_results(gateway.results)

    direct_reports, direct = asyncio.run(run_direct())
    assert all(report.error is None for report in direct_reports)

    assert set(federated) == set(direct)
    for key in federated:
        assert federated[key].iterations == direct[key].iterations
        assert len(federated[key].samples_adu) == IDENTITY_WINDOWS
        for ours, theirs in zip(
            federated[key].samples_adu, direct[key].samples_adu
        ):
            np.testing.assert_array_equal(ours, theirs)
    print(
        f"\nbit identity: {len(federated)} streams x "
        f"{IDENTITY_WINDOWS} windows identical through the front door"
    )
    federation_bench["params"]["identity_windows"] = IDENTITY_WINDOWS
    federation_bench["extra"]["bit_identical"] = True
    federation_bench["extra"]["identity_streams"] = len(federated)


def test_federation_failover_damage(federation_bench):
    """Kill the busiest gateway mid-stream: bounded, counted damage."""
    systems, records = _build_fleet(FAILOVER_SPECS, FAILOVER_WINDOWS)
    clients = _clients(
        systems,
        records,
        FAILOVER_WINDOWS,
        interval_s=FAILOVER_INTERVAL_S,
        fec=True,
        reconnect=5,
        backoff_base_s=0.05,
        backoff_seed=2011,
    )
    front_door = FederationFrontDoor(
        gateways=2, batch_size=4, flush_ms=FLUSH_MS
    )

    async def run():
        port = await front_door.start("127.0.0.1", 0)
        if any(
            worker.in_process
            for worker in front_door._workers.values()
        ):
            await front_door.close()
            pytest.skip("multiprocessing unavailable; thread fallback")
        streams = [
            asyncio.ensure_future(client.run_tcp("127.0.0.1", port))
            for client in clients
        ]
        await asyncio.sleep(3 * FAILOVER_INTERVAL_S)
        victim = max(
            front_door._workers.values(),
            key=lambda worker: len(worker.sessions),
        )
        assert victim.sessions, "no gateway had a live session yet"
        await front_door.kill_gateway(victim.gateway_id)
        reports = await asyncio.gather(*streams)
        await front_door.close()
        return reports

    with pytest.warns(RuntimeWarning, match="killed"):
        reports = asyncio.run(run())

    keyframe_interval = SystemConfig().keyframe_interval
    assert all(report.error is None for report in reports)
    assert any(report.reconnects >= 1 for report in reports)
    final = front_door.federation_stats()
    assert final.reroutes >= 1
    merged = front_door.merged_results()
    damage = {}
    for client in clients:
        result = merged[f"{client.record.name}:0"]
        damage[client.record.name] = (
            result.windows_lost + result.windows_resynced
        )
        # the ISSUE bound: a gateway death costs each of its streams
        # at most one resync epoch...
        assert damage[client.record.name] <= keyframe_interval
        # ...and the fec anchor replay actually achieves zero loss
        assert len(result.iterations) == FAILOVER_WINDOWS

    rows = [
        {
            "streams": len(clients),
            "windows_each": FAILOVER_WINDOWS,
            "reroutes": final.reroutes,
            "reconnects": sum(r.reconnects for r in reports),
            "max_damage_windows": max(damage.values()),
            "keyframe_interval": keyframe_interval,
        }
    ]
    print("\n" + render_table(rows, title="federation failover damage"))
    federation_bench["params"].update(
        {
            "failover_windows": FAILOVER_WINDOWS,
            "failover_interval_s": FAILOVER_INTERVAL_S,
        }
    )
    federation_bench["extra"]["failover"] = {
        "reroutes": final.reroutes,
        "max_damage_windows": max(damage.values()),
        "keyframe_interval": keyframe_interval,
        "windows_lost_total": final.windows_lost,
    }
