"""Figure 2: output SNR vs CR — sparse binary (MSP430 path) vs Gaussian.

Paper's result: over CR 50-80 %, sparse binary sensing with d = 12 on
the MSP430 shows "no meaningful performance difference" against optimal
Gaussian sensing computed in Matlab, with SNR falling from ~22 dB toward
~5 dB as CR rises.

Reproduced series: per nominal CR, the full integer encoder pipeline
(sparse binary + quantizer + differencing + Huffman) against the float64
Gaussian reference.  The timed kernel is the node-side integer
measurement of one 2-second packet.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.experiments import render_table, run_fig2
from repro.sensing import GaussianMatrix, SparseBinaryMatrix

from .conftest import BENCH_PACKETS, BENCH_RECORDS

NOMINAL_CRS = (50.0, 55.0, 60.0, 65.0, 70.0, 75.0, 80.0)


@pytest.fixture(scope="module")
def fig2_rows(bench_database):
    return run_fig2(
        nominal_crs=NOMINAL_CRS,
        records=BENCH_RECORDS,
        packets_per_record=BENCH_PACKETS,
        database=bench_database,
    )


def test_fig2_series(fig2_rows, benchmark, paper_point_windows, bench_json):
    """Regenerate the Figure 2 series and time the sensing kernel."""
    config = SystemConfig()
    phi = SparseBinaryMatrix(config.m, config.n, d=config.d, seed=config.seed)
    window = (paper_point_windows[0] - 1024).astype("int64")
    benchmark(phi.measure_integer, window)

    print("\n" + render_table(fig2_rows, title="Figure 2: SNR vs CR"))
    for row in fig2_rows:
        benchmark.extra_info[f"cr{row['nominal_cr']:.0f}_sparse_snr"] = round(
            row["sparse_snr_db"], 2
        )
        benchmark.extra_info[f"cr{row['nominal_cr']:.0f}_gauss_snr"] = round(
            row["gaussian_snr_db"], 2
        )

    # shape assertions: monotone decay, no meaningful gap
    sparse = [row["sparse_snr_db"] for row in fig2_rows]
    gauss = [row["gaussian_snr_db"] for row in fig2_rows]
    assert sparse[0] > sparse[-1] + 3.0
    assert gauss[0] > gauss[-1] + 3.0
    for row in fig2_rows:
        assert abs(row["snr_gap_db"]) < 5.0
    bench_json(
        "fig2_sparse_vs_gaussian",
        params={
            "nominal_crs": list(NOMINAL_CRS),
            "records": list(BENCH_RECORDS),
            "packets_per_record": BENCH_PACKETS,
        },
        rows=fig2_rows,
    )


def test_fig2_gaussian_measure_kernel(benchmark, paper_point_windows):
    """Reference kernel: dense Gaussian measurement (the Matlab side)."""
    config = SystemConfig()
    phi = GaussianMatrix(config.m, config.n, seed=config.seed)
    x = (paper_point_windows[0] - 1024).astype("float64")
    benchmark(phi.measure, x)
