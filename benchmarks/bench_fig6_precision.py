"""Figure 6: PRD vs CR — 32-bit iPhone decoder vs 64-bit Matlab decoder.

Paper's result: the two curves coincide over CR 30-90 % (single
precision costs nothing), with PRD rising as CR rises.

The timed kernels are one full packet decode in each precision.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core import CSDecoder, CSEncoder
from repro.experiments import render_table, run_fig6

from .conftest import BENCH_PACKETS, BENCH_RECORDS

NOMINAL_CRS = (30.0, 40.0, 50.0, 60.0, 70.0, 80.0)


@pytest.fixture(scope="module")
def fig6_rows(bench_database):
    return run_fig6(
        nominal_crs=NOMINAL_CRS,
        records=BENCH_RECORDS,
        packets_per_record=BENCH_PACKETS,
        database=bench_database,
    )


def test_fig6_series(fig6_rows, benchmark, paper_point_windows, bench_json):
    """Regenerate the Figure 6 series; time the float64 decode."""
    config = SystemConfig()
    encoder = CSEncoder(config)
    decoder = CSDecoder(config, codebook=encoder.codebook, precision="float64")
    encoder.reset()
    packet = encoder.encode(paper_point_windows[0])

    def decode_once():
        decoder.reset()
        return decoder.decode(packet)

    benchmark.pedantic(decode_once, rounds=5, iterations=1)

    print("\n" + render_table(fig6_rows, title="Figure 6: PRD vs CR"))
    for row in fig6_rows:
        benchmark.extra_info[f"cr{row['nominal_cr']:.0f}_prd64"] = round(
            row["prd64_percent"], 2
        )
        benchmark.extra_info[f"cr{row['nominal_cr']:.0f}_prd32"] = round(
            row["prd32_percent"], 2
        )

    prd64 = [row["prd64_percent"] for row in fig6_rows]
    assert prd64[-1] > prd64[0]  # PRD rises with CR
    for row in fig6_rows:
        # "provides the same accuracy as the original 64-bit design"
        assert row["prd_gap_percent"] < 0.5
    bench_json(
        "fig6_precision",
        params={
            "nominal_crs": list(NOMINAL_CRS),
            "records": list(BENCH_RECORDS),
            "packets_per_record": BENCH_PACKETS,
        },
        rows=fig6_rows,
    )


def test_fig6_float32_decode_kernel(benchmark, paper_point_windows):
    """Timed kernel: the iPhone-precision decode of one packet."""
    config = SystemConfig()
    encoder = CSEncoder(config)
    decoder = CSDecoder(config, codebook=encoder.codebook, precision="float32")
    encoder.reset()
    packet = encoder.encode(paper_point_windows[0])

    def decode_once():
        decoder.reset()
        return decoder.decode(packet)

    result = benchmark.pedantic(decode_once, rounds=5, iterations=1)
    assert result.iterations > 0
