"""Figure 7: FISTA iterations and iPhone decode time per packet vs CR.

Paper's result: average iterations rise from ~600 (CR 30) to ~900
(CR 70) and the average per-packet execution time from ~0.34 s to
~0.46 s, all within the 1 s real-time budget.

Reproduced: measured iteration counts from the float32 solver, priced
by the calibrated Cortex-A8 NEON model.  The timed kernel is one FISTA
iteration's operator work at the paper's operating point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.experiments import render_table, run_fig7
from repro.solvers import fista, lambda_from_fraction

from .conftest import BENCH_PACKETS, BENCH_RECORDS

NOMINAL_CRS = (30.0, 40.0, 50.0, 60.0, 70.0)


@pytest.fixture(scope="module")
def fig7_rows(bench_database):
    return run_fig7(
        nominal_crs=NOMINAL_CRS,
        records=BENCH_RECORDS,
        packets_per_record=BENCH_PACKETS,
        database=bench_database,
    )


def test_fig7_series(
    fig7_rows, benchmark, paper_point_system, paper_point_windows, bench_json
):
    """Regenerate the Figure 7 series; time a fixed-budget FISTA solve."""
    system = paper_point_system
    system.encoder.reset()
    packet = system.encoder.encode(paper_point_windows[0])
    system.decoder.reset()
    measurements = system.decoder._decode_payload(packet)
    y = system.decoder.quantizer.dequantize(measurements)
    a = system.decoder.system_matrix
    lam = lambda_from_fraction(a, y, system.config.lam)

    def solve_100_iterations():
        return fista(
            a, y, lam, max_iterations=100, tolerance=1e-12,
            lipschitz=system.decoder.lipschitz,
        )

    benchmark.pedantic(solve_100_iterations, rounds=5, iterations=1)

    print("\n" + render_table(fig7_rows, title="Figure 7: iterations & time vs CR"))
    for row in fig7_rows:
        benchmark.extra_info[f"cr{row['nominal_cr']:.0f}_iters"] = round(
            row["iterations"], 1
        )
        benchmark.extra_info[f"cr{row['nominal_cr']:.0f}_time_s"] = round(
            row["iphone_time_s"], 3
        )

    iterations = [row["iterations"] for row in fig7_rows]
    times = [row["iphone_time_s"] for row in fig7_rows]
    # monotone rise with CR (the paper's shape)
    assert iterations == sorted(iterations)
    assert times == sorted(times)
    # magnitudes in the paper's band at the low-CR end
    assert 400 <= iterations[0] <= 1100
    assert times[0] < 0.6
    # every point within the NEON real-time cap
    assert max(iterations) <= 2000
    bench_json(
        "fig7_iterations_time",
        params={
            "nominal_crs": list(NOMINAL_CRS),
            "records": list(BENCH_RECORDS),
            "packets_per_record": BENCH_PACKETS,
        },
        rows=fig7_rows,
    )


def test_fig7_iteration_kernel(benchmark, paper_point_system):
    """One matrix-vector pair (the per-iteration hot path)."""
    a = paper_point_system.decoder.system_matrix
    n = a.shape[1]
    alpha = np.ones(n, dtype=a.dtype)

    def one_gradient():
        residual = a @ alpha
        return a.T @ residual

    benchmark(one_gradient)
