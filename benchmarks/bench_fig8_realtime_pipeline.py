"""Figure 8 / Section V: the full real-time pipeline at CR ~ 50 %.

Paper's result: the system receives and reconstructs ECG in real time
on the iPhone 3GS with 17.7 % average CPU at CR = 50 % (and < 30 %
generally), while the Shimmer encodes at < 5 % CPU.

Reproduced: measured per-packet bits/iterations feed the discrete-event
simulation; the timed kernel is one simulated 240-second pipeline run.
"""

from __future__ import annotations

import pytest

from repro.experiments import render_table, run_fig8


@pytest.fixture(scope="module")
def fig8_outcome(bench_database):
    return run_fig8(
        nominal_cr=50.0,
        record_name="100",
        packets=16,
        duration_s=240.0,
        database=bench_database,
    )


def test_fig8_pipeline(fig8_outcome, benchmark, bench_database, bench_json):
    report, summary = fig8_outcome

    def simulate():
        return run_fig8(
            nominal_cr=50.0,
            record_name="100",
            packets=4,
            duration_s=60.0,
            database=bench_database,
        )[0]

    benchmark.pedantic(simulate, rounds=3, iterations=1)

    print("\n" + render_table([summary], title="Figure 8: real-time claims"))
    print(
        render_table(
            [
                {
                    "buffer_min_s": report.buffer_min_s,
                    "buffer_max_s": report.buffer_max_s,
                    "mean_latency_s": report.mean_end_to_end_latency_s,
                    "radio_util_percent": report.radio_utilization_percent,
                }
            ],
            title="pipeline detail",
        )
    )
    for key in ("node_cpu_percent", "phone_cpu_percent", "measured_cr"):
        benchmark.extra_info[key] = round(float(summary[key]), 2)

    # the paper's claims
    assert summary["node_cpu_percent"] < 5.0
    assert summary["phone_cpu_percent"] < 30.0
    assert summary["realtime"] is True
    assert report.underruns == 0 and report.overruns == 0
    assert report.buffer_max_s <= 6.0
    bench_json(
        "fig8_realtime_pipeline",
        params={"nominal_cr": 50.0, "packets": 16, "duration_s": 240.0},
        timings={
            "node_cpu_percent": float(summary["node_cpu_percent"]),
            "phone_cpu_percent": float(summary["phone_cpu_percent"]),
            "mean_latency_s": report.mean_end_to_end_latency_s,
        },
    )


def test_fig8_cpu_at_true_cr50(benchmark, bench_database):
    """At *measured* CR = 50 (nominal ~20), CPU approaches the 17.7 %."""
    from repro.config import SystemConfig
    from repro.core import EcgMonitorSystem
    from repro.platforms.iphone import IPhoneModel

    config = SystemConfig().with_target_cr(20.0)
    system = EcgMonitorSystem(config, precision="float32")
    record = bench_database.load("100")
    system.calibrate(record)
    stream = system.stream(record, max_packets=8)

    def model_usage():
        return IPhoneModel().cpu_usage_percent(config, stream.mean_iterations)

    usage = benchmark(model_usage)
    benchmark.extra_info["measured_cr"] = round(
        stream.compression_ratio_percent, 1
    )
    benchmark.extra_info["cpu_percent"] = round(usage, 2)
    assert 40.0 < stream.compression_ratio_percent < 62.0
    assert 10.0 < usage < 25.0  # paper: 17.7 %
