"""Fleet decode engine: cross-stream pooling + sharded multi-process.

Two tentpole claims over the PR-1 batched engine
(``benchmarks/bench_batched_decode.py``):

1. **Cross-stream pooling beats per-stream batching at equal batch
   width.**  Eight simulated nodes shipping the paper's shared fixed
   sensing matrix form one operator group; their ragged 12-window
   streams pool into full 32-wide solves (3 full batches instead of 8
   narrow ones), with one operator/Lipschitz/workspace per group.
   Required: >= 1.2x on one core, with packets bit-identical to the
   serial reference and identical per-window iteration counts.

2. **Sharding operator groups across processes scales with workers.**
   An 8-stream workload over 4 distinct sensing seeds yields 4
   operator groups; ``FleetDecoder(workers=4)`` decodes them in
   parallel, workers rebuilding operators from seeds (no matrix
   pickling).  Required: >= 2x over single-process pooled decode with
   4 workers — asserted only when the machine actually has >= 4 CPUs
   (process parallelism cannot beat 1x on a single core; the
   equivalence assertions run everywhere).

A third claim rides along since the raw-speed solver pass: the
**hybrid precision backend** (``precision="hybrid"``) decodes the same
pooled fleet faster than float64 at equivalent PRD, and the per-worker
solver cache (``_WORKER_RESOURCES``) hands repeated
``solve_measurement_block`` tasks the *same* solver instance with its
workspace arenas at a fixed point — steady-state fleet serving
allocates no new scratch per task.  These land as the ``hybrid``
section of ``BENCH_fleet_decode.json``.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the workload and relaxes
the timing thresholds so ``scripts/run_tier1.sh`` exercises the full
path — including a real 2-worker pool — in seconds.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import EcgMonitorSystem
from repro.core.batch import stream_batched
from repro.ecg import RECORD_NAMES, SyntheticMitBih
from repro.experiments import render_table
from repro.fleet import FleetDecoder, StreamTask, operator_key
from repro.fleet.engine import _group_resources, solve_measurement_block

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: concurrent node streams in the pooled comparison (one operator group)
POOLED_STREAMS = 4 if SMOKE else 8
#: windows per stream — deliberately ragged against the batch width
WINDOWS_PER_STREAM = 6 if SMOKE else 12
#: target solve width shared by both paths
BATCH_SIZE = 16 if SMOKE else 32
#: required pooled-over-per-stream speedup (equal batch width, one core)
MIN_POOLED_SPEEDUP = 0.9 if SMOKE else 1.2
#: sharded comparison: streams spread over this many sensing seeds
SHARD_GROUPS = 2 if SMOKE else 4
SHARD_STREAMS = 4 if SMOKE else 8
SHARD_WORKERS = 2 if SMOKE else 4
#: required sharded-over-pooled speedup, only meaningful with the CPUs
MIN_SHARDED_SPEEDUP = 2.0
#: required hybrid-over-float64 fleet speedup.  The fleet run carries
#: the (shared) encode phase and scheduler overhead, so the end-to-end
#: gain sits below the solver-level 2x lever; smoke's tiny solves are
#: dominated by overhead and only must not regress.
MIN_HYBRID_FLEET_SPEEDUP = 0.8 if SMOKE else 1.2
#: hybrid PRD must sit within this many points of the float64 run
HYBRID_PRD_GAP_BOUND = 0.5


def _build_streams(count: int, windows: int, seed_of=lambda i: 0):
    """``count`` calibrated node systems, stream ``i`` on seed offset
    ``seed_of(i)`` — offset 0 for all reproduces the paper's shared
    fixed matrix (one operator group)."""
    base = SystemConfig()
    database = SyntheticMitBih(
        duration_s=windows * base.packet_seconds + 4.0, seed=2011
    )
    systems, records = [], []
    for index in range(count):
        config = base.replace(seed=base.seed + seed_of(index))
        record = database.load(list(RECORD_NAMES)[index % 8])
        system = EcgMonitorSystem(config)
        system.calibrate(record)
        systems.append(system)
        records.append(record)
    return systems, records


@pytest.fixture(scope="module")
def fleet_bench(bench_json):
    """Accumulate the pooled and hybrid sections into one
    BENCH_fleet_decode.json."""
    payload: dict = {
        "params": {
            "streams": POOLED_STREAMS,
            "windows_per_stream": WINDOWS_PER_STREAM,
            "batch_size": BATCH_SIZE,
            "min_hybrid_speedup": MIN_HYBRID_FLEET_SPEEDUP,
            "hybrid_prd_gap_bound": HYBRID_PRD_GAP_BOUND,
        },
        "timings": {},
        "hybrid": {},
    }
    yield payload
    bench_json(
        "fleet_decode",
        params=payload["params"],
        timings=payload["timings"],
        hybrid=payload["hybrid"],
    )


@pytest.fixture(scope="module")
def pooled_workload():
    systems, records = _build_streams(POOLED_STREAMS, WINDOWS_PER_STREAM)
    # warm the decode path once (operator caches, BLAS init) so neither
    # timed leg pays first-call overheads
    systems[0].stream(records[0], max_packets=2, batch_size=2)
    return systems, records


def test_fleet_pooled_vs_per_stream(pooled_workload, benchmark, fleet_bench):
    """Cross-stream pooling >= 1.2x over per-stream batching, same B."""
    systems, records = pooled_workload
    keys = {operator_key(s.config) for s in systems}
    assert len(keys) == 1, "shared-seed fleet must form one operator group"

    started = time.perf_counter()
    per_stream = [
        stream_batched(
            system,
            record,
            max_packets=WINDOWS_PER_STREAM,
            batch_size=BATCH_SIZE,
        )
        for system, record in zip(systems, records)
    ]
    per_stream_seconds = time.perf_counter() - started

    tasks = [
        StreamTask(system, record, max_packets=WINDOWS_PER_STREAM)
        for system, record in zip(systems, records)
    ]
    started = time.perf_counter()
    pooled = FleetDecoder(batch_size=BATCH_SIZE).run(tasks)
    pooled_seconds = time.perf_counter() - started

    # packets bit-identical to the serial reference; reconstructions
    # follow the serial iterate sequence (identical iteration counts)
    for system, record, fleet_result, batched_result in zip(
        systems, records, pooled, per_stream
    ):
        reference = EcgMonitorSystem(system.config)
        reference.encoder.codebook = system.encoder.codebook
        reference.decoder.codebook = system.encoder.codebook
        serial = reference.stream(record, max_packets=WINDOWS_PER_STREAM)
        assert (
            system.encoder.stats.per_packet_bits
            == reference.encoder.stats.per_packet_bits
        )
        assert [p.iterations for p in fleet_result.packets] == [
            p.iterations for p in serial.packets
        ]
        assert [p.iterations for p in fleet_result.packets] == [
            p.iterations for p in batched_result.packets
        ]
        for fleet_packet, serial_packet in zip(
            fleet_result.packets, serial.packets
        ):
            # solver floating-point noise: batch width changes BLAS
            # summation order; iteration counts above stay identical
            assert fleet_packet.prd_percent == pytest.approx(
                serial_packet.prd_percent, abs=1e-6
            )

    speedup = per_stream_seconds / pooled_seconds
    total = sum(result.num_packets for result in pooled)
    rows = [
        {
            "streams": POOLED_STREAMS,
            "windows_each": WINDOWS_PER_STREAM,
            "batch": BATCH_SIZE,
            "per_stream_s": per_stream_seconds,
            "pooled_s": pooled_seconds,
            "speedup": speedup,
            "windows_per_s": total / pooled_seconds,
        }
    ]
    print("\n" + render_table(rows, title="fleet pooled vs per-stream batched"))
    benchmark.extra_info["pooled_speedup"] = round(speedup, 2)
    fleet_bench["params"]["operator_groups"] = len(keys)
    fleet_bench["timings"].update(
        {
            "per_stream_s": per_stream_seconds,
            "pooled_s": pooled_seconds,
            "pooled_speedup": speedup,
            "pooled_windows_per_s": total / pooled_seconds,
        }
    )
    assert speedup >= MIN_POOLED_SPEEDUP, (
        f"pooled fleet decode reached only {speedup:.2f}x over per-stream "
        f"batched decode (need >= {MIN_POOLED_SPEEDUP}x)"
    )

    def timed_pooled():
        return FleetDecoder(batch_size=BATCH_SIZE).run(tasks)

    benchmark.pedantic(timed_pooled, rounds=1, iterations=1)


def test_fleet_sharded_scaling(bench_json):
    """Sharded decode matches pooled bit-for-bit; >= 2x with the CPUs."""
    systems, records = _build_streams(
        SHARD_STREAMS,
        WINDOWS_PER_STREAM,
        seed_of=lambda i: i % SHARD_GROUPS,
    )
    keys = {operator_key(s.config) for s in systems}
    assert len(keys) == SHARD_GROUPS

    tasks = [
        StreamTask(system, record, max_packets=WINDOWS_PER_STREAM)
        for system, record in zip(systems, records)
    ]
    started = time.perf_counter()
    pooled = FleetDecoder(batch_size=BATCH_SIZE).run(tasks)
    pooled_seconds = time.perf_counter() - started

    started = time.perf_counter()
    sharded = FleetDecoder(batch_size=BATCH_SIZE, workers=SHARD_WORKERS).run(
        tasks
    )
    sharded_seconds = time.perf_counter() - started

    for pooled_result, sharded_result in zip(pooled, sharded):
        assert [p.iterations for p in pooled_result.packets] == [
            p.iterations for p in sharded_result.packets
        ]
        for pooled_packet, sharded_packet in zip(
            pooled_result.packets, sharded_result.packets
        ):
            assert pooled_packet.packet_bits == sharded_packet.packet_bits
            assert pooled_packet.prd_percent == pytest.approx(
                sharded_packet.prd_percent, abs=1e-9
            )

    speedup = pooled_seconds / sharded_seconds
    rows = [
        {
            "streams": SHARD_STREAMS,
            "groups": SHARD_GROUPS,
            "workers": SHARD_WORKERS,
            "pooled_s": pooled_seconds,
            "sharded_s": sharded_seconds,
            "speedup": speedup,
        }
    ]
    print("\n" + render_table(rows, title="fleet sharded vs single-process"))
    bench_json(
        "fleet_decode_sharded",
        params={
            "streams": SHARD_STREAMS,
            "windows_per_stream": WINDOWS_PER_STREAM,
            "batch_size": BATCH_SIZE,
            "operator_groups": SHARD_GROUPS,
            "workers": SHARD_WORKERS,
        },
        timings={
            "pooled_s": pooled_seconds,
            "sharded_s": sharded_seconds,
            "sharded_speedup": speedup,
        },
    )

    cpus = os.cpu_count() or 1
    if SMOKE or cpus < SHARD_WORKERS:
        print(
            f"sharded speedup assertion skipped: smoke={SMOKE}, "
            f"cpus={cpus} < workers={SHARD_WORKERS} (process parallelism "
            "cannot exceed 1x without the cores)"
        )
        return
    assert speedup >= MIN_SHARDED_SPEEDUP, (
        f"sharded fleet decode reached only {speedup:.2f}x over "
        f"single-process pooled (need >= {MIN_SHARDED_SPEEDUP}x "
        f"with {SHARD_WORKERS} workers)"
    )


def test_fleet_hybrid_backend(pooled_workload, fleet_bench):
    """The hybrid backend through the whole fleet path: faster than
    the float64 run at equivalent PRD, and the per-worker solver cache
    keeps its workspace arenas at a fixed point across tasks."""
    systems, records = pooled_workload

    def run(precision):
        fleet = []
        for system, record in zip(systems, records):
            node = EcgMonitorSystem(system.config, precision=precision)
            node.encoder.codebook = system.encoder.codebook
            node.decoder.codebook = system.encoder.codebook
            fleet.append(StreamTask(node, record, max_packets=WINDOWS_PER_STREAM))
        started = time.perf_counter()
        results = FleetDecoder(batch_size=BATCH_SIZE).run(fleet)
        return results, time.perf_counter() - started

    pure, pure_seconds = run("float64")
    hybrid, hybrid_seconds = run("hybrid")

    # unchanged packet bytes, PRD inside the corridor of float64
    prd_gap = 0.0
    for pure_result, hybrid_result in zip(pure, hybrid):
        assert [p.packet_bits for p in pure_result.packets] == [
            p.packet_bits for p in hybrid_result.packets
        ]
        for pure_packet, hybrid_packet in zip(
            pure_result.packets, hybrid_result.packets
        ):
            prd_gap = max(
                prd_gap,
                abs(pure_packet.prd_percent - hybrid_packet.prd_percent),
            )
    assert prd_gap < HYBRID_PRD_GAP_BOUND

    # steady-state worker cache: the same config+precision key must
    # hand back the same solver, and a further solve_measurement_block
    # task must not grow its workspace arenas
    config = systems[0].config
    block_source = EcgMonitorSystem(config, precision="hybrid")
    block_source.encoder.codebook = systems[0].encoder.codebook
    block_source.decoder.codebook = systems[0].encoder.codebook
    packets = []
    samples = block_source._prepare_samples(records[0], 0)
    for index in range(WINDOWS_PER_STREAM):
        window = samples[index * config.n : (index + 1) * config.n]
        packets.append(block_source.encoder.encode(window))
    block = block_source.decoder.payload.measurement_block(
        packets, np.float64
    )
    task = {
        "config": dataclasses.asdict(config),
        "precision": "hybrid",
        "block": block,
        "fractions": np.full(block.shape[1], config.lam, dtype=np.float64),
        "batch_size": BATCH_SIZE,
        "max_iterations": config.max_iterations,
        "tolerance": config.tolerance,
    }
    first = solve_measurement_block(task)
    solver, _transform = _group_resources(config, "hybrid")
    arenas = {key: id(buf) for key, buf in solver.workspace._arenas.items()}
    second = solve_measurement_block(task)
    cached_solver, _transform = _group_resources(config, "hybrid")
    worker_cache_reuse = cached_solver is solver and arenas == {
        key: id(buf) for key, buf in solver.workspace._arenas.items()
    }
    assert worker_cache_reuse
    np.testing.assert_array_equal(first["signals"], second["signals"])
    polish = {
        series["name"]: series["value"]
        for series in second["telemetry"]["counters"]
    }

    total = sum(result.num_packets for result in hybrid)
    speedup = pure_seconds / hybrid_seconds
    rows = [
        {
            "backend": "float64",
            "wall_s": pure_seconds,
            "windows_per_s": total / pure_seconds,
        },
        {
            "backend": "hybrid",
            "wall_s": hybrid_seconds,
            "windows_per_s": total / hybrid_seconds,
        },
    ]
    print("\n" + render_table(rows, title="fleet decode backends"))
    fleet_bench["hybrid"] = {
        "float64_s": pure_seconds,
        "hybrid_s": hybrid_seconds,
        "speedup": speedup,
        "windows_per_s": total / hybrid_seconds,
        "prd_gap": prd_gap,
        "polish_rate": polish["fleet_polish_windows"] / WINDOWS_PER_STREAM,
        "hybrid_windows": polish["fleet_hybrid_windows"],
        "worker_cache_reuse": bool(worker_cache_reuse),
    }
    fleet_bench["timings"]["hybrid_speedup"] = speedup
    assert speedup >= MIN_HYBRID_FLEET_SPEEDUP, (
        f"hybrid fleet decode reached only {speedup:.2f}x over float64 "
        f"(need >= {MIN_HYBRID_FLEET_SPEEDUP}x)"
    )
