"""Live ingestion gateway: real-time capacity + intra-group sharding.

Three tentpole claims for :mod:`repro.ingest` and the column-sharded
fleet engine (PR 3):

1. **Real-time latency.**  Eight node clients stream the paper's
   operating point at its *true* rate (one 2-second window per 2
   seconds) into one gateway on one core.  Every window must
   reconstruct within the paper's real-time budget (the 2-second
   window period) measured from frame arrival to synthesis — pooling
   across streams plus the flush-on-idle deadline keeps latency
   bounded even though no batch is guaranteed to fill.

2. **Sustained throughput.**  The same fleet replayed as fast as the
   links accept frames pins the gateway's decode capacity, reported as
   equivalent concurrent real-time streams (throughput divided by the
   0.5 windows/s one node produces).  Required: >= 8 streams on one
   core.

3. **Intra-group sharding.**  A single-operator-group workload (the
   paper's shared fixed matrix) through ``FleetDecoder(workers=4)``
   splits the pooled column stream across processes: >= 1.5x over the
   single-process pooled decode — asserted only where >= 4 CPUs exist
   (process parallelism cannot beat 1x on one core; the bit-identity
   assertions run everywhere).

Equivalence is pinned two ways in every mode: gateway iteration
trajectories equal the serial reference per stream, and the gateway's
logged batch compositions are replayed through the *offline* solver
(:func:`~repro.fleet.engine.solve_measurement_block`) with
``numpy.testing.assert_array_equal`` — the live path is bit-identical
to the offline path on the same pooled blocks.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the fleet, accelerates
the pacing and relaxes the timing thresholds so ``scripts/run_tier1.sh``
exercises the full wire path in seconds.  All sections aggregate into
one ``BENCH_ingest_gateway.json``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import time

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import EcgMonitorSystem
from repro.core.batch import encode_record_windows
from repro.core.decoder import PacketPayloadDecoder
from repro.ecg import RECORD_NAMES, SyntheticMitBih
from repro.experiments import render_table
from repro.fleet import FleetDecoder, StreamTask
from repro.fleet.engine import solve_measurement_block
from repro.ingest import IngestGateway, NodeClient

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: concurrent node links; the acceptance floor is 8 real-time streams
STREAMS = 4 if SMOKE else 8
#: windows each node streams in the paced (true-rate) scenario
PACED_WINDOWS = 3 if SMOKE else 4
#: pacing of the paced scenario: true rate (2 s/window) in full mode,
#: 8x accelerated in smoke so tier-1 stays fast
PACED_INTERVAL_S = 0.25 if SMOKE else None
#: windows each node streams in the unpaced throughput scenario
THROUGHPUT_WINDOWS = 4 if SMOKE else 6
#: solve-width cap of the gateway's pooled batches
BATCH_SIZE = 8 if SMOKE else 16
FLUSH_MS = 150.0 if SMOKE else 250.0
#: per-window latency bound: the paper's real-time budget is the
#: 2-second window period; smoke keeps only a sanity rail
MAX_LATENCY_S = 10.0 if SMOKE else 2.0
#: required decode capacity, in equivalent concurrent real-time streams
MIN_SUSTAINED_STREAMS = 1.0 if SMOKE else 8.0
#: intra-group sharding comparison
SHARD_STREAMS = 2 if SMOKE else 4
SHARD_WINDOWS = 6 if SMOKE else 12
SHARD_BATCH = 4 if SMOKE else 8
SHARD_WORKERS = 2 if SMOKE else 4
MIN_SHARD_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def gateway_bench(bench_json):
    """Accumulate every section into one BENCH_ingest_gateway.json."""
    payload: dict = {"params": {}, "timings": {}}
    yield payload
    bench_json(
        "ingest_gateway",
        params=payload["params"],
        timings=payload["timings"],
    )


def _build_fleet(count: int, windows: int):
    """``count`` calibrated node systems sharing the paper's fixed
    matrix (one operator group), plus their records."""
    base = SystemConfig()
    database = SyntheticMitBih(
        duration_s=windows * base.packet_seconds + 4.0, seed=2011
    )
    systems, records = [], []
    for index in range(count):
        record = database.load(list(RECORD_NAMES)[index % 8])
        system = EcgMonitorSystem(base)
        system.calibrate(record)
        systems.append(system)
        records.append(record)
    return systems, records


def _serial_reference(system, record, max_packets):
    reference = EcgMonitorSystem(system.config)
    reference.encoder.codebook = system.encoder.codebook
    reference.decoder.codebook = system.encoder.codebook
    return reference.stream(record, max_packets=max_packets)


async def _run_gateway(systems, records, windows, interval_s, batch, flush):
    """Stream every node into one gateway; returns it plus wall time."""
    gateway = IngestGateway(batch_size=batch, flush_ms=flush)
    clients = [
        NodeClient(system, record, max_packets=windows, interval_s=interval_s)
        for system, record in zip(systems, records)
    ]
    links = [gateway.connect_local() for _ in clients]
    started = time.perf_counter()
    reports = await asyncio.gather(
        *[
            client.run(reader, writer)
            for client, (reader, writer) in zip(clients, links)
        ]
    )
    wall = time.perf_counter() - started
    await gateway.close()
    return gateway, reports, wall


def _assert_offline_equivalence(gateway, systems, records, windows):
    """The two-sided equivalence contract of the live path.

    (a) per-stream iteration sequences equal the serial reference —
    the live pooled solves follow the exact serial FISTA trajectory;
    (b) replaying the gateway's logged batch compositions through the
    offline solver reproduces every reconstructed sample bit for bit.

    Sessions are matched to node systems by record name (unique per
    run): session ids follow link-accept order, which need not match
    the client list order.
    """
    assert len(gateway.results) == len(systems)
    # ordered(): stream order even if pooled batches completed out of
    # order (finalize normalizes, this keeps the contract explicit)
    by_record = {
        result.record: result.ordered() for result in gateway.results
    }
    for system, record in zip(systems, records):
        result = by_record[record.name]
        serial = _serial_reference(system, record, max_packets=windows)
        assert result.iterations == [p.iterations for p in serial.packets]
        assert result.indices == list(range(windows))

    # offline columns, recomputed from the bit-identical packets
    columns: dict[tuple[str, int], np.ndarray] = {}
    config = systems[0].config
    for system, record in zip(systems, records):
        _, packets = encode_record_windows(
            system, record, max_packets=windows
        )
        payload = PacketPayloadDecoder(
            system.config, codebook=system.encoder.codebook
        )
        payload.reset()
        block = payload.measurement_block(packets, np.float64)
        for index in range(block.shape[1]):
            columns[(record.name, index)] = block[:, index]

    by_session = {r.session_id: r for r in gateway.results}
    session_record = {r.session_id: r.record for r in gateway.results}
    dc_offset = 1 << (config.adc_bits - 1)
    for _key, members, _reason in gateway.batch_log:
        block = np.stack(
            [
                columns[(session_record[sid], index)]
                for sid, index in members
            ],
            axis=1,
        )
        out = solve_measurement_block(
            {
                "config": dataclasses.asdict(config),
                "precision": "float64",
                "block": block,
                "fractions": np.full(
                    block.shape[1], config.lam, dtype=np.float64
                ),
                "batch_size": block.shape[1],
                "max_iterations": config.max_iterations,
                "tolerance": config.tolerance,
            }
        )
        for column, (session_id, index) in enumerate(members):
            np.testing.assert_array_equal(
                by_session[session_id].samples_adu[index],
                out["signals"][:, column] + dc_offset,
            )


def test_gateway_realtime_latency(gateway_bench):
    """Paced fleet at (accelerated-in-smoke) real-time: every window
    reconstructs inside the paper's 2-second budget."""
    systems, records = _build_fleet(STREAMS, PACED_WINDOWS)
    gateway, reports, wall = asyncio.run(
        _run_gateway(
            systems,
            records,
            PACED_WINDOWS,
            PACED_INTERVAL_S,
            BATCH_SIZE,
            FLUSH_MS,
        )
    )
    assert all(report.error is None for report in reports)
    assert gateway.stats.windows_decoded == STREAMS * PACED_WINDOWS
    _assert_offline_equivalence(gateway, systems, records, PACED_WINDOWS)

    latencies = [
        latency for result in gateway.results for latency in result.latencies_s
    ]
    max_latency = max(latencies)
    mean_latency = float(np.mean(latencies))
    stats = gateway.stats
    rows = [
        {
            "streams": STREAMS,
            "windows_each": PACED_WINDOWS,
            "interval_s": PACED_INTERVAL_S or SystemConfig().packet_seconds,
            "wall_s": wall,
            "max_latency_s": max_latency,
            "mean_latency_s": mean_latency,
            "cross_stream_batches": stats.cross_stream_batches,
        }
    ]
    print("\n" + render_table(rows, title="gateway real-time latency"))
    gateway_bench["params"].update(
        {
            "streams": STREAMS,
            "paced_windows": PACED_WINDOWS,
            "batch_size": BATCH_SIZE,
            "flush_ms": FLUSH_MS,
            "paced_interval_s": PACED_INTERVAL_S,
        }
    )
    gateway_bench["timings"].update(
        {
            "paced_wall_s": wall,
            "paced_max_latency_s": max_latency,
            "paced_mean_latency_s": mean_latency,
            "realtime_budget_s": SystemConfig().packet_seconds,
        }
    )
    assert max_latency < MAX_LATENCY_S, (
        f"worst per-window decode latency {max_latency:.3f}s exceeds "
        f"the {MAX_LATENCY_S:.1f}s budget"
    )


def test_gateway_sustained_throughput(gateway_bench):
    """Unpaced replay pins decode capacity in real-time-stream units."""
    systems, records = _build_fleet(STREAMS, THROUGHPUT_WINDOWS)
    gateway, reports, wall = asyncio.run(
        _run_gateway(
            systems,
            records,
            THROUGHPUT_WINDOWS,
            0.0,  # as fast as the links accept frames
            2 * BATCH_SIZE,
            500.0,
        )
    )
    assert all(report.error is None for report in reports)
    total = gateway.stats.windows_decoded
    assert total == STREAMS * THROUGHPUT_WINDOWS
    _assert_offline_equivalence(
        gateway, systems, records, THROUGHPUT_WINDOWS
    )

    throughput = total / wall
    sustained = throughput * SystemConfig().packet_seconds
    rows = [
        {
            "streams": STREAMS,
            "windows_each": THROUGHPUT_WINDOWS,
            "wall_s": wall,
            "windows_per_s": throughput,
            "sustained_realtime_streams": sustained,
        }
    ]
    print("\n" + render_table(rows, title="gateway sustained throughput"))
    gateway_bench["params"]["throughput_windows"] = THROUGHPUT_WINDOWS
    gateway_bench["timings"].update(
        {
            "unpaced_wall_s": wall,
            "windows_per_s": throughput,
            "sustained_realtime_streams": sustained,
        }
    )
    assert sustained >= MIN_SUSTAINED_STREAMS, (
        f"gateway sustains only {sustained:.1f} equivalent real-time "
        f"streams (need >= {MIN_SUSTAINED_STREAMS})"
    )


def test_intra_group_sharding_speedup(gateway_bench):
    """One operator group column-sharded over workers: bit-identical
    always, >= 1.5x where the CPUs exist."""
    systems, records = _build_fleet(SHARD_STREAMS, SHARD_WINDOWS)

    def tasks_of(source_systems):
        return [
            StreamTask(
                system, record, max_packets=SHARD_WINDOWS,
                keep_signals=True,
            )
            for system, record in zip(source_systems, records)
        ]

    # warm operator caches so neither timed leg pays first-call costs
    systems[0].stream(records[0], max_packets=2, batch_size=2)

    started = time.perf_counter()
    pooled = FleetDecoder(batch_size=SHARD_BATCH).run(tasks_of(systems))
    pooled_seconds = time.perf_counter() - started

    engine = FleetDecoder(batch_size=SHARD_BATCH, workers=SHARD_WORKERS)
    started = time.perf_counter()
    sharded = engine.run(tasks_of(systems))
    sharded_seconds = time.perf_counter() - started
    assert engine.last_num_groups == 1
    assert engine.last_shard_mode == "columns"

    for pooled_result, sharded_result in zip(pooled, sharded):
        assert [p.iterations for p in pooled_result.packets] == [
            p.iterations for p in sharded_result.packets
        ]
        np.testing.assert_array_equal(
            pooled_result.reconstructed_adu,
            sharded_result.reconstructed_adu,
        )

    speedup = pooled_seconds / sharded_seconds
    rows = [
        {
            "streams": SHARD_STREAMS,
            "windows_each": SHARD_WINDOWS,
            "batch": SHARD_BATCH,
            "workers": SHARD_WORKERS,
            "pooled_s": pooled_seconds,
            "sharded_s": sharded_seconds,
            "speedup": speedup,
        }
    ]
    print(
        "\n"
        + render_table(rows, title="intra-group column sharding (one group)")
    )
    gateway_bench["params"].update(
        {
            "shard_streams": SHARD_STREAMS,
            "shard_windows": SHARD_WINDOWS,
            "shard_batch": SHARD_BATCH,
            "shard_workers": SHARD_WORKERS,
        }
    )
    gateway_bench["timings"].update(
        {
            "shard_pooled_s": pooled_seconds,
            "shard_sharded_s": sharded_seconds,
            "shard_speedup": speedup,
        }
    )

    cpus = os.cpu_count() or 1
    if SMOKE or cpus < SHARD_WORKERS:
        print(
            f"intra-group speedup assertion skipped: smoke={SMOKE}, "
            f"cpus={cpus} < workers={SHARD_WORKERS} (process parallelism "
            "cannot exceed 1x without the cores)"
        )
        return
    assert speedup >= MIN_SHARD_SPEEDUP, (
        f"intra-group sharding reached only {speedup:.2f}x over "
        f"single-process pooled decode (need >= {MIN_SHARD_SPEEDUP}x "
        f"with {SHARD_WORKERS} workers)"
    )
