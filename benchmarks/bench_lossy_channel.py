"""Lossy-channel resilience of the live wire path (PR 4 tentpole).

Pins the gateway's sequence-gap recovery contract end to end, with a
real :class:`~repro.ingest.LossyLink` impairing each node's frames:

1. **Clean channel unchanged.**  With no impairment (and with a
   zero-rate ``LossyLink`` in the path, proving the wrapper is a pure
   pass-through) every window decodes, every damage counter is zero,
   iteration trajectories equal the serial reference, and replaying
   the gateway's logged batch compositions through the offline solver
   reproduces the output bit for bit — PR 3's equivalence contract is
   untouched.

2. **Bounded, accounted damage.**  At p = 1-5 % iid frame loss (and
   under a mixed drop/reorder/duplicate/corrupt channel), every
   stream satisfies, exactly:

   - *conservation*: ``accepted + windows_lost + windows_resynced ==
     windows_sent`` — no window leaves the books;
   - *bound*: ``windows_lost + windows_resynced <= loss_events +
     burst_events * (keyframe_interval - 1)`` — every lost frame
     charges its own window, and each *run* of adjacent losses can
     orphan at most one difference chain up to the next keyframe;
   - *agreement*: the gateway's accepted sequences and accounting
     equal :func:`~repro.ingest.replay_survivors` run offline over
     the link's recorded delivered-frame sequence.

3. **Delivered windows undamaged.**  Delivered-window output is
   bit-identical to an offline :func:`solve_measurement_block` decode
   of the same surviving packet set (batch-composition replay), and
   each delivered window's PRD equals the clean-channel run's PRD for
   that window — loss never degrades the windows that *do* arrive.

4. **Forced worst case.**  Deterministically dropping one keyframe
   (and, on a second stream, one mid-chain diff) pins the exact
   damage arithmetic of the resync state machine.

5. **Two-tier recovery (PR 7 tentpole).**  The same iid-loss band
   with ``fec=True`` nodes: parity epochs + NACK retransmission
   drive residual damage to (near) zero — bounded by 2 % of the
   fec-off damage, or one window, whichever is larger — with byte
   overhead within the budget, while the parity-aware offline
   replay still reproduces the gateway's accounting and every
   delivered *or recovered* window stays bit-identical offline.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the fleet and the
keyframe interval so ``scripts/run_tier1.sh`` exercises every section
in seconds.  All sections aggregate into one
``BENCH_lossy_channel.json``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import EcgMonitorSystem
from repro.ecg import RECORD_NAMES, SyntheticMitBih
from repro.experiments import render_table
from repro.fleet.engine import solve_measurement_block
from repro.ingest import (
    IngestGateway,
    LossyChannel,
    NodeClient,
    replay_survivors,
)
from repro.metrics import prd

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: keyframe cadence: the damage bound under test.  Smoke shrinks it so
#: a forced loss exercises a full resync inside a short stream.
KEYFRAME_INTERVAL = 4 if SMOKE else 16
#: concurrent node links per scenario
STREAMS = 2
#: windows each node streams: two keyframe intervals plus a final
#: keyframe, so a mid-stream outage always has a recovery point
WINDOWS = 2 * KEYFRAME_INTERVAL + 1
#: iid loss rates of the statistical section (the pinned 1-5 % band)
LOSS_RATES = (0.1,) if SMOKE else (0.01, 0.05)
BATCH_SIZE = 4
FLUSH_MS = 100.0
#: PRD agreement: delivered windows must match the clean run to
#: solver floating-point noise (PRD is in percent)
PRD_ATOL = 1e-5
#: fec byte-overhead budget: one parity body per epoch is ~1/interval
#: of the packet bytes plus the NACKed retransmits.  The paper-scale
#: interval of 16 stays within the pinned 12 %; smoke's interval of 4
#: makes parity alone ~1/4 of the bytes, so the gate relaxes there.
OVERHEAD_BOUND = 0.6 if SMOKE else 0.12
#: retransmit budget per stream (the gateway default, pinned here so
#: the offline replay gives up at exactly the same point)
NACK_BUDGET = 8


@pytest.fixture(scope="module")
def lossy_bench(bench_json):
    """Accumulate every section into one BENCH_lossy_channel.json."""
    payload: dict = {
        "params": {
            "streams": STREAMS,
            "windows_per_stream": WINDOWS,
            "keyframe_interval": KEYFRAME_INTERVAL,
            "batch_size": BATCH_SIZE,
            "flush_ms": FLUSH_MS,
            "loss_rates": list(LOSS_RATES),
            "nack_budget": NACK_BUDGET,
            "fec_overhead_bound": OVERHEAD_BOUND,
        },
        "timings": {},
        "scenarios": {},
    }
    yield payload
    bench_json(
        "lossy_channel",
        params=payload["params"],
        timings=payload["timings"],
        scenarios=payload["scenarios"],
    )


@pytest.fixture(scope="module")
def fleet():
    """STREAMS calibrated node systems sharing the paper's fixed
    matrix, with the bench's keyframe cadence."""
    base = SystemConfig().replace(keyframe_interval=KEYFRAME_INTERVAL)
    database = SyntheticMitBih(
        duration_s=WINDOWS * base.packet_seconds + 4.0, seed=2011
    )
    systems, records = [], []
    for index in range(STREAMS):
        record = database.load(list(RECORD_NAMES)[index % 8])
        system = EcgMonitorSystem(base)
        system.calibrate(record)
        systems.append(system)
        records.append(record)
    return systems, records


@pytest.fixture(scope="module")
def serial_refs(fleet):
    """Clean-channel serial reference per stream (ground truth)."""
    systems, records = fleet
    refs = []
    for system, record in zip(systems, records):
        reference = EcgMonitorSystem(system.config)
        reference.encoder.codebook = system.encoder.codebook
        reference.decoder.codebook = system.encoder.codebook
        refs.append(
            reference.stream(
                record, max_packets=WINDOWS, keep_signals=True
            )
        )
    return refs


async def _run_fleet(systems, records, channels, fec=False):
    """Stream every node (through its channel, if any) into one
    gateway over the loopback transport."""
    gateway = IngestGateway(
        batch_size=BATCH_SIZE, flush_ms=FLUSH_MS, nack_budget=NACK_BUDGET
    )
    clients = [
        NodeClient(
            system,
            record,
            max_packets=WINDOWS,
            interval_s=0.0,
            lossy_channel=channel,
            fec=fec,
        )
        for system, record, channel in zip(systems, records, channels)
    ]
    links = [gateway.connect_local() for _ in clients]
    loop = asyncio.get_running_loop()
    started = loop.time()
    reports = await asyncio.gather(
        *[
            client.run(reader, writer)
            for client, (reader, writer) in zip(clients, links)
        ]
    )
    wall = loop.time() - started
    await gateway.close()
    return gateway, reports, [client.last_link for client in clients], wall


def _run(systems, records, channels, fec=False):
    return asyncio.run(_run_fleet(systems, records, channels, fec=fec))


def _result_of(gateway, record_name):
    (match,) = [r for r in gateway.results if r.record == record_name]
    return match.ordered()


def _assert_survivor_agreement(gateway, systems, records, links, fec=False):
    """Gateway accounting == offline replay of the delivered frames,
    and conservation holds per stream.  Returns per-stream damage.

    With ``fec`` the replay runs over the recorded ``(kind, body)``
    frame sequence — parity included — and the recovery accounting
    must agree too."""
    damage = []
    for system, record, link in zip(systems, records, links):
        result = _result_of(gateway, record.name)
        assert result.error is None
        if link is None:
            delivered = [p.to_bytes() for p in _encoded(system, record)]
        elif fec:
            delivered = link.stats.delivered_frames
        else:
            delivered = link.stats.delivered
        accepted, accounting = replay_survivors(
            system.config,
            system.encoder.codebook,
            delivered,
            windows_sent=WINDOWS,
            fec=fec,
            nack_budget=NACK_BUDGET,
        )
        assert result.sequences == [seq for seq, _ in accepted]
        assert result.windows_lost == accounting.windows_lost
        assert result.windows_resynced == accounting.windows_resynced
        assert result.frames_corrupt == accounting.frames_corrupt
        assert result.frames_duplicate == accounting.frames_duplicate
        assert (
            result.windows_recovered_parity
            == accounting.windows_recovered_parity
        )
        assert (
            result.windows_recovered_retransmit
            == accounting.windows_recovered_retransmit
        )
        # conservation: nothing leaves the books (recovered windows
        # are delivered windows — counted once, inside num_windows)
        assert (
            result.num_windows
            + result.windows_lost
            + result.windows_resynced
            == WINDOWS
        )
        damage.append(result.windows_lost + result.windows_resynced)
    return damage


def _encoded(system, record):
    from repro.ingest import encoded_packets

    return encoded_packets(system, record, max_packets=WINDOWS)


def _assert_offline_bit_identity(gateway, systems, records, links, fec=False):
    """Replaying the gateway's logged batch compositions through the
    offline solver reproduces every delivered sample bit for bit."""
    columns: dict[tuple[int, int], np.ndarray] = {}
    by_session = {}
    config = systems[0].config
    for system, record, link in zip(systems, records, links):
        result = _result_of(gateway, record.name)
        by_session[result.session_id] = result
        if link is None:
            delivered = [p.to_bytes() for p in _encoded(system, record)]
        elif fec:
            delivered = link.stats.delivered_frames
        else:
            delivered = link.stats.delivered
        accepted, _ = replay_survivors(
            system.config,
            system.encoder.codebook,
            delivered,
            fec=fec,
            nack_budget=NACK_BUDGET,
        )
        for index, (_seq, column) in enumerate(accepted):
            columns[(result.session_id, index)] = column

    dc_offset = 1 << (config.adc_bits - 1)
    for _key, members, _reason in gateway.batch_log:
        block = np.stack(
            [columns[(sid, index)] for sid, index in members], axis=1
        )
        out = solve_measurement_block(
            {
                "config": dataclasses.asdict(config),
                "precision": "float64",
                "block": block,
                "fractions": np.full(
                    block.shape[1], config.lam, dtype=np.float64
                ),
                "batch_size": block.shape[1],
                "max_iterations": config.max_iterations,
                "tolerance": config.tolerance,
            }
        )
        for column, (session_id, index) in enumerate(members):
            np.testing.assert_array_equal(
                by_session[session_id].samples_adu[index],
                out["signals"][:, column] + dc_offset,
            )


def _assert_delivered_prd_matches_clean(
    gateway, systems, records, serial_refs
):
    """Each delivered window's PRD equals the clean-channel run's PRD
    for the same window: losses never degrade surviving windows."""
    for system, record, serial in zip(systems, records, serial_refs):
        result = _result_of(gateway, record.name)
        dc = 1 << (system.config.adc_bits - 1)
        n = system.config.n
        original = serial.original_adu
        for samples, sequence in zip(result.samples_adu, result.sequences):
            window = original[sequence * n : (sequence + 1) * n]
            lossy_prd = prd(window - dc, samples - dc)
            clean_prd = serial.packets[sequence].prd_percent
            assert abs(lossy_prd - clean_prd) < PRD_ATOL, (
                f"window {sequence} of {record.name}: lossy PRD "
                f"{lossy_prd} != clean PRD {clean_prd}"
            )


def test_clean_channel_unchanged(fleet, serial_refs, lossy_bench):
    """loss=0: full delivery, zero damage counters, serial-equal
    trajectories, offline bit-identity — and a zero-rate LossyLink is
    a pure pass-through."""
    systems, records = fleet

    # (a) no wrapper at all: the PR 3 path
    gateway, reports, links, wall = _run(
        systems, records, [None] * STREAMS
    )
    assert all(report.error is None for report in reports)
    assert all(link is None for link in links)
    assert gateway.stats.windows_decoded == STREAMS * WINDOWS
    assert gateway.stats.windows_lost == 0
    assert gateway.stats.windows_resynced == 0
    assert gateway.stats.frames_corrupt == 0
    assert gateway.stats.frames_duplicate == 0
    for system, record, serial in zip(systems, records, serial_refs):
        result = _result_of(gateway, record.name)
        assert result.sequences == list(range(WINDOWS))
        assert result.iterations == [p.iterations for p in serial.packets]
        np.testing.assert_allclose(
            np.concatenate(result.samples_adu),
            serial.reconstructed_adu,
            atol=1e-7,
        )
    _assert_survivor_agreement(gateway, systems, records, links)
    _assert_offline_bit_identity(gateway, systems, records, links)

    # (b) a zero-rate lossy link in the path changes nothing
    channels = [
        LossyChannel(seed=index) for index in range(STREAMS)
    ]
    assert not any(channel.impairs for channel in channels)
    gateway_b, reports_b, _links_b, _ = _run(systems, records, channels)
    assert all(report.error is None for report in reports_b)
    # a clean channel never engages the wrapper (impairs is False), so
    # the frames on the wire are identical by construction; the decode
    # must agree with the serial reference the same way
    assert gateway_b.stats.windows_decoded == STREAMS * WINDOWS
    assert gateway_b.stats.windows_lost == 0
    for record, serial in zip(records, serial_refs):
        result = _result_of(gateway_b, record.name)
        assert result.iterations == [p.iterations for p in serial.packets]

    lossy_bench["timings"]["clean_wall_s"] = wall
    lossy_bench["scenarios"]["clean"] = {
        "windows_decoded": gateway.stats.windows_decoded,
        "damage": 0,
    }


def test_iid_loss_bounded_and_bit_identical(
    fleet, serial_refs, lossy_bench
):
    """The pinned statistical claim: at p = 1-5 % iid loss, damage per
    loss event is bounded by the keyframe interval, delivered windows
    are bit-identical to the offline decode of the surviving packet
    set, and their PRD matches the clean run."""
    systems, records = fleet
    rows = []
    for rate in LOSS_RATES:
        channels = [
            LossyChannel(loss=rate, seed=2011 + index)
            for index in range(STREAMS)
        ]
        gateway, reports, links, wall = _run(systems, records, channels)
        assert all(report.error is None for report in reports)
        damage = _assert_survivor_agreement(
            gateway, systems, records, links
        )
        _assert_offline_bit_identity(gateway, systems, records, links)
        _assert_delivered_prd_matches_clean(
            gateway, systems, records, serial_refs
        )
        for link, stream_damage in zip(links, damage):
            # tight bound: every loss charges its own window, and each
            # *run* of adjacent losses orphans at most one difference
            # chain up to the next keyframe
            events = link.stats.loss_events
            bursts = link.stats.burst_events
            bound = events + bursts * (KEYFRAME_INTERVAL - 1)
            assert stream_damage <= bound, (
                f"damage {stream_damage} exceeds {events} loss events "
                f"+ {bursts} bursts x (interval - 1)"
            )
        dropped = sum(link.stats.frames_dropped for link in links)
        bursts = sum(link.stats.burst_events for link in links)
        decoded = gateway.stats.windows_decoded
        rows.append(
            {
                "loss_rate": rate,
                "sent": STREAMS * WINDOWS,
                "dropped": dropped,
                "decoded": decoded,
                "lost": gateway.stats.windows_lost,
                "resynced": gateway.stats.windows_resynced,
                "burst_events": bursts,
                "damage_bound": dropped + bursts * (KEYFRAME_INTERVAL - 1),
                "wall_s": wall,
            }
        )
        lossy_bench["scenarios"][f"loss_{rate:g}"] = rows[-1]
        lossy_bench["timings"][f"loss_{rate:g}_wall_s"] = wall
    print("\n" + render_table(rows, title="iid loss: accounted damage"))


def test_fec_nack_drives_losses_to_near_zero(
    fleet, serial_refs, lossy_bench
):
    """The PR 7 tentpole claim, end to end over a live loopback: with
    ``fec=True`` the same lossy channel that damages a plain stream
    leaves (almost) nothing lost — parity recovers single-loss epochs
    locally, NACKed retransmits fill the rest — within the byte
    overhead budget, with conservation exact and every delivered or
    recovered window bit-identical to the offline parity-aware
    replay."""
    systems, records = fleet
    rows = []
    for rate in LOSS_RATES:
        off_gateway, off_reports, _off_links, _ = _run(
            systems,
            records,
            [LossyChannel(loss=rate, seed=2011 + i) for i in range(STREAMS)],
        )
        assert all(report.error is None for report in off_reports)
        off_damage = (
            off_gateway.stats.windows_lost
            + off_gateway.stats.windows_resynced
        )
        gateway, reports, links, wall = _run(
            systems,
            records,
            [LossyChannel(loss=rate, seed=2011 + i) for i in range(STREAMS)],
            fec=True,
        )
        assert all(report.error is None for report in reports)
        _assert_survivor_agreement(
            gateway, systems, records, links, fec=True
        )
        _assert_offline_bit_identity(
            gateway, systems, records, links, fec=True
        )
        _assert_delivered_prd_matches_clean(
            gateway, systems, records, serial_refs
        )
        fec_damage = (
            gateway.stats.windows_lost + gateway.stats.windows_resynced
        )
        # residual damage: <= 2 % of the fec-off damage, or one window
        assert fec_damage <= max(1, round(0.02 * off_damage)), (
            f"loss {rate}: fec damage {fec_damage} vs off {off_damage}"
        )
        if off_damage:
            assert fec_damage < off_damage
        recovered = (
            gateway.stats.windows_recovered_parity
            + gateway.stats.windows_recovered_retransmit
        )
        if off_damage:
            assert recovered > 0  # the improvement came from recovery
        # byte overhead: parity + retransmits over packet bytes
        for report in reports:
            assert report.parity_bytes > 0  # fec actually engaged
            assert report.overhead_ratio <= OVERHEAD_BOUND, (
                f"overhead {report.overhead_ratio:.3f} exceeds "
                f"{OVERHEAD_BOUND}"
            )
        overhead = max(report.overhead_ratio for report in reports)
        rows.append(
            {
                "loss_rate": rate,
                "sent": STREAMS * WINDOWS,
                "fec_off_damage": off_damage,
                "fec_damage": fec_damage,
                "recovered_parity": (
                    gateway.stats.windows_recovered_parity
                ),
                "recovered_retransmit": (
                    gateway.stats.windows_recovered_retransmit
                ),
                "nacks_sent": gateway.stats.nacks_sent,
                "late_retransmits": (
                    gateway.stats.frames_late_retransmit
                ),
                "overhead_ratio": round(overhead, 4),
                "wall_s": wall,
            }
        )
        lossy_bench["scenarios"][f"fec_loss_{rate:g}"] = rows[-1]
        lossy_bench["timings"][f"fec_loss_{rate:g}_wall_s"] = wall
    print(
        "\n"
        + render_table(rows, title="fec + nack: residual damage")
    )


def test_forced_keyframe_and_diff_drop(fleet, serial_refs, lossy_bench):
    """Deterministic worst case: stream 0 loses the second keyframe
    (sequence = keyframe_interval), stream 1 loses a mid-chain diff —
    the resync arithmetic must come out exactly."""
    systems, records = fleet
    interval = KEYFRAME_INTERVAL
    channels = [
        LossyChannel(drop_sequences=(interval,), seed=1),
        LossyChannel(drop_sequences=(interval + 2,), seed=2),
    ]
    gateway, reports, links, _wall = _run(systems, records, channels)
    assert all(report.error is None for report in reports)
    _assert_survivor_agreement(gateway, systems, records, links)
    _assert_offline_bit_identity(gateway, systems, records, links)
    _assert_delivered_prd_matches_clean(
        gateway, systems, records, serial_refs
    )

    # stream 0: the keyframe at `interval` is gone, so every diff of
    # its segment is unusable until the keyframe at 2*interval — the
    # worst case, exactly one full interval of damage
    keyframe_victim = _result_of(gateway, records[0].name)
    assert keyframe_victim.windows_lost == 1
    assert keyframe_victim.windows_resynced == interval - 1
    assert (
        keyframe_victim.windows_lost + keyframe_victim.windows_resynced
        == interval
    )
    expected = list(range(interval)) + [2 * interval]
    assert keyframe_victim.sequences == expected

    # stream 1: a diff drop orphans only the tail of its segment
    diff_victim = _result_of(gateway, records[1].name)
    assert diff_victim.windows_lost == 1
    assert diff_victim.windows_resynced == interval - 3
    assert diff_victim.sequences == (
        list(range(interval + 2)) + list(range(2 * interval, WINDOWS))
    )
    lossy_bench["scenarios"]["forced_drops"] = {
        "keyframe_victim_damage": interval,
        "diff_victim_damage": interval - 2,
    }


def test_mixed_impairments_conserve_accounting(fleet, lossy_bench):
    """Drops, reorders, duplicates and bit flips together: the stream
    survives with conservation intact and delivered windows still
    bit-identical offline."""
    systems, records = fleet
    channels = [
        LossyChannel(
            loss=0.05,
            reorder=0.1,
            duplicate=0.1,
            corrupt=0.05,
            seed=77 + index,
        )
        for index in range(STREAMS)
    ]
    gateway, reports, links, wall = _run(systems, records, channels)
    assert all(report.error is None for report in reports)
    assert gateway.stats.sessions_errored == 0
    damage = _assert_survivor_agreement(gateway, systems, records, links)
    _assert_offline_bit_identity(gateway, systems, records, links)
    for link, stream_damage in zip(links, damage):
        # reordered frames can also open (transient) gaps: every
        # impairment event is a potential loss event for the bound
        events = (
            link.stats.frames_dropped
            + link.stats.frames_corrupted
            + link.stats.frames_reordered
        )
        assert stream_damage <= events * KEYFRAME_INTERVAL
    lossy_bench["scenarios"]["mixed"] = {
        "decoded": gateway.stats.windows_decoded,
        "lost": gateway.stats.windows_lost,
        "resynced": gateway.stats.windows_resynced,
        "corrupt_frames": gateway.stats.frames_corrupt,
        "duplicate_frames": gateway.stats.frames_duplicate,
        "wall_s": wall,
    }
    lossy_bench["timings"]["mixed_wall_s"] = wall
