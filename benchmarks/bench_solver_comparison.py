"""Solver comparison: why the paper picks FISTA (Sections I-II).

The paper cites four algorithm families — interior-point (basis
pursuit), gradient projection (GPSR), iterative thresholding
(ISTA/TwIST) and greedy pursuit (OMP) — and adopts FISTA for its
O(1/k^2) rate with ISTA's per-iteration cost.  This bench makes the
choice quantitative on the actual ECG workload: iterations, wall-clock
time and reconstruction PRD per solver at the paper's operating point.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.experiments import render_table
from repro.metrics import prd
from repro.solvers import (
    basis_pursuit,
    fista,
    gpsr,
    ista,
    lambda_from_fraction,
    omp,
    twist,
)
from repro.solvers.lipschitz import lipschitz_constant
from repro.wavelet import WaveletTransform


@pytest.fixture(scope="module")
def workload(bench_database, paper_point_windows):
    config = SystemConfig()
    transform = WaveletTransform(config.n, config.wavelet, config.levels)
    from repro.sensing import SparseBinaryMatrix

    phi = SparseBinaryMatrix(config.m, config.n, d=config.d, seed=config.seed)
    system = np.asarray(phi.sparse() @ transform.synthesis_matrix())
    x = (paper_point_windows[2] - 1024).astype(np.float64)
    y = phi.measure(x)
    lam = lambda_from_fraction(system, y, config.lam)
    return {
        "a": system,
        "y": y,
        "x": x,
        "lam": lam,
        "lipschitz": lipschitz_constant(system),
        "transform": transform,
    }


def _run_all(workload):
    a, y, lam = workload["a"], workload["y"], workload["lam"]
    transform, x = workload["transform"], workload["x"]
    solvers = {
        "fista": lambda: fista(
            a, y, lam, max_iterations=4000, tolerance=1e-5,
            lipschitz=workload["lipschitz"],
        ),
        "ista": lambda: ista(
            a, y, lam, max_iterations=12000, tolerance=1e-5,
            lipschitz=workload["lipschitz"],
        ),
        "twist": lambda: twist(a, y, lam, max_iterations=4000, tolerance=1e-5),
        "gpsr": lambda: gpsr(a, y, lam / 2, max_iterations=4000, tolerance=1e-5),
        "omp": lambda: omp(a, y, sparsity=a.shape[0] // 3),
        "basis_pursuit": lambda: basis_pursuit(a, y),
    }
    rows = []
    for name, solve in solvers.items():
        started = time.perf_counter()
        result = solve()
        elapsed = time.perf_counter() - started
        reconstruction = transform.inverse(
            np.asarray(result.coefficients, dtype=np.float64)
        )
        rows.append(
            {
                "solver": name,
                "iterations": result.iterations,
                "time_s": elapsed,
                "prd_percent": prd(x, reconstruction),
                "converged": result.converged,
            }
        )
    return rows


def test_solver_comparison(workload, benchmark, bench_json):
    rows = _run_all(workload)

    def fista_solve():
        return fista(
            workload["a"], workload["y"], workload["lam"],
            max_iterations=4000, tolerance=1e-5,
            lipschitz=workload["lipschitz"],
        )

    benchmark.pedantic(fista_solve, rounds=5, iterations=1)

    print("\n" + render_table(rows, title="solver comparison (paper picks FISTA)"))
    by_name = {row["solver"]: row for row in rows}
    for name, row in by_name.items():
        benchmark.extra_info[f"{name}_time_s"] = round(row["time_s"], 4)

    # the paper's qualitative claims
    assert by_name["fista"]["iterations"] < by_name["ista"]["iterations"]
    assert by_name["fista"]["time_s"] < by_name["basis_pursuit"]["time_s"]
    # all l1 solvers land on comparable quality
    l1_prds = [by_name[n]["prd_percent"] for n in ("fista", "ista", "twist", "gpsr")]
    assert max(l1_prds) - min(l1_prds) < 6.0
    bench_json("solver_comparison", rows=rows)


def test_ista_kernel(workload, benchmark):
    """Baseline single solve for the timing table."""

    def ista_solve():
        return ista(
            workload["a"], workload["y"], workload["lam"],
            max_iterations=1000, tolerance=1e-4,
            lipschitz=workload["lipschitz"],
        )

    benchmark.pedantic(ista_solve, rounds=3, iterations=1)
