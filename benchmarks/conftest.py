"""Shared fixtures for the benchmark harness.

Each paper figure gets one bench module.  The expensive CR sweeps are
session-scoped fixtures so the series is computed once and shared by
the bench functions that report and assert on it; pytest-benchmark
timings are attached to the representative computational kernels.

Run with::

    pytest benchmarks/ --benchmark-only

Every bench module also writes a machine-readable ``BENCH_<name>.json``
(via :func:`write_bench_json`) so the perf trajectory can be tracked
across PRs by tooling instead of living only in stdout;
``REPRO_BENCH_JSON_DIR`` overrides the output directory (default
``benchmarks/results/``, gitignored — the files carry timestamps and
per-machine timings, so CI/drivers collect them rather than git).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

import numpy as np
import pytest

#: schema version of the BENCH_<name>.json payload; bump when the
#: envelope (not a bench's own series) changes shape
BENCH_JSON_SCHEMA = 2


def _git_commit() -> str | None:
    """The repo HEAD the run measured, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None

from repro.config import SystemConfig
from repro.core import EcgMonitorSystem
from repro.ecg import SyntheticMitBih
from repro.ecg.resample import resample_record

#: sweep sizing shared by the figure benches (full corpus diversity,
#: tractable wall-clock)
BENCH_RECORDS = ("100", "119", "201", "209")
BENCH_PACKETS = 8


def _to_jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays and mappings into JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def write_bench_json(
    name: str,
    *,
    params: dict[str, Any] | None = None,
    timings: dict[str, Any] | None = None,
    **extra: Any,
) -> Path:
    """Persist one benchmark's machine-readable outcome.

    Writes ``BENCH_<name>.json`` with the workload parameters, wall
    clock/speedup timings and any extra series the bench wants pinned,
    plus enough provenance to make the perf trajectory comparable
    across runs: schema version, UTC timestamp, the git commit the
    numbers were measured at, CPU count, and whether the run was a
    smoke (``REPRO_BENCH_SMOKE``) — a smoke number must never be
    mistaken for a full-mode one by downstream tooling.  Returns the
    written path.
    """
    directory = Path(
        os.environ.get(
            "REPRO_BENCH_JSON_DIR", Path(__file__).parent / "results"
        )
    )
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": BENCH_JSON_SCHEMA,
        "bench": name,
        "smoke": os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0"),
        "unix_time": time.time(),
        "utc_time": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_commit": _git_commit(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "params": _to_jsonable(params or {}),
        "timings": _to_jsonable(timings or {}),
    }
    for key, value in extra.items():
        payload[key] = _to_jsonable(value)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_json():
    """The :func:`write_bench_json` helper, as a fixture.

    Bench modules take this instead of importing ``conftest`` (which is
    not importable as a module under pytest's rootdir rules).
    """
    return write_bench_json


@pytest.fixture(scope="session")
def bench_database() -> SyntheticMitBih:
    """64-second records: >= BENCH_PACKETS windows each at 256 Hz."""
    return SyntheticMitBih(duration_s=64.0, seed=2011)


@pytest.fixture(scope="session")
def paper_point_system(bench_database) -> EcgMonitorSystem:
    """The paper's operating point, calibrated on record 100."""
    system = EcgMonitorSystem(SystemConfig())
    system.calibrate(bench_database.load("100"))
    return system


@pytest.fixture(scope="session")
def paper_point_windows(bench_database) -> list[np.ndarray]:
    """Digitized 512-sample windows of record 100 at 256 Hz."""
    record = resample_record(bench_database.load("100"), 256.0)
    samples = record.adc.digitize(record.channel(0))
    n = SystemConfig().n
    return [
        samples[i * n : (i + 1) * n] for i in range(len(samples) // n)
    ]
