"""Shared fixtures for the benchmark harness.

Each paper figure gets one bench module.  The expensive CR sweeps are
session-scoped fixtures so the series is computed once and shared by
the bench functions that report and assert on it; pytest-benchmark
timings are attached to the representative computational kernels.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import EcgMonitorSystem
from repro.ecg import SyntheticMitBih
from repro.ecg.resample import resample_record

#: sweep sizing shared by the figure benches (full corpus diversity,
#: tractable wall-clock)
BENCH_RECORDS = ("100", "119", "201", "209")
BENCH_PACKETS = 8


@pytest.fixture(scope="session")
def bench_database() -> SyntheticMitBih:
    """64-second records: >= BENCH_PACKETS windows each at 256 Hz."""
    return SyntheticMitBih(duration_s=64.0, seed=2011)


@pytest.fixture(scope="session")
def paper_point_system(bench_database) -> EcgMonitorSystem:
    """The paper's operating point, calibrated on record 100."""
    system = EcgMonitorSystem(SystemConfig())
    system.calibrate(bench_database.load("100"))
    return system


@pytest.fixture(scope="session")
def paper_point_windows(bench_database) -> list[np.ndarray]:
    """Digitized 512-sample windows of record 100 at 256 Hz."""
    record = resample_record(bench_database.load("100"), 256.0)
    samples = record.adc.digitize(record.channel(0))
    n = SystemConfig().n
    return [
        samples[i * n : (i + 1) * n] for i in range(len(samples) // n)
    ]
