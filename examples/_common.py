"""Shared helpers for the example scripts (ASCII plotting, headers)."""

from __future__ import annotations

import numpy as np


def banner(title: str) -> None:
    """Print a section banner."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def ascii_plot(
    signal: np.ndarray,
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a 1-D signal as an ASCII strip chart."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.size == 0:
        return "(empty signal)"
    # decimate/interpolate to the terminal width
    x = np.linspace(0, len(signal) - 1, width)
    y = np.interp(x, np.arange(len(signal)), signal)
    low, high = float(y.min()), float(y.max())
    if high == low:
        high = low + 1.0
    rows = []
    levels = np.round((y - low) / (high - low) * (height - 1)).astype(int)
    for row in range(height - 1, -1, -1):
        line = "".join("*" if level == row else " " for level in levels)
        rows.append(line)
    chart = "\n".join(rows)
    footer = f"[min {low:.3g}, max {high:.3g}] {label}"
    return chart + "\n" + footer
