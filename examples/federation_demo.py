"""Federation walkthrough: two operator groups, two gateways, one kill.

Spins up a :class:`~repro.ingest.FederationFrontDoor` with two real
gateway worker processes behind a consistent-hash ring, streams four
simulated wearable nodes in two operator groups through it, then
kills the busier gateway mid-stream and watches the failover: the
victim nodes reconnect with backoff, the front door remaps only the
dead gateway's ring segment, the streams replay from their FEC
retransmit ring, and every window still decodes.

This is ``repro-ecg serve --gateways 2 --groups 2 --simulate 4 --fec``
as a self-contained script, plus a deliberate gateway murder the CLI
does not offer.

Usage::

    python examples/federation_demo.py
"""

from __future__ import annotations

import asyncio
import dataclasses
import warnings

from repro import EcgMonitorSystem, SyntheticMitBih, SystemConfig
from repro.fleet.scheduler import operator_key
from repro.ingest import FederationFrontDoor, NodeClient

from _common import banner

#: windows each node streams (2 s of signal per window)
WINDOWS = 6
#: accelerated pacing so the demo finishes quickly
INTERVAL_S = 0.1
#: (record, operator group) per node: group g perturbs the config
#: seed, so each group has its own sensing matrix, its own operator
#: key, and therefore its own ring segment
NODES = (("100", 0), ("119", 0), ("201", 1), ("231", 1))


async def main() -> None:
    banner("federated CS-ECG ingestion: 4 nodes -> 2 gateway processes")

    base = SystemConfig().with_target_cr(50.0)
    database = SyntheticMitBih(
        duration_s=WINDOWS * base.packet_seconds + 4.0
    )
    clients = []
    for record_name, group in NODES:
        record = database.load(record_name)
        config = dataclasses.replace(base, seed=base.seed + group)
        system = EcgMonitorSystem(config)
        system.calibrate(record)
        clients.append(
            NodeClient(
                system,
                record,
                max_packets=WINDOWS,
                interval_s=INTERVAL_S,
                fec=True,          # retransmit ring: zero-loss failover
                reconnect=5,       # survive the gateway kill below
                backoff_base_s=0.05,
            )
        )

    front_door = FederationFrontDoor(gateways=2, batch_size=4, flush_ms=200.0)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        port = await front_door.start("127.0.0.1", 0)
        print(f"front door listening on 127.0.0.1:{port}")
        for worker in front_door._workers.values():
            mode = "thread (fallback)" if worker.in_process else "process"
            print(f"  {worker.gateway_id}: backend 127.0.0.1:{worker.port} [{mode}]")

        streams = [
            asyncio.ensure_future(client.run_tcp("127.0.0.1", port))
            for client in clients
        ]
        await asyncio.sleep(4 * INTERVAL_S)

        banner("routing (seeded ring: placement is reproducible)")
        for client, (_, group) in zip(clients, NODES):
            key = operator_key(
                client.system.config, client.system.decoder.precision
            )
            placement = front_door.ring.lookup(key)
            print(
                f"record {client.record.name} (group {group}) "
                f"-> {placement}"
            )

        victim = max(
            front_door._workers.values(),
            key=lambda worker: len(worker.sessions),
        )
        if victim.in_process:
            print("\n(thread fallback active: skipping the gateway kill)")
        else:
            banner(f"killing {victim.gateway_id} mid-stream")
            await front_door.kill_gateway(victim.gateway_id)
            print(
                f"{victim.gateway_id} is gone; its ring segment remaps "
                "to the survivor, its nodes reconnect and replay"
            )

        reports = await asyncio.gather(*streams)
        await front_door.close()
    for warning in caught:
        print(f"  [warning] {warning.message}")

    banner("what each node observed")
    for report in reports:
        status = "ok" if report.error is None else f"ERROR {report.error}"
        print(
            f"record {report.record}: {report.sent} sent, "
            f"{report.acked} acked ({report.reconnects} reconnect(s)) "
            f"[{status}]"
        )

    banner("fleet-wide roll-up (monoid merge of per-gateway deltas)")
    final = front_door.federation_stats()
    print(f"gateways:        {final.gateways} started, "
          f"{final.gateways_alive} alive at close")
    print(f"streams routed:  {final.streams_routed} "
          f"(by gateway: {final.streams_by_gateway})")
    print(f"reroutes:        {final.reroutes}")
    print(f"windows decoded: {final.windows_decoded}, "
          f"lost: {final.windows_lost}")

    banner("per-stream outcome after the merge")
    merged = front_door.merged_results()
    for client in clients:
        result = merged[f"{client.record.name}:0"]
        print(
            f"record {result.record}: {len(result.iterations)}/{WINDOWS} "
            f"windows decoded, lost {result.windows_lost}, "
            f"resynced {result.windows_resynced}"
        )


if __name__ == "__main__":
    asyncio.run(main())
