"""Ambulatory (Holter-style) monitoring scenario: energy and lifetime.

The paper's introduction motivates CS compression with multi-day
ambulatory monitoring.  This example streams a synthetic arrhythmia
record through the full system at several compression ratios and
projects the Shimmer node's battery lifetime with and without
compression, reproducing the 12.9 % lifetime-extension claim and
showing how it scales with CR.

Usage::

    python examples/holter_monitor.py
"""

from __future__ import annotations

from repro import EcgMonitorSystem, SyntheticMitBih, SystemConfig
from repro.experiments import render_table
from repro.platforms import ShimmerNode

from _common import banner


def main() -> None:
    banner("Holter scenario: CS compression vs battery lifetime")

    database = SyntheticMitBih(duration_s=60.0)
    record = database.load("233")  # PVC-rich ambulatory record
    node = ShimmerNode()
    base_config = SystemConfig()

    raw_power = node.streaming_power(base_config)
    raw_hours = node.lifetime_hours(raw_power)
    print(
        f"uncompressed streaming: {raw_power.total_mw:.2f} mW average "
        f"-> {raw_hours:.1f} h on a "
        f"{node.battery.capacity_mah:.0f} mAh battery"
    )

    rows = []
    for nominal_cr in (30.0, 50.0, 70.0):
        config = base_config.with_target_cr(nominal_cr)
        system = EcgMonitorSystem(config)
        system.calibrate(record)
        stream = system.stream(record, max_packets=20)
        mean_bits = sum(p.packet_bits for p in stream.packets) / stream.num_packets
        power = node.compressed_power(config, mean_bits)
        rows.append(
            {
                "nominal_cr": nominal_cr,
                "measured_cr": stream.compression_ratio_percent,
                "prd_percent": stream.mean_prd_percent,
                "node_power_mw": power.total_mw,
                "lifetime_h": node.lifetime_hours(power),
                "extension_percent": node.lifetime_extension_percent(
                    config, mean_bits
                ),
            }
        )
    # the paper's reference point: exactly half the original bits
    half_bits = base_config.original_packet_bits * 0.5
    power = node.compressed_power(base_config, half_bits)
    rows.append(
        {
            "nominal_cr": float("nan"),
            "measured_cr": 50.0,
            "prd_percent": float("nan"),
            "node_power_mw": power.total_mw,
            "lifetime_h": node.lifetime_hours(power),
            "extension_percent": node.lifetime_extension_percent(
                base_config, half_bits
            ),
        }
    )
    print()
    print(render_table(rows, title="lifetime vs compression (paper: +12.9 % at CR = 50 %)"))

    banner("multi-day projection")
    best = max(rows[:-1], key=lambda r: r["lifetime_h"])
    print(
        f"at measured CR {best['measured_cr']:.1f} %, the node lasts "
        f"{best['lifetime_h']:.1f} h ({best['lifetime_h'] / 24:.1f} days) — "
        f"vs {raw_hours:.1f} h streaming raw"
    )


if __name__ == "__main__":
    main()
