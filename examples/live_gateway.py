"""Live gateway walkthrough: three wearable nodes, one coordinator.

Spins up the asyncio ingestion gateway on a real TCP port, connects
three simulated node clients that replay synthetic MIT-BIH records at
an accelerated sample rate, and prints what the coordinator saw: pooled
batch composition, per-stream decode latency, and a check that the
live reconstruction matches the offline serial decoder.

This is the paper's deployment loop end to end — encoder on the node,
length-prefixed packet frames on the wire, operator-keyed batched
FISTA at the coordinator — in one self-contained script.

Usage::

    python examples/live_gateway.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro import EcgMonitorSystem, SyntheticMitBih, SystemConfig
from repro.ingest import IngestGateway, NodeClient
from repro.telemetry import (
    MetricsRegistry,
    MetricsServer,
    render_snapshot_table,
    scrape_local,
)

from _common import banner

#: windows each node streams (2 s of signal per window)
WINDOWS = 4
#: pacing between a node's packets — 4x faster than the true 2 s rate
#: so the demo finishes quickly; pass None for true real time
INTERVAL_S = 0.5


async def main() -> None:
    banner("live CS-ECG ingestion: 3 nodes -> 1 gateway (TCP)")

    # Every node ships the paper's shared fixed sensing matrix (same
    # seed), so the gateway pools all three streams into one operator
    # group and batches fill across them.
    config = SystemConfig().with_target_cr(50.0)
    database = SyntheticMitBih(duration_s=WINDOWS * config.packet_seconds + 4.0)
    nodes = []
    for name in ("100", "119", "231"):
        record = database.load(name)
        system = EcgMonitorSystem(config)
        system.calibrate(record)  # per-node Huffman codebook
        nodes.append(
            NodeClient(
                system,
                record,
                max_packets=WINDOWS,
                interval_s=INTERVAL_S,
            )
        )

    # one registry is the telemetry plane for the whole run: the
    # gateway publishes sessions/flushes/latencies into it, and the
    # scrape endpoint serves it in the Prometheus text format
    registry = MetricsRegistry()
    gateway = IngestGateway(batch_size=4, flush_ms=300.0, telemetry=registry)
    port = await gateway.start("127.0.0.1", 0)
    metrics = MetricsServer(registry)
    metrics_port = await metrics.start("127.0.0.1", 0)
    print(f"gateway listening on 127.0.0.1:{port} "
          f"(batch 4, flush 300 ms, in-process solves)")
    print(f"metrics exposition on http://127.0.0.1:{metrics_port}/metrics")

    reports = await asyncio.gather(
        *[node.run_tcp("127.0.0.1", port) for node in nodes]
    )
    # TCP handler tasks finalize results just after the clients return
    while len(gateway.results) < len(nodes):
        await asyncio.sleep(0.01)
    scraped = await scrape_local(metrics_port)
    await metrics.close()
    await gateway.close()

    banner("what each node observed")
    for report in reports:
        latencies = ", ".join(
            f"{latency:.0f}" for latency in report.gateway_latencies_ms
        )
        print(
            f"record {report.record}: {report.acked}/{report.sent} windows "
            f"decoded, per-window latency [{latencies}] ms"
        )

    banner("what the coordinator did")
    stats = gateway.stats
    print(f"pooled batches:        {stats.batches} "
          f"({stats.cross_stream_batches} spanning streams)")
    print(f"flush triggers:        {stats.flushes_full} full, "
          f"{stats.flushes_deadline} deadline, {stats.flushes_drain} drain")
    worst = (
        "n/a (no window decoded)"
        if stats.max_latency_s is None
        else f"{1000 * stats.max_latency_s:.0f} ms"
    )
    print(f"worst decode latency:  {worst} "
          f"(real-time budget: {1000 * config.packet_seconds:.0f} ms)")
    for key, members, reason in gateway.batch_log:
        streams = ", ".join(f"s{sid}w{idx}" for sid, idx in members)
        print(f"  batch[{reason:>8}]: {streams}")

    banner("the telemetry plane (one registry, every surface)")
    print(
        render_snapshot_table(
            registry.snapshot(),
            title="ingest metrics (counters, gauges, histograms)",
            prefix="ingest_",
        )
    )
    scrape_lines = [
        line for line in scraped.splitlines()
        if line.startswith("ingest_windows_decoded")
    ]
    print("as scraped over HTTP:")
    for line in scrape_lines:
        print(f"  {line}")

    banner("live output vs offline serial decoder")
    # session ids follow TCP accept order, which need not match the
    # node list order — pair by record name (unique in this demo)
    by_record = {result.record: result for result in gateway.results}
    for node in nodes:
        # ordered(): windows in stream order even if pooled batches
        # completed out of order on a process pool
        result = by_record[node.record.name].ordered()
        reference = EcgMonitorSystem(node.system.config)
        reference.encoder.codebook = node.system.encoder.codebook
        reference.decoder.codebook = node.system.encoder.codebook
        serial = reference.stream(node.record, max_packets=WINDOWS,
                                  keep_signals=True)
        live = np.concatenate(result.samples_adu)
        drift = float(np.max(np.abs(live - serial.reconstructed_adu)))
        same_iters = result.iterations == [
            p.iterations for p in serial.packets
        ]
        print(
            f"record {result.record}: iterations identical: {same_iters}, "
            f"max |live - serial| = {drift:.2e} adu"
        )


if __name__ == "__main__":
    asyncio.run(main())
