"""Multi-lead Holter deployment: both channels, multi-day planning.

Combines two extensions of this reproduction: the two-lead monitor
(MIT-BIH records carry two channels) and the Holter session planner
built on the calibrated Shimmer energy model.  Answers the deployment
questions the paper's introduction raises: how many days of two-lead
monitoring does one battery buy, and does the data fit the mote's SD
card?

Usage::

    python examples/multilead_holter.py
"""

from __future__ import annotations

from repro import SyntheticMitBih, SystemConfig
from repro.core import MultiChannelMonitor
from repro.ecg import HolterPlanner
from repro.experiments import render_table

from _common import banner


def main() -> None:
    banner("two-lead CS monitoring (records are two-channel)")
    config = SystemConfig()
    database = SyntheticMitBih(duration_s=40.0)
    record = database.load("208")  # mixed PVCs, clinically interesting

    monitor = MultiChannelMonitor(config, channels=2)
    monitor.calibrate(record)
    result = monitor.stream(record, max_packets=10)

    rows = [
        {
            "lead": index,
            "measured_cr": stream.compression_ratio_percent,
            "prd_percent": stream.mean_prd_percent,
            "snr_db": stream.mean_snr_db,
            "iterations": stream.mean_iterations,
        }
        for index, stream in enumerate(result.per_channel)
    ]
    print(render_table(rows, title=f"record 208 ({record.rhythm}), both leads"))
    print(
        f"\ncombined stream: CR {result.compression_ratio_percent:.1f} %, "
        f"worst-lead PRD {result.worst_channel_prd_percent:.2f} %, "
        f"radio rate {result.bits_per_second():.0f} bps"
    )

    banner("multi-day session planning (per lead)")
    planner = HolterPlanner(config=config)
    mean_bits = result.total_bits / (
        result.num_channels * result.per_channel[0].num_packets
    )
    plans = []
    for days in (1, 3, 5):
        plan = planner.plan(days * 24.0, mean_bits)
        plans.append(
            {
                "session_days": days,
                "node_power_mw": plan.node_power_mw,
                "battery_days": plan.battery_days,
                "battery_limited": plan.battery_limited,
                "data_volume_mb": plan.data_volume_mb,
                "fits_sd_card": planner.fits_sd_card(plan),
            }
        )
    print(render_table(plans))
    raw = planner.plan_uncompressed(24.0)
    best = planner.plan(24.0, mean_bits)
    print(
        f"\ncompression extends battery life from {raw.battery_days:.2f} to "
        f"{best.battery_days:.2f} days "
        f"(+{best.lifetime_extension_percent:.1f} %)"
    )


if __name__ == "__main__":
    main()
