"""Quickstart: compress and reconstruct one 2-second ECG packet.

Runs the complete paper pipeline once at the default operating point
(N = 512 samples at 256 Hz, M = 256 measurements, sparse binary sensing
with d = 12, FISTA reconstruction in a db4 wavelet basis) and prints
the compression ratio, PRD/SNR, and ASCII plots of the original and
reconstructed packet.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import EcgMonitorSystem, SyntheticMitBih, SystemConfig
from repro.ecg.resample import resample_record
from repro.metrics import prd, snr_from_prd

from _common import ascii_plot, banner


def main() -> None:
    banner("CS-ECG quickstart (Kanoun et al., DATE 2011)")

    config = SystemConfig()
    print(f"configuration: {config.summary()}")

    # one synthetic MIT-BIH-style record, resampled to the node rate
    record = SyntheticMitBih(duration_s=20.0).load("100")
    record_256 = resample_record(record, 256.0)
    samples = record_256.adc.digitize(record_256.channel(0))

    # encode on the "mote", decode on the "phone"; the first packet is a
    # keyframe, so stream three windows and inspect the steady state
    system = EcgMonitorSystem(config)
    system.encoder.reset()
    system.decoder.reset()
    for index in range(3):
        window = samples[index * config.n : (index + 1) * config.n]
        packet = system.encoder.encode(window)
        decoded = system.decoder.decode(packet)

    original = window.astype(np.float64) - 1024
    recovered = decoded.samples_adu - 1024
    packet_prd = prd(original, recovered)

    print(f"packet kind:          {packet.kind.name}")
    print(f"packet size:          {packet.total_bits} bits "
          f"({config.original_packet_bits} uncompressed)")
    print(f"compression ratio:    "
          f"{(1 - packet.total_bits / config.original_packet_bits) * 100:.1f} %")
    print(f"PRD:                  {packet_prd:.2f} %")
    print(f"output SNR:           {snr_from_prd(packet_prd):.1f} dB")

    banner("original packet (2 s of lead II)")
    print(ascii_plot(original, label="adu, DC removed"))
    banner("FISTA reconstruction")
    print(ascii_plot(recovered, label="adu, DC removed"))


if __name__ == "__main__":
    main()
