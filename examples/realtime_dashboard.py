"""Real-time pipeline dashboard: the Figure 8 scenario, simulated.

Streams a record through the actual encoder/decoder, feeds the measured
per-packet bits and iteration counts into the discrete-event pipeline
simulation (sampler -> encoder -> Bluetooth -> decoder -> display with
the 6-second ring buffer), and prints the CPU/buffer dashboard plus an
ASCII strip of the reconstructed ECG as the "phone screen".

Usage::

    python examples/realtime_dashboard.py
"""

from __future__ import annotations

from repro import EcgMonitorSystem, SyntheticMitBih, SystemConfig
from repro.experiments import render_table
from repro.realtime import MonitorPipeline, PipelineConfig

from _common import ascii_plot, banner


def main() -> None:
    banner("real-time WBSN pipeline (Figure 8)")
    config = SystemConfig().with_target_cr(50.0)
    database = SyntheticMitBih(duration_s=60.0)
    record = database.load("106")  # bigeminy: a clinically busy trace

    system = EcgMonitorSystem(config, precision="float32")
    system.calibrate(record)
    stream = system.stream(record, max_packets=16, keep_signals=True)

    pipeline = MonitorPipeline(
        PipelineConfig(
            system=config,
            packet_bits=[p.packet_bits for p in stream.packets],
            packet_iterations=[p.iterations for p in stream.packets],
            duration_s=300.0,
        )
    )
    report = pipeline.run()

    rows = [
        {
            "node_cpu_percent": report.node_cpu_percent,
            "phone_cpu_percent": report.phone_cpu_percent,
            "radio_percent": report.radio_utilization_percent,
            "buffer_min_s": report.buffer_min_s,
            "buffer_max_s": report.buffer_max_s,
            "latency_s": report.mean_end_to_end_latency_s,
            "realtime": report.is_realtime(),
        }
    ]
    print(render_table(rows, title="pipeline dashboard (paper: <5 % node, ~17.7 % phone)"))
    print(
        f"\npackets encoded/decoded: {report.packets_encoded}/"
        f"{report.packets_decoded}; underruns {report.underruns}, "
        f"deadline misses {report.decode_deadline_misses}"
    )
    print(
        f"stream quality: CR {stream.compression_ratio_percent:.1f} %, "
        f"PRD {stream.mean_prd_percent:.2f} %, "
        f"SNR {stream.mean_snr_db:.1f} dB, "
        f"{stream.mean_iterations:.0f} FISTA iterations/packet"
    )

    banner('the "phone screen": reconstructed ECG (6 s)')
    assert stream.reconstructed_adu is not None
    screen = stream.reconstructed_adu[: 3 * config.n] - 1024
    print(ascii_plot(screen, height=14, label="reconstructed lead II, 6 s"))


if __name__ == "__main__":
    main()
