"""Sensing-matrix trade-offs: the paper's three implementation approaches.

Compares, at the paper's operating point:

1. on-board 8-bit quantized Gaussian generation (approach 1 - rejected:
   not real-time on the MSP430);
2. stored dense Gaussian (approach 2 - rejected: memory-infeasible and
   the dense multiply is still slow);
3. sparse binary with d ones per column (approach 3 - adopted),
   including the d sweep that selects d = 12.

Usage::

    python examples/sensing_tradeoffs.py
"""

from __future__ import annotations

from repro import SyntheticMitBih, SystemConfig
from repro.experiments import render_table, run_sensing_ablation
from repro.experiments.encoder_budget import approach_rows
from repro.platforms import Msp430Model
from repro.sensing import (
    BernoulliMatrix,
    GaussianMatrix,
    QuantizedGaussianMatrix,
    SparseBinaryMatrix,
    mutual_coherence,
)

from _common import banner


def main() -> None:
    config = SystemConfig()
    banner("the three Phi implementations on the MSP430 (Section IV-A2)")
    rows = approach_rows(config)
    print(render_table(rows, title="per-packet sensing time and memory feasibility"))
    print(
        "\napproach 1 generates 131072 Gaussian draws per packet through a\n"
        "fixed-point Box-Muller unit; approach 2 stores a 512 kB matrix in\n"
        "a 48 kB flash; approach 3 does 6144 integer additions in 82 ms."
    )

    banner("matrix quality: coherence at m=256, n=512")
    quality = []
    for name, matrix in (
        ("gaussian (float64)", GaussianMatrix(config.m, config.n)),
        ("bernoulli (+-1)", BernoulliMatrix(config.m, config.n)),
        ("quantized gaussian (int8)", QuantizedGaussianMatrix(config.m, config.n)),
        ("sparse binary d=12", SparseBinaryMatrix(config.m, config.n, d=12)),
    ):
        quality.append(
            {
                "matrix": name,
                "coherence": mutual_coherence(matrix.matrix()),
                "storage_bits": matrix.storage_bits(),
            }
        )
    print(render_table(quality))

    banner("choosing d (paper: d = 12 optimal trade-off)")
    database = SyntheticMitBih(duration_s=40.0)
    sweep = run_sensing_ablation(
        d_values=(2, 4, 8, 12, 16, 24),
        nominal_cr=60.0,
        records=("100", "119"),
        packets_per_record=5,
        database=database,
    )
    print(render_table(sweep))
    mcu = Msp430Model()
    print(
        f"\nMSP430 sensing time at d=12: "
        f"{mcu.sensing_time_s(config) * 1e3:.1f} ms (paper: 82 ms)"
    )


if __name__ == "__main__":
    main()
