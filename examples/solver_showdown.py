"""Solver showdown: FISTA against every family the paper cites.

Section I lists interior-point methods, gradient projection, iterative
thresholding and greedy pursuit as the CS recovery families; Section II
adopts FISTA.  This example runs all of them on the same ECG packet and
prints iterations, wall-clock time, and reconstruction PRD — plus
FISTA's objective-convergence advantage over ISTA.

Usage::

    python examples/solver_showdown.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SyntheticMitBih, SystemConfig
from repro.ecg.resample import resample_record
from repro.experiments import render_table
from repro.metrics import prd
from repro.sensing import SparseBinaryMatrix
from repro.solvers import (
    basis_pursuit,
    fista,
    gpsr,
    ista,
    lambda_from_fraction,
    omp,
    twist,
)
from repro.wavelet import WaveletTransform

from _common import banner


def main() -> None:
    banner("solver showdown on one 2-second ECG packet")
    config = SystemConfig()
    record = resample_record(SyntheticMitBih(duration_s=20.0).load("100"), 256.0)
    x = record.adc.digitize(record.channel(0))[: config.n].astype(np.float64) - 1024

    transform = WaveletTransform(config.n, config.wavelet, config.levels)
    phi = SparseBinaryMatrix(config.m, config.n, d=config.d, seed=config.seed)
    system = np.asarray(phi.sparse() @ transform.synthesis_matrix())
    y = phi.measure(x)
    lam = lambda_from_fraction(system, y, config.lam)

    solvers = {
        "fista (adopted)": lambda: fista(system, y, lam, 4000, 1e-5),
        "ista": lambda: ista(system, y, lam, 12000, 1e-5),
        "twist": lambda: twist(system, y, lam, 4000, 1e-5),
        "gpsr-bb": lambda: gpsr(system, y, lam / 2, 4000, 1e-5),
        "omp (greedy)": lambda: omp(system, y, sparsity=config.m // 3),
        "basis pursuit (LP)": lambda: basis_pursuit(system, y),
    }
    rows = []
    for name, solve in solvers.items():
        started = time.perf_counter()
        result = solve()
        elapsed = time.perf_counter() - started
        reconstruction = transform.inverse(
            np.asarray(result.coefficients, dtype=np.float64)
        )
        rows.append(
            {
                "solver": name,
                "iterations": result.iterations,
                "time_ms": 1e3 * elapsed,
                "prd_percent": prd(x, reconstruction),
                "converged": result.converged,
            }
        )
    print(render_table(rows))

    banner("objective convergence: FISTA O(1/k^2) vs ISTA O(1/k)")
    f_hist = fista(system, y, lam, 300, 1e-12, track_objective=True)
    i_hist = ista(system, y, lam, 300, 1e-12, track_objective=True)
    milestones = (10, 50, 100, 200, 299)
    rows = [
        {
            "iteration": k,
            "fista_objective": f_hist.objective_history[k],
            "ista_objective": i_hist.objective_history[k],
        }
        for k in milestones
    ]
    print(render_table(rows))
    print(
        "\nFISTA reaches in tens of iterations what ISTA needs hundreds for —"
        "\nexactly why the decoder sustains real time on the phone."
    )


if __name__ == "__main__":
    main()
