#!/usr/bin/env bash
# Tier-1 verification + batched-decode benchmark smoke.
#
#   scripts/run_tier1.sh          # full test suite + smoke benchmark
#   scripts/run_tier1.sh --fast   # skip the benchmark smoke
#
# The tier-1 command is the repo's ROADMAP-pinned gate; the smoke run
# exercises the batched decode engine end-to-end (bit-exact packets,
# equivalence asserts) with timing thresholds relaxed so it stays fast
# on any machine.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

if [[ "${1:-}" != "--fast" ]]; then
    echo "== batched decode benchmark (smoke mode) =="
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_batched_decode.py -q
fi

echo "== tier-1 OK =="
