#!/usr/bin/env bash
# Tier-1 verification + decode-engine benchmark smokes.
#
#   scripts/run_tier1.sh          # full test suite + smoke benchmarks
#   scripts/run_tier1.sh --fast   # skip the benchmark smokes
#
# The tier-1 command is the repo's ROADMAP-pinned gate; the smoke runs
# exercise the batched decode engine and the fleet decode scheduler
# end-to-end (bit-exact packets, equivalence asserts, a real 2-worker
# pool) with timing thresholds relaxed so they stay fast on any
# machine.  Each benchmark must also write its machine-readable
# BENCH_<name>.json — a bench that silently stops reporting fails the
# gate.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

if [[ "${1:-}" != "--fast" ]]; then
    echo "== batched decode benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_batched_decode.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_batched_decode.py -q

    echo "== fleet decode benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_fleet_decode.json \
        benchmarks/results/BENCH_fleet_decode_sharded.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_fleet_decode.py -q

    for name in batched_decode fleet_decode fleet_decode_sharded; do
        if [[ ! -s "benchmarks/results/BENCH_${name}.json" ]]; then
            echo "ERROR: benchmarks wrote no benchmarks/results/BENCH_${name}.json" >&2
            exit 1
        fi
    done
fi

echo "== tier-1 OK =="
