#!/usr/bin/env bash
# Tier-1 verification + repro-lint + decode-engine benchmark smokes.
#
#   scripts/run_tier1.sh          # lint + tests + smoke benchmarks + examples
#   scripts/run_tier1.sh --fast   # lint + tests only
#
# The tier-1 command is the repo's ROADMAP-pinned gate; the smoke runs
# exercise the batched decode engine, the fleet decode scheduler, the
# live ingestion gateway and the multi-gateway federation end-to-end
# (bit-exact packets, equivalence asserts, a real 2-worker pool, the
# TCP wire path, a real gateway-kill failover) with timing
# thresholds relaxed so they stay fast on any machine.  Each benchmark
# must also write its machine-readable BENCH_<name>.json — a bench
# that silently stops reporting fails the gate.  repro-lint
# (python -m repro.analysis) statically enforces the stack's invariants
# — event-loop blocking, lock discipline, hot-loop allocations, the
# telemetry catalog, exception hygiene, README/CLI drift, and the
# dataflow tier (precision flow, await atomicity, process-boundary
# payloads, FrameKind dispatch) — and runs in BOTH modes; its JSON
# findings report lands in benchmarks/results/, and the checked-in
# baseline is gated empty so nothing gets silently grandfathered.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro-lint: static invariant checks =="
mkdir -p benchmarks/results
python -m repro.analysis --root . --report benchmarks/results/LINT_report.json

# the checked-in baseline must stay empty: new findings are fixed or
# carry an inline justification, never silently grandfathered
python - <<'EOF'
import json, sys
with open(".repro-lint-baseline.json") as fh:
    data = json.load(fh)
if data.get("entries"):
    sys.exit(
        "ERROR: .repro-lint-baseline.json must stay empty "
        f"({len(data['entries'])} grandfathered entr(y/ies) found); "
        "fix the findings or justify them inline"
    )
print("baseline empty OK")
EOF

echo "== tier-1: full test suite =="
python -m pytest -x -q

if [[ "${1:-}" != "--fast" ]]; then
    echo "== batched decode benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_batched_decode.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_batched_decode.py -q

    echo "== fleet decode benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_fleet_decode.json \
        benchmarks/results/BENCH_fleet_decode_sharded.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_fleet_decode.py -q

    echo "== ingest gateway benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_ingest_gateway.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_ingest_gateway.py -q

    echo "== lossy channel benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_lossy_channel.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_lossy_channel.py -q

    echo "== adaptive batching benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_adaptive_batching.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_adaptive_batching.py -q

    echo "== federation benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_federation.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_federation.py -q

    for name in batched_decode fleet_decode fleet_decode_sharded ingest_gateway lossy_channel adaptive_batching federation; do
        if [[ ! -s "benchmarks/results/BENCH_${name}.json" ]]; then
            echo "ERROR: benchmarks wrote no benchmarks/results/BENCH_${name}.json" >&2
            exit 1
        fi
    done

    # the lossy-channel bench must report the two-tier recovery fields
    # (a fec scenario that silently stops running would pass the mere
    # existence check above)
    python - <<'EOF'
import json, sys
with open("benchmarks/results/BENCH_lossy_channel.json") as fh:
    payload = json.load(fh)
fec = [k for k in payload["scenarios"] if k.startswith("fec_loss_")]
if not fec:
    sys.exit("ERROR: BENCH_lossy_channel.json has no fec_loss_* scenario")
required = (
    "fec_damage", "fec_off_damage", "recovered_parity",
    "recovered_retransmit", "nacks_sent", "late_retransmits",
    "overhead_ratio",
)
for key in fec:
    missing = [f for f in required if f not in payload["scenarios"][key]]
    if missing:
        sys.exit(f"ERROR: scenario {key} missing fields: {missing}")
print(f"fec scenario fields OK ({len(fec)} scenario(s))")
EOF

    # the raw-speed solver benches must report every lever: a lever
    # line that silently stops running would pass the existence check
    python - <<'EOF'
import json, sys
with open("benchmarks/results/BENCH_batched_decode.json") as fh:
    payload = json.load(fh)
levers = payload.get("levers", {})
for section, fields in {
    "baseline": ("seconds", "windows_per_s", "mean_prd"),
    "sparse": ("speedup", "windows_per_s", "mean_prd"),
    "hybrid": (
        "speedup", "windows_per_s", "prd_gap",
        "polish_rate", "corridor_pass",
    ),
    "workspace": ("steady_state", "arenas"),
}.items():
    if section not in levers:
        sys.exit(f"ERROR: BENCH_batched_decode.json missing lever {section}")
    missing = [f for f in fields if f not in levers[section]]
    if missing:
        sys.exit(f"ERROR: lever {section} missing fields: {missing}")
if not levers["hybrid"]["corridor_pass"]:
    sys.exit("ERROR: hybrid lever left the PRD corridor")
if not levers["workspace"]["steady_state"]:
    sys.exit("ERROR: workspace arenas did not reach steady state")

with open("benchmarks/results/BENCH_fleet_decode.json") as fh:
    payload = json.load(fh)
hybrid = payload.get("hybrid", {})
required = (
    "speedup", "windows_per_s", "prd_gap",
    "polish_rate", "worker_cache_reuse",
)
missing = [f for f in required if f not in hybrid]
if missing:
    sys.exit(f"ERROR: BENCH_fleet_decode.json hybrid missing: {missing}")
if not hybrid["worker_cache_reuse"]:
    sys.exit("ERROR: fleet worker solver cache was not reused")
print("raw-speed lever fields OK (batched + fleet)")
EOF

    # the federation bench must report all three claims: scale-out
    # timings, exact bit-identity through the front door, and the
    # bounded-failover damage numbers
    python - <<'EOF'
import json, sys
with open("benchmarks/results/BENCH_federation.json") as fh:
    payload = json.load(fh)
for field in ("scaling_speedup", "windows_per_s_1gw", "windows_per_s_ngw"):
    if field not in payload["timings"]:
        sys.exit(f"ERROR: BENCH_federation.json missing timing {field}")
if payload.get("bit_identical") is not True:
    sys.exit("ERROR: federation front door output was not bit-identical")
failover = payload.get("failover")
if failover is None:
    sys.exit("ERROR: BENCH_federation.json has no failover section")
for field in ("reroutes", "max_damage_windows", "keyframe_interval"):
    if field not in failover:
        sys.exit(f"ERROR: failover section missing {field}")
if failover["max_damage_windows"] > failover["keyframe_interval"]:
    sys.exit(
        "ERROR: gateway death damaged a stream beyond keyframe_interval "
        f"({failover['max_damage_windows']} > {failover['keyframe_interval']})"
    )
print("federation fields OK")
EOF

    echo "== example smokes =="
    python examples/quickstart.py > /dev/null
    python examples/live_gateway.py > /dev/null
    python examples/federation_demo.py > /dev/null
    echo "examples OK"
fi

echo "== tier-1 OK =="
