#!/usr/bin/env bash
# Tier-1 verification + decode-engine benchmark smokes + docs checks.
#
#   scripts/run_tier1.sh          # tests + smoke benchmarks + examples + docs
#   scripts/run_tier1.sh --fast   # skip the benchmark/example/docs smokes
#
# The tier-1 command is the repo's ROADMAP-pinned gate; the smoke runs
# exercise the batched decode engine, the fleet decode scheduler and
# the live ingestion gateway end-to-end (bit-exact packets, equivalence
# asserts, a real 2-worker pool, the TCP wire path) with timing
# thresholds relaxed so they stay fast on any machine.  Each benchmark
# must also write its machine-readable BENCH_<name>.json — a bench
# that silently stops reporting fails the gate.  The docs check greps
# README's CLI reference against the argparse subcommand list so the
# two cannot drift apart silently.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full test suite =="
python -m pytest -x -q

if [[ "${1:-}" != "--fast" ]]; then
    echo "== batched decode benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_batched_decode.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_batched_decode.py -q

    echo "== fleet decode benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_fleet_decode.json \
        benchmarks/results/BENCH_fleet_decode_sharded.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_fleet_decode.py -q

    echo "== ingest gateway benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_ingest_gateway.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_ingest_gateway.py -q

    echo "== lossy channel benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_lossy_channel.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_lossy_channel.py -q

    echo "== adaptive batching benchmark (smoke mode) =="
    rm -f benchmarks/results/BENCH_adaptive_batching.json
    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_adaptive_batching.py -q

    for name in batched_decode fleet_decode fleet_decode_sharded ingest_gateway lossy_channel adaptive_batching; do
        if [[ ! -s "benchmarks/results/BENCH_${name}.json" ]]; then
            echo "ERROR: benchmarks wrote no benchmarks/results/BENCH_${name}.json" >&2
            exit 1
        fi
    done

    echo "== example smokes =="
    python examples/quickstart.py > /dev/null
    python examples/live_gateway.py > /dev/null
    echo "examples OK"

    echo "== README CLI reference vs repro-ecg --help =="
    subcommands=$(python -c "
import argparse
from repro.cli import _build_parser
sub = next(
    a for a in _build_parser()._actions
    if isinstance(a, argparse._SubParsersAction)
)
print(' '.join(sub.choices))
")
    for cmd in ${subcommands}; do
        if ! grep -q "repro-ecg ${cmd}" README.md; then
            echo "ERROR: README.md CLI reference is missing 'repro-ecg ${cmd}'" >&2
            echo "       (subcommand exists in repro-ecg --help; update README)" >&2
            exit 1
        fi
    done
    echo "README lists all ${subcommands// /, } subcommands"

    channel_flags=$(python -c "from repro.cli import CHANNEL_FLAGS; print(' '.join(CHANNEL_FLAGS))")
    for flag in ${channel_flags}; do
        if ! grep -qe "${flag}" README.md; then
            echo "ERROR: README.md is missing the serve channel flag '${flag}'" >&2
            echo "       (flag exists in repro-ecg serve --help; update README)" >&2
            exit 1
        fi
    done
    echo "README lists all serve channel flags (${channel_flags// /, })"

    telemetry_flags=$(python -c "from repro.cli import TELEMETRY_FLAGS; print(' '.join(TELEMETRY_FLAGS))")
    for flag in ${telemetry_flags}; do
        if ! grep -qe "${flag}" README.md; then
            echo "ERROR: README.md is missing the serve telemetry flag '${flag}'" >&2
            echo "       (flag exists in repro-ecg serve --help; update README)" >&2
            exit 1
        fi
    done
    echo "README lists all serve telemetry flags (${telemetry_flags// /, })"
fi

echo "== tier-1 OK =="
