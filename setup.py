"""Legacy setuptools shim.

This workspace is offline and lacks the ``wheel`` package, so PEP 660
editable installs cannot build; ``pip install -e .`` therefore goes
through this classic ``setup.py`` entry point instead.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
