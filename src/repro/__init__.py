"""repro — reproduction of the DATE 2011 real-time CS-based ECG monitor.

Kanoun, Mamaghanian, Khaled & Atienza, *A Real-Time Compressed
Sensing-Based Personal Electrocardiogram Monitoring System*, DATE 2011.

The package is organized as the paper's system is:

- :mod:`repro.core` — the CS encoder (sparse binary sensing ->
  inter-packet redundancy removal -> Huffman) and decoder (Huffman ->
  packet reconstruction -> FISTA), plus the end-to-end
  :class:`~repro.core.system.EcgMonitorSystem`;
- :mod:`repro.sensing`, :mod:`repro.wavelet`, :mod:`repro.solvers`,
  :mod:`repro.coding` — the signal-processing substrates;
- :mod:`repro.ecg` — a synthetic MIT-BIH-like corpus (PhysioNet is not
  reachable offline);
- :mod:`repro.platforms` — calibrated MSP430 / Cortex-A8 / Bluetooth /
  battery models behind the paper's real-time and energy claims;
- :mod:`repro.realtime` — the discrete-event producer/consumer pipeline;
- :mod:`repro.experiments` — drivers reproducing every figure.

Quickstart::

    from repro import EcgMonitorSystem, SyntheticMitBih, SystemConfig

    record = SyntheticMitBih(duration_s=30).load("100")
    system = EcgMonitorSystem(SystemConfig().with_target_cr(50))
    system.calibrate(record)
    result = system.stream(record)
    print(result.compression_ratio_percent, result.mean_snr_db)
"""

from .config import PAPER_DEFAULT, SystemConfig
from .core import CSDecoder, CSEncoder, EcgMonitorSystem
from .ecg import SyntheticMitBih
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "PAPER_DEFAULT",
    "CSEncoder",
    "CSDecoder",
    "EcgMonitorSystem",
    "SyntheticMitBih",
    "ReproError",
    "__version__",
]
