"""repro — reproduction of the DATE 2011 real-time CS-based ECG monitor.

Kanoun, Mamaghanian, Khaled & Atienza, *A Real-Time Compressed
Sensing-Based Personal Electrocardiogram Monitoring System*, DATE 2011.

The package is organized as the paper's system is:

- :mod:`repro.core` — the CS encoder (sparse binary sensing ->
  inter-packet redundancy removal -> Huffman) and decoder (Huffman ->
  packet reconstruction -> FISTA), plus the end-to-end
  :class:`~repro.core.system.EcgMonitorSystem`;
- :mod:`repro.sensing`, :mod:`repro.wavelet`, :mod:`repro.solvers`,
  :mod:`repro.coding` — the signal-processing substrates;
- :mod:`repro.ecg` — a synthetic MIT-BIH-like corpus (PhysioNet is not
  reachable offline);
- :mod:`repro.platforms` — calibrated MSP430 / Cortex-A8 / Bluetooth /
  battery models behind the paper's real-time and energy claims;
- :mod:`repro.realtime` — the discrete-event producer/consumer pipeline;
- :mod:`repro.experiments` — drivers reproducing every figure.

Quickstart::

    from repro import EcgMonitorSystem, SyntheticMitBih, SystemConfig

    record = SyntheticMitBih(duration_s=30).load("100")
    system = EcgMonitorSystem(SystemConfig().with_target_cr(50))
    system.calibrate(record)
    result = system.stream(record)
    print(result.compression_ratio_percent, result.mean_snr_db)
"""

from importlib import import_module

__version__ = "1.0.0"

#: public name -> defining submodule.  The package root resolves these
#: lazily (PEP 562): ``repro.analysis`` (repro-lint) must be importable
#: on a bare stdlib interpreter — CI's lint job installs no third-party
#: deps — so ``import repro`` cannot eagerly pull numpy via repro.core.
_LAZY_EXPORTS = {
    "SystemConfig": "config",
    "PAPER_DEFAULT": "config",
    "CSEncoder": "core",
    "CSDecoder": "core",
    "EcgMonitorSystem": "core",
    "SyntheticMitBih": "ecg",
    "ReproError": "errors",
}

__all__ = [*_LAZY_EXPORTS, "__version__"]


def __getattr__(name: str):
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(f".{module_name}", __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
