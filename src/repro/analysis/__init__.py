"""repro-lint: static invariant checks for the decode stack.

A zero-dependency (stdlib ``ast``/``tokenize``) lint framework plus
the project-specific rules that machine-check the conventions the
stack's correctness rests on:

========  ==================  ============================================
rule id   name                invariant
========  ==================  ============================================
RL001     async-blocking      no blocking IO/sleep or direct solver calls
                              inside ``async def`` bodies
RL002     lock-discipline     attributes guarded by a ``threading.Lock``
                              are never written outside it
RL003     hot-loop-alloc      ``# repro-lint: hot`` loops allocate no
                              arrays (BatchWorkspace arena discipline)
RL004     telemetry-catalog   every metric name/kind/label is declared in
                              :mod:`repro.telemetry.catalog`
RL005     exception-hygiene   broad excepts are justified; load-bearing
                              errors are never silently swallowed
RL006     docs-drift          README tracks the CLI surface
========  ==================  ============================================

Run it as ``repro-ecg lint`` or ``python -m repro.analysis``; see
``docs/architecture.md`` for the suppression and baseline workflow.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .core import (
    FRAMEWORK_RULE,
    Finding,
    Project,
    Rule,
    SourceModule,
    all_rules,
    register,
)
from .runner import discover_files, main, run_lint

__all__ = [
    "FRAMEWORK_RULE",
    "Finding",
    "Project",
    "Rule",
    "SourceModule",
    "all_rules",
    "apply_baseline",
    "discover_files",
    "load_baseline",
    "main",
    "register",
    "run_lint",
    "write_baseline",
]
