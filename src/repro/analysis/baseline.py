"""Baseline file: grandfathered findings that do not fail the gate.

A new rule landing on an old codebase faces a choice: fix every
historical finding in the same PR (huge diffs) or weaken the rule
(defeats it).  The baseline is the third option — a checked-in ledger
of known findings that are tolerated *at their current count* while
new code is held to the full standard.

Entries match on ``(rule, file, key)`` — never on line numbers, which
drift with every edit — and carry a count, so N grandfathered broad
excepts in one file stay N: adding an N+1st fails the lint even though
the first N pass.  Shrinking below the baseline is always allowed
(``--write-baseline`` re-records the smaller state).

The file lives at the lint root as ``.repro-lint-baseline.json`` and
is sorted/deterministic, so its diffs review like code.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from ..errors import ConfigurationError
from .core import Finding

BASELINE_SCHEMA = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


def _fingerprint(finding: Finding) -> tuple[str, str, str]:
    return (finding.rule, finding.path, finding.key)


def load_baseline(path: Path) -> Counter:
    """Fingerprint counts of a baseline file (empty when absent)."""
    if not path.exists():
        return Counter()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"malformed baseline {path}: {exc}"
        ) from exc
    if data.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"unsupported baseline schema {data.get('schema')!r} in "
            f"{path} (expected {BASELINE_SCHEMA})"
        )
    counts: Counter = Counter()
    for entry in data.get("entries", ()):
        try:
            fingerprint = (
                str(entry["rule"]),
                str(entry["file"]),
                str(entry["key"]),
            )
            counts[fingerprint] += int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed baseline entry in {path}: {entry!r} ({exc})"
            ) from exc
    return counts


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Record the given findings as the new baseline (sorted)."""
    counts = Counter(_fingerprint(f) for f in findings)
    entries = [
        {"rule": rule, "file": file, "key": key, "count": count}
        for (rule, file, key), count in sorted(counts.items())
    ]
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], int]:
    """Split findings into (reported, baselined-count).

    Findings are consumed against the baseline in order, so the first
    N occurrences of a grandfathered fingerprint are absorbed and any
    beyond the recorded count are reported as new.
    """
    remaining = Counter(baseline)
    reported = []
    absorbed = 0
    for finding in findings:
        fingerprint = _fingerprint(finding)
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            absorbed += 1
        else:
            reported.append(finding)
    return reported, absorbed
