"""Intra-procedural control-flow graphs for the dataflow tier.

The AST-level rules (RL001–RL006) see syntax; the dataflow rules
(RL007–RL010) need *order*: which definitions can reach a use, what a
value's kind is after a branch join, whether a loop back-edge carries a
promoted dtype around again.  This module builds a small per-function
CFG — just enough graph for a forward worklist analysis — with nothing
but :mod:`ast` (the package's zero-dependency guarantee).

Shape of the graph
------------------
- a :class:`Block` holds statements in execution order; a compound
  statement (``if``/``while``/``for``/``with``/``try``/``match``)
  appears *shallowly* in the block where its header executes — its
  body statements live in successor blocks, so a transfer function
  must apply only a statement's header-level effects (use
  :func:`header_exprs` and :func:`bound_names`);
- ``if`` produces a branch and a join block; loops produce a header
  block with a back-edge from the body end; ``break``/``continue``/
  ``return``/``raise`` terminate their block (``return``/``raise``
  edge to the exit block);
- ``try`` is approximated conservatively: each handler is reachable
  both from the block *before* the ``try`` (an exception before any
  body statement completed) and from the body's end (one after all
  did).  Partial mid-body states are not modeled — a known,
  documented limit of the tier.

Nested ``def``/``lambda``/``class`` bodies are not entered: a nested
function is its own execution context (build a separate CFG for it).

:func:`reaching_definitions` runs the classic forward may-analysis
over the graph; the dataflow kind lattice (:mod:`.dataflow`) runs its
own worklist over the same blocks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class Block:
    """One straight-line run of (shallow) statements."""

    id: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def add_succ(self, other: "Block") -> None:
        if other.id not in self.succs:
            self.succs.append(other.id)
            other.preds.append(self.id)


class CFG:
    """The per-function graph: blocks, one entry, one exit."""

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self._counter = 0
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> Block:
        block = Block(self._counter)
        self.blocks[block.id] = block
        self._counter += 1
        return block

    def rpo(self) -> list[Block]:
        """Blocks in reverse post-order from the entry (a good worklist
        seed for forward analyses); unreachable blocks follow in id
        order so dead code is still transferred over once."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(bid: int) -> None:
            # iterative DFS: recursion depth would track nesting depth
            stack = [(bid, iter(self.blocks[bid].succs))]
            seen.add(bid)
            while stack:
                current, succs = stack[-1]
                advanced = False
                for nxt in succs:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(self.blocks[nxt].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry.id)
        ordered = [self.blocks[bid] for bid in reversed(order)]
        ordered.extend(
            block
            for bid, block in sorted(self.blocks.items())
            if bid not in seen
        )
        return ordered


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        #: (loop-header block, loop-after block) stack for break/continue
        self.loops: list[tuple[Block, Block]] = []

    # ------------------------------------------------------------------
    def build(self, body: list[ast.stmt]) -> CFG:
        end = self.visit_body(body, self.cfg.entry)
        if end is not None:
            end.add_succ(self.cfg.exit)
        return self.cfg

    def visit_body(
        self, body: list[ast.stmt], current: Block | None
    ) -> Block | None:
        """Thread ``body`` through the graph starting at ``current``.

        Returns the block where control continues afterwards, or
        ``None`` when every path terminated (return/raise/break).
        """
        for stmt in body:
            if current is None:
                # statements after a terminator: keep them in the graph
                # (an unreachable block) so analyses still see them
                current = self.cfg.new_block()
            current = self._visit_stmt(stmt, current)
        return current

    # ------------------------------------------------------------------
    def _visit_stmt(self, stmt: ast.stmt, current: Block) -> Block | None:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._visit_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.stmts.append(stmt)  # header: items bind their vars
            return self.visit_body(stmt.body, current)
        if isinstance(stmt, ast.Match):
            return self._visit_match(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.stmts.append(stmt)
            current.add_succ(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            current.stmts.append(stmt)
            if self.loops:
                current.add_succ(self.loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            current.stmts.append(stmt)
            if self.loops:
                current.add_succ(self.loops[-1][0])
            return None
        # simple statements and nested def/class (name-binding only;
        # their bodies are separate execution contexts)
        current.stmts.append(stmt)
        return current

    def _visit_if(self, stmt: ast.If, current: Block) -> Block | None:
        current.stmts.append(stmt)  # the test evaluates here
        join = self.cfg.new_block()
        then_entry = self.cfg.new_block()
        current.add_succ(then_entry)
        then_end = self.visit_body(stmt.body, then_entry)
        if then_end is not None:
            then_end.add_succ(join)
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            current.add_succ(else_entry)
            else_end = self.visit_body(stmt.orelse, else_entry)
            if else_end is not None:
                else_end.add_succ(join)
        else:
            current.add_succ(join)  # test false: fall through
        return join if join.preds else None

    def _visit_loop(self, stmt, current: Block) -> Block:
        header = self.cfg.new_block()
        # the header re-executes per iteration: a while test, or a
        # for-target rebind (the iterable itself is evaluated once,
        # but keeping it in the header only widens, never narrows)
        header.stmts.append(stmt)
        current.add_succ(header)
        after = self.cfg.new_block()
        body_entry = self.cfg.new_block()
        header.add_succ(body_entry)
        self.loops.append((header, after))
        body_end = self.visit_body(stmt.body, body_entry)
        self.loops.pop()
        if body_end is not None:
            body_end.add_succ(header)  # the back-edge
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            header.add_succ(else_entry)
            else_end = self.visit_body(stmt.orelse, else_entry)
            if else_end is not None:
                else_end.add_succ(after)
        else:
            header.add_succ(after)
        return after

    def _visit_try(self, stmt: ast.Try, current: Block) -> Block | None:
        body_entry = self.cfg.new_block()
        current.add_succ(body_entry)
        body_end = self.visit_body(stmt.body, body_entry)
        if body_end is not None and stmt.orelse:
            body_end = self.visit_body(stmt.orelse, body_end)
        join = self.cfg.new_block()
        if body_end is not None:
            body_end.add_succ(join)
        for handler in stmt.handlers:
            handler_entry = self.cfg.new_block()
            handler_entry.stmts.append(handler)  # binds `as name`
            # conservatively reachable with the pre-try state and with
            # the post-body state (mid-body states are not modeled)
            current.add_succ(handler_entry)
            if body_end is not None:
                body_end.add_succ(handler_entry)
            handler_end = self.visit_body(handler.body, handler_entry)
            if handler_end is not None:
                handler_end.add_succ(join)
        if stmt.finalbody:
            final_entry = self.cfg.new_block()
            if join.preds:
                join.add_succ(final_entry)
            else:
                current.add_succ(final_entry)  # every path raised
            return self.visit_body(stmt.finalbody, final_entry)
        return join if join.preds else None

    def _visit_match(self, stmt: ast.Match, current: Block) -> Block | None:
        current.stmts.append(stmt)  # the subject evaluates here
        join = self.cfg.new_block()
        has_wildcard = False
        for case in stmt.cases:
            case_entry = self.cfg.new_block()
            current.add_succ(case_entry)
            case_end = self.visit_body(case.body, case_entry)
            if case_end is not None:
                case_end.add_succ(join)
            if _is_wildcard(case):
                has_wildcard = True
        if not has_wildcard:
            current.add_succ(join)  # no case matched
        return join if join.preds else None


def _is_wildcard(case: ast.match_case) -> bool:
    return (
        isinstance(case.pattern, ast.MatchAs)
        and case.pattern.pattern is None
        and case.guard is None
    )


def build_cfg(func) -> CFG:
    """The CFG of one function's body (``ast.FunctionDef`` /
    ``ast.AsyncFunctionDef``, or any object with a ``body`` list)."""
    return _Builder().build(func.body)


# ----------------------------------------------------------------------
# shallow statement views
# ----------------------------------------------------------------------


def header_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a statement evaluates *at its own block* (its
    header), excluding body statements that live in other blocks."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, (ast.Expr, ast.Assert, ast.Delete)):
        if isinstance(stmt, ast.Expr):
            return [stmt.value]
        if isinstance(stmt, ast.Assert):
            return [stmt.test]
        return list(stmt.targets)
    return []


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def bound_names(stmt: ast.stmt) -> list[str]:
    """The local names a statement (shallowly) binds."""
    if isinstance(stmt, ast.Assign):
        names: list[str] = []
        for target in stmt.targets:
            names.extend(_target_names(target))
        return names
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return _target_names(stmt.target)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _target_names(stmt.target)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        names = []
        for item in stmt.items:
            if item.optional_vars is not None:
                names.extend(_target_names(item.optional_vars))
        return names
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.name] if stmt.name else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return [stmt.name]
    if isinstance(stmt, ast.ClassDef):
        return [stmt.name]
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        return [
            (alias.asname or alias.name).split(".")[0]
            for alias in stmt.names
        ]
    return []


# ----------------------------------------------------------------------
# reaching definitions
# ----------------------------------------------------------------------


def reaching_definitions(cfg: CFG) -> dict[int, set[tuple[str, int]]]:
    """Forward may-analysis: which ``(name, lineno)`` definitions can
    reach each block's entry.  The classic worklist over gen/kill."""
    gen: dict[int, dict[str, int]] = {}
    for block in cfg.blocks.values():
        local: dict[str, int] = {}
        for stmt in block.stmts:
            for name in bound_names(stmt):
                local[name] = stmt.lineno
        gen[block.id] = local

    in_sets: dict[int, set[tuple[str, int]]] = {
        bid: set() for bid in cfg.blocks
    }
    out_sets: dict[int, set[tuple[str, int]]] = {
        bid: set() for bid in cfg.blocks
    }
    worklist = [block.id for block in cfg.rpo()]
    while worklist:
        bid = worklist.pop(0)
        block = cfg.blocks[bid]
        new_in: set[tuple[str, int]] = set()
        for pred in block.preds:
            new_in |= out_sets[pred]
        killed = set(gen[bid])
        new_out = {
            (name, line) for name, line in new_in if name not in killed
        } | {(name, line) for name, line in gen[bid].items()}
        changed = new_out != out_sets[bid]
        in_sets[bid] = new_in
        out_sets[bid] = new_out
        if changed:
            for succ in block.succs:
                if succ not in worklist:
                    worklist.append(succ)
    return in_sets
