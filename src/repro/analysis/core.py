"""Framework core of repro-lint: findings, rules, suppressions, regions.

The decode stack's correctness rests on conventions no runtime check
can see — solves leave the event loop through an executor, registry
state is touched only under its lock, hot solver loops allocate
nothing, metric names come from one catalog.  This package machine-
checks those conventions with nothing but ``ast`` and ``tokenize``
(the repo is offline: no new runtime dependencies, ever).

Vocabulary
----------
- a :class:`Finding` is one violation: rule id + ``file:line`` +
  message + a *key* that is stable across unrelated edits (used by the
  baseline to recognize a grandfathered finding after lines move);
- a :class:`Rule` inspects parsed modules (:meth:`Rule.check_module`)
  and/or the whole project after every module was seen
  (:meth:`Rule.finish` — for cross-module checks like catalog drift);
- a suppression is an inline comment::

      do_risky_thing()  # repro-lint: disable=RL001 — justified because ...

  On the first line of a compound statement (``if``/``for``/``with``/
  ``def`` ...) it covers the statement's whole body.  A suppression
  **must** carry a justification after the rule list; one that does
  not is itself reported (rule ``RL000``, which cannot be suppressed);
- a hot region is a ``for``/``while`` loop marked ``# repro-lint: hot``
  (on the loop line or the line above, or on the enclosing ``def``
  line to mark every loop in the function) — the regions RL003 holds
  to the no-allocation discipline;
- an f32 region is a statement or ``def`` marked ``# repro-lint: f32``
  (same placement rules) — the float32 legs of the solver stack, where
  RL007 holds every operand flow to the no-float64-promotion
  discipline.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: rule id of framework self-diagnostics (unjustified suppression,
#: unparsable file); never suppressible
FRAMEWORK_RULE = "RL000"

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|hot|f32)"
    r"(?:=(?P<rules>[A-Za-z0-9_,]+))?(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str
    path: str  #: path relative to the lint root, POSIX separators
    line: int
    message: str
    #: line-independent fingerprint detail (attribute name, metric
    #: name, call name, ...) — what the baseline matches on
    key: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "key": self.key,
        }


@dataclass(frozen=True)
class Suppression:
    """One ``disable=`` directive and the span of lines it covers."""

    rules: tuple[str, ...]
    reason: str
    line: int  #: the line carrying the comment
    start: int  #: first covered line (== line, or a statement span)
    end: int  #: last covered line

    def covers(self, finding: Finding) -> bool:
        return (
            finding.rule in self.rules
            and self.start <= finding.line <= self.end
        )


class SourceModule:
    """One parsed source file plus its lint directives."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.parse_error: str | None = None
        try:
            self.tree: ast.Module = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            self.parse_error = f"syntax error: {exc.msg} (line {exc.lineno})"
            self.tree = ast.Module(body=[], type_ignores=[])
        directives = _scan_directives(text)
        self._raw_suppressions = [
            d for d in directives if d[0] == "disable"
        ]
        self.hot_marks: set[int] = {
            line for kind, line, _, _ in directives if kind == "hot"
        }
        self.f32_marks: set[int] = {
            line for kind, line, _, _ in directives if kind == "f32"
        }
        self.suppressions: list[Suppression] = self._resolve_suppressions()
        self._hot_spans: list[tuple[int, int]] | None = None
        self._hot_while_headers: set[int] = set()
        self._f32_spans: list[tuple[int, int]] | None = None

    # -- suppressions --------------------------------------------------
    def _resolve_suppressions(self) -> list[Suppression]:
        """Attach each ``disable`` comment to the span it governs.

        A directive on the first line of a compound statement covers
        that statement's whole ``[lineno, end_lineno]`` span; anywhere
        else it covers its own line only.
        """
        spans: dict[int, int] = {}
        for node in ast.walk(self.tree):
            lineno = getattr(node, "lineno", None)
            end = getattr(node, "end_lineno", None)
            if (
                isinstance(node, ast.stmt)
                and lineno is not None
                and end is not None
            ):
                spans[lineno] = max(spans.get(lineno, lineno), end)
        resolved = []
        for _, line, rules, reason in self._raw_suppressions:
            end = spans.get(line, line)
            resolved.append(
                Suppression(
                    rules=rules,
                    reason=reason,
                    line=line,
                    start=line,
                    end=end,
                )
            )
        return resolved

    def framework_findings(self) -> list[Finding]:
        """RL000 diagnostics: unparsable file, unjustified disables."""
        findings = []
        if self.parse_error is not None:
            findings.append(
                Finding(
                    rule=FRAMEWORK_RULE,
                    path=self.rel,
                    line=1,
                    message=self.parse_error,
                    key="parse-error",
                )
            )
        for suppression in self.suppressions:
            if not suppression.reason:
                findings.append(
                    Finding(
                        rule=FRAMEWORK_RULE,
                        path=self.rel,
                        line=suppression.line,
                        message=(
                            "suppression without justification: follow "
                            "'disable=<rules>' with the reason it is safe"
                        ),
                        key="unjustified-suppression",
                    )
                )
            unknown = [
                r for r in suppression.rules if r not in all_rule_ids()
            ]
            for rule_id in unknown:
                findings.append(
                    Finding(
                        rule=FRAMEWORK_RULE,
                        path=self.rel,
                        line=suppression.line,
                        message=f"suppression names unknown rule {rule_id}",
                        key=f"unknown-rule:{rule_id}",
                    )
                )
        return findings

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule == FRAMEWORK_RULE:
            return False
        return any(s.covers(finding) for s in self.suppressions)

    # -- hot regions ---------------------------------------------------
    def hot_spans(self) -> list[tuple[int, int]]:
        """Line spans of every loop governed by a ``hot`` marker."""
        if self._hot_spans is not None:
            return self._hot_spans
        spans: list[tuple[int, int]] = []
        hot_functions: list[tuple[int, int]] = []
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and self._marked(node.lineno):
                hot_functions.append((node.lineno, node.end_lineno or 0))
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            end = node.end_lineno or node.lineno
            if self._marked(node.lineno) or any(
                start <= node.lineno <= stop
                for start, stop in hot_functions
            ):
                spans.append((node.lineno, end))
                if isinstance(node, ast.While):
                    self._hot_while_headers.add(node.lineno)
        self._hot_spans = spans
        return spans

    def _marked(self, lineno: int) -> bool:
        return lineno in self.hot_marks or (lineno - 1) in self.hot_marks

    def in_hot_span(self, lineno: int) -> bool:
        """Whether ``lineno`` executes once per hot-loop iteration.

        A ``for`` header is excluded (its iterable is evaluated once),
        but a ``while`` header is hot: its condition re-runs every
        iteration, so an allocation there is a per-iteration cost.
        """
        spans = self.hot_spans()
        return lineno in self._hot_while_headers or any(
            start < lineno <= end for start, end in spans
        )

    # -- f32 regions ---------------------------------------------------
    def f32_spans(self) -> list[tuple[int, int]]:
        """Line spans of every statement governed by an ``f32`` marker.

        A marker on (or above) a ``def`` line covers the whole
        function; on any other statement it covers that statement's
        span — the scope RL007 holds to the float32 discipline."""
        if self._f32_spans is not None:
            return self._f32_spans
        spans: list[tuple[int, int]] = []
        if self.f32_marks:
            for node in ast.walk(self.tree):
                lineno = getattr(node, "lineno", None)
                if (
                    isinstance(node, ast.stmt)
                    and lineno is not None
                    and self._f32_marked(lineno)
                ):
                    spans.append((lineno, node.end_lineno or lineno))
        self._f32_spans = spans
        return spans

    def _f32_marked(self, lineno: int) -> bool:
        return lineno in self.f32_marks or (lineno - 1) in self.f32_marks

    def in_f32_span(self, lineno: int) -> bool:
        return any(
            start <= lineno <= end for start, end in self.f32_spans()
        )


def _scan_directives(
    text: str,
) -> list[tuple[str, int, tuple[str, ...], str]]:
    """All ``repro-lint`` comments: ``(kind, line, rules, reason)``.

    Uses :mod:`tokenize` so a directive inside a string literal is not
    mistaken for a real one.
    """
    directives = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        kind = match.group("kind")
        rules = tuple(
            rule for rule in (match.group("rules") or "").split(",") if rule
        )
        reason = (match.group("reason") or "").strip(" \t-—:،")
        directives.append((kind, token.start[0], rules, reason))
    return directives


class Project:
    """Everything the rules see: the root, the modules, shared state."""

    def __init__(self, root: Path, modules: list[SourceModule]) -> None:
        self.root = root
        self.modules = modules
        #: cross-module scratch space, keyed by rule id
        self.state: dict[str, object] = {}


class Rule:
    """Base class; subclasses register with :func:`register`."""

    id: str = ""
    name: str = ""
    summary: str = ""

    def check_module(
        self, module: SourceModule, project: Project
    ) -> list[Finding]:
        return []

    def finish(self, project: Project) -> list[Finding]:
        """Called once after every module was checked."""
        return []


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by id) to the global registry."""
    rule = rule_cls()
    if not rule.id or rule.id in _REGISTRY:
        raise ValueError(f"rule id missing or duplicate: {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """The registry (import :mod:`repro.analysis.rules` to populate)."""
    return dict(_REGISTRY)


def all_rule_ids() -> set[str]:
    return set(_REGISTRY) | {FRAMEWORK_RULE}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None.

    An attribute hanging off anything that is not a plain name chain
    (a call result, a subscript) resolves to ``.attr`` — callers can
    still match on the trailing method name.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return f".{node.attr}"
        return f"{base}.{node.attr}"
    return None


def is_self_attribute(node: ast.AST, attr: str | None = None) -> bool:
    """Whether ``node`` is ``self.<attr>`` (any attribute when None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def walk_function_body(
    func: ast.AsyncFunctionDef | ast.FunctionDef,
    *,
    into_nested: bool = False,
):
    """Yield nodes of a function body without entering nested
    functions or lambdas (unless ``into_nested``) — the scope rule
    RL001/RL002 traversals need: a nested ``def`` is its own
    execution context, not part of this one."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if not into_nested and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
