"""Forward value-kind lattice over the per-function CFG.

Every expression in an analyzed function gets a *kind* — a coarse
abstraction of what the value is at the process/precision boundaries
the dataflow rules guard:

- ``f32-array`` / ``f64-array``: a numpy array of known float dtype
  (also numpy scalar casts ``np.float32(x)``/``np.float64(x)``, which
  promote exactly like same-dtype arrays);
- ``py-scalar``: Python ints/floats/bools — *weak* in numpy promotion,
  so safe inside a float32 region;
- ``ndarray-unknown``: definitely an array, dtype untracked;
- ``operator``: a solver/operator object (``StructuredOperator``,
  ``BatchedFista``, ...) — never allowed across a process boundary;
- ``seed/config``: rebuild-from-seed material (``SystemConfig``
  dataclass dicts, codebooks, seeds) — the *allowed* boundary payload;
- ``other``: everything else (strings, bytes, locals we cannot type).

Containers (dict/list/tuple displays) are *tainted* by their worst
element: a dict holding an ``f64-array`` value is itself an
``f64-array`` payload for boundary purposes — how RL009 sees an
ndarray smuggled inside a task dict.

The analysis is a forward worklist to fixpoint over
:class:`~repro.analysis.cfg.CFG` blocks (assignments, ``astype``/
allocator ``dtype=`` arguments, attribute loads, same-module annotated
call returns), then one recording pass that annotates every expression
node with its kind.  Known limits, by design (documented in
docs/architecture.md §8): intra-procedural only — unannotated calls
and foreign attributes fall to ``other`` (silence, not noise); a name
bound on only one branch keeps its bound kind at the join.
"""

from __future__ import annotations

import ast

from .cfg import CFG, bound_names, build_cfg, header_exprs
from .core import dotted_name

# -- the public lattice -------------------------------------------------
F32 = "f32-array"
F64 = "f64-array"
SCALAR = "py-scalar"
NDARRAY = "ndarray-unknown"
OPERATOR = "operator"
CONFIG = "seed/config"
OTHER = "other"

#: internal kinds for *dtype values* flowing through variables
#: (``dtype = np.float32 if ... else np.float64``); reported as OTHER
DTYPE32 = "dtype-f32"
DTYPE64 = "dtype-f64"

ARRAY_KINDS = frozenset({F32, F64, NDARRAY})
#: kinds RL009 refuses at a process boundary
BOUNDARY_VIOLATIONS = frozenset({F32, F64, NDARRAY, OPERATOR})
BOUNDARY_KINDS = BOUNDARY_VIOLATIONS

_NUMPY_ROOTS = frozenset({"np", "numpy"})
#: allocators that default to float64 when no ``dtype=`` is given
ALLOC_DEFAULT_F64 = frozenset({"zeros", "empty", "ones", "full"})
#: allocators that inherit dtype from their first argument
ALLOC_LIKE = frozenset(
    {"zeros_like", "empty_like", "ones_like", "full_like"}
)
#: converters/combiners that preserve their (first) argument's dtype
PRESERVE = frozenset(
    {
        "asarray",
        "ascontiguousarray",
        "asfortranarray",
        "array",
        "copy",
        "abs",
        "absolute",
        "negative",
        "square",
        "sign",
        "take",
    }
)
#: binary ufuncs whose result promotes across operands
UFUNCS = frozenset(
    {
        "add",
        "subtract",
        "multiply",
        "divide",
        "true_divide",
        "maximum",
        "minimum",
        "power",
        "hypot",
        "fmod",
        "where",
    }
)
#: combiners over a sequence first argument
COMBINE = frozenset(
    {"stack", "concatenate", "vstack", "hstack", "column_stack", "tile"}
)
#: constructors whose instances must never be pickled to a worker
OPERATOR_FACTORIES = frozenset(
    {
        "StructuredOperator",
        "SparsePhiApply",
        "BatchedFista",
        "BatchWorkspace",
        "SparseBinaryMatrix",
        "WaveletTransform",
    }
)
#: name fragments that mark rebuild-from-seed material
_CONFIG_FRAGMENTS = ("config", "seed", "codebook")


def join(a: str, b: str) -> str:
    """Lattice merge at a CFG join: equal kinds survive, arrays of
    conflicting dtype widen to ``ndarray-unknown``, and a *dangerous*
    kind (array/operator/config) survives a merge with ``other`` — a
    value that may be an ndarray on one path must still be treated as
    one at a process boundary (may-analysis).  Everything else falls
    to ``other``."""
    if a == b:
        return a
    if a in ARRAY_KINDS and b in ARRAY_KINDS:
        return NDARRAY
    survivors = BOUNDARY_VIOLATIONS | {CONFIG}
    if a == OTHER and b in survivors:
        return b
    if b == OTHER and a in survivors:
        return a
    return OTHER


def promote(a: str, b: str) -> str:
    """Numpy binary-op result kind for two operand kinds."""
    if OPERATOR in (a, b):
        return OTHER
    if F64 in (a, b) and a in ARRAY_KINDS and b in ARRAY_KINDS:
        return F64
    if F64 in (a, b) and SCALAR in (a, b):
        return F64
    if F32 in (a, b) and b in (F32, SCALAR) and a in (F32, SCALAR):
        return F32
    if a in ARRAY_KINDS and b in (SCALAR, *ARRAY_KINDS):
        return NDARRAY if NDARRAY in (a, b) else a
    if b in ARRAY_KINDS:
        return NDARRAY if NDARRAY in (a, b) else b
    if a == b == SCALAR:
        return SCALAR
    return OTHER


def _join_env(left: dict[str, str], right: dict[str, str]) -> dict[str, str]:
    merged = dict(left)
    for name, kind in right.items():
        if name in merged:
            merged[name] = join(merged[name], kind)
        else:
            merged[name] = kind  # bound on one branch only: keep it
    return merged


def annotation_kind(annotation: ast.expr | None) -> str | tuple:
    """Map a return/parameter annotation to a kind (or a
    ``("tuple", [kinds])`` shape for tuple annotations)."""
    if annotation is None:
        return OTHER
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return OTHER
    name = dotted_name(annotation)
    if name is not None:
        tail = name.split(".")[-1]
        if tail == "ndarray":
            return NDARRAY
        if tail in ("float", "int", "bool"):
            return SCALAR
        if tail in OPERATOR_FACTORIES:
            return OPERATOR
        if any(frag in tail.lower() for frag in _CONFIG_FRAGMENTS):
            return CONFIG
        return OTHER
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value)
        tail = (base or "").split(".")[-1].lower()
        if tail == "tuple" and isinstance(annotation.slice, ast.Tuple):
            return (
                "tuple",
                [annotation_kind(e) for e in annotation.slice.elts],
            )
        if tail in ("list", "sequence", "iterable", "optional"):
            inner = annotation.slice
            if not isinstance(inner, ast.Tuple):
                return annotation_kind(inner)
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        # X | None style optionals: the interesting side wins
        left = annotation_kind(annotation.left)
        right = annotation_kind(annotation.right)
        return left if left != OTHER else right
    return OTHER


def module_return_kinds(tree: ast.Module) -> dict[str, object]:
    """Same-module annotated function returns — the one inter-
    procedural assist the tier allows itself."""
    returns: dict[str, object] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            kind = annotation_kind(node.returns)
            if kind != OTHER:
                returns[node.name] = kind
    return returns


class KindAnalysis:
    """Run the kind lattice over one function to fixpoint.

    After :meth:`run`, :meth:`kind_of` answers for any expression node
    in the function body (by node identity)."""

    def __init__(
        self,
        func,
        module_returns: dict[str, object] | None = None,
    ) -> None:
        self.func = func
        self.cfg: CFG = build_cfg(func)
        self.module_returns = module_returns or {}
        self.kinds: dict[int, object] = {}
        self._seed = self._seed_env()

    # ------------------------------------------------------------------
    def _seed_env(self) -> dict[str, object]:
        env: dict[str, object] = {}
        args = getattr(self.func, "args", None)
        if args is None:
            return env
        every = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        )
        for arg in every:
            kind = annotation_kind(arg.annotation)
            if kind == OTHER and any(
                frag in arg.arg.lower() for frag in _CONFIG_FRAGMENTS
            ):
                kind = CONFIG
            env[arg.arg] = kind
        return env

    def run(self) -> "KindAnalysis":
        in_envs: dict[int, dict[str, object]] = {
            self.cfg.entry.id: dict(self._seed)
        }
        order = self.cfg.rpo()
        # worklist to fixpoint (joins stabilize: the lattice is finite
        # and join is monotone towards NDARRAY/OTHER)
        pending = [block.id for block in order]
        out_envs: dict[int, dict[str, object]] = {}
        while pending:
            bid = pending.pop(0)
            block = self.cfg.blocks[bid]
            env: dict[str, object] = {}
            if bid == self.cfg.entry.id:
                env = dict(self._seed)
            for pred in block.preds:
                if pred in out_envs:
                    env = _join_env(env, out_envs[pred])
            in_envs[bid] = dict(env)
            for stmt in block.stmts:
                self._transfer(stmt, env, record=False)
            if out_envs.get(bid) != env:
                out_envs[bid] = env
                for succ in block.succs:
                    if succ not in pending:
                        pending.append(succ)
        # recording pass: annotate every expression with its fixpoint
        # entry environment
        for block in order:
            env = dict(in_envs.get(block.id, {}))
            for stmt in block.stmts:
                self._transfer(stmt, env, record=True)
        self._in_envs = in_envs
        return self

    def kind_of(self, node: ast.AST) -> str:
        kind = self.kinds.get(id(node), OTHER)
        if isinstance(kind, tuple):
            return self._taint(list(kind[1]))
        return kind

    # ------------------------------------------------------------------
    def _transfer(
        self, stmt: ast.stmt, env: dict[str, object], record: bool
    ) -> None:
        for expr in header_exprs(stmt):
            self._infer(expr, env, record)
        if isinstance(stmt, ast.Assign):
            kind = self._infer(stmt.value, env, record)
            for target in stmt.targets:
                self._bind(target, kind, env)
        elif isinstance(stmt, ast.AugAssign):
            value = self._infer(stmt.value, env, record)
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, OTHER)
                env[stmt.target.id] = promote(
                    _scalarize(current), _scalarize(value)
                )
        elif isinstance(stmt, ast.AnnAssign):
            kind: object
            if stmt.value is not None:
                kind = self._infer(stmt.value, env, record)
            else:
                kind = annotation_kind(stmt.annotation)
            self._bind(stmt.target, kind, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, OTHER, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, OTHER, env)
        else:
            for name in bound_names(stmt):
                env[name] = OTHER

    def _bind(
        self, target: ast.expr, kind: object, env: dict[str, object]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = kind
        elif isinstance(target, ast.Attribute):
            path = dotted_name(target)
            if path is not None:
                env[path] = kind
        elif isinstance(target, (ast.Tuple, ast.List)):
            if (
                isinstance(kind, tuple)
                and kind[0] == "tuple"
                and len(kind[1]) == len(target.elts)
            ):
                for element, element_kind in zip(target.elts, kind[1]):
                    self._bind(element, element_kind, env)
            else:
                for element in target.elts:
                    self._bind(element, OTHER, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, OTHER, env)
        # subscript stores (x[i] = v) do not change x's kind

    # -- expression inference ------------------------------------------
    def _infer(
        self, node: ast.expr, env: dict[str, object], record: bool
    ) -> object:
        kind = self._infer_inner(node, env, record)
        if record:
            self.kinds[id(node)] = kind
        return kind

    def _infer_inner(
        self, node: ast.expr, env: dict[str, object], record: bool
    ) -> object:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or isinstance(
                node.value, (int, float)
            ):
                return SCALAR
            return OTHER
        if isinstance(node, ast.Name):
            return env.get(node.id, OTHER)
        if isinstance(node, ast.Attribute):
            self._infer(node.value, env, record)
            return self._attribute_kind(node, env)
        if isinstance(node, ast.Await):
            return self._infer(node.value, env, record)
        if isinstance(node, ast.Starred):
            return self._infer(node.value, env, record)
        if isinstance(node, ast.NamedExpr):
            kind = self._infer(node.value, env, record)
            self._bind(node.target, kind, env)
            return kind
        if isinstance(node, ast.UnaryOp):
            return _scalarize(self._infer(node.operand, env, record))
        if isinstance(node, ast.BinOp):
            left = self._infer(node.left, env, record)
            right = self._infer(node.right, env, record)
            return promote(_scalarize(left), _scalarize(right))
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._infer(child, env, record)
            return SCALAR
        if isinstance(node, ast.IfExp):
            self._infer(node.test, env, record)
            left = self._infer(node.body, env, record)
            right = self._infer(node.orelse, env, record)
            return join(_scalarize(left), _scalarize(right)) if not (
                isinstance(left, str)
                and isinstance(right, str)
                and left == right
            ) else left
        if isinstance(node, ast.Subscript):
            value = self._infer(node.value, env, record)
            if isinstance(node.slice, ast.expr):
                self._infer(node.slice, env, record)
            if (
                isinstance(value, tuple)
                and value[0] == "tuple"
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, int)
                and 0 <= node.slice.value < len(value[1])
            ):
                return value[1][node.slice.value]
            if isinstance(value, str) and value in ARRAY_KINDS:
                return value  # slicing keeps the array kind
            if isinstance(value, tuple):
                return self._taint(list(value[1]))
            return OTHER
        if isinstance(node, ast.Tuple):
            kinds = [self._infer(e, env, record) for e in node.elts]
            return ("tuple", kinds)
        if isinstance(node, (ast.List, ast.Set)):
            kinds = [self._infer(e, env, record) for e in node.elts]
            return self._taint(kinds)
        if isinstance(node, ast.Dict):
            kinds = []
            for key, value in zip(node.keys, node.values):
                if key is not None:
                    self._infer(key, env, record)
                kinds.append(self._infer(value, env, record))
            return self._taint(kinds)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return OTHER  # comprehension scope: not tracked
        if isinstance(node, ast.Call):
            return self._call_kind(node, env, record)
        if isinstance(node, ast.Lambda):
            return OTHER
        if isinstance(node, ast.JoinedStr):
            return OTHER
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._infer(child, env, record)
        return OTHER

    def _taint(self, kinds: list) -> str:
        """Worst element kind of a container display."""
        flat: list[str] = []
        for kind in kinds:
            if isinstance(kind, tuple):
                flat.append(self._taint(list(kind[1])))
            else:
                flat.append(kind)
        for worst in (OPERATOR, F64, F32, NDARRAY):
            if worst in flat:
                return worst
        if flat and all(k in (CONFIG, SCALAR, OTHER) for k in flat):
            if CONFIG in flat:
                return CONFIG
        return OTHER

    def _attribute_kind(
        self, node: ast.Attribute, env: dict[str, object]
    ) -> object:
        path = dotted_name(node)
        if path is not None:
            if path in ("np.float32", "numpy.float32"):
                return DTYPE32
            if path in ("np.float64", "numpy.float64"):
                return DTYPE64
            if path in env:
                return env[path]
        attr = node.attr
        # the repo's precision naming convention: psi32/dense64_t/...
        # (integer dtypes are not float promotion sources: excluded)
        base = attr[:-2] if attr.endswith("_t") else attr
        if "int" not in base:
            if base.endswith("32") and not base.endswith("float32"):
                return F32
            if base.endswith("64") and not base.endswith("float64"):
                return F64
        if any(frag in attr.lower() for frag in _CONFIG_FRAGMENTS):
            return CONFIG
        if attr == "T":
            base = self.kinds.get(id(node.value), OTHER)
            if isinstance(base, str) and base in ARRAY_KINDS:
                return base
        return OTHER

    def _dtype_kind(
        self, node: ast.expr | None, env: dict[str, object]
    ) -> str | None:
        """``float32``/``float64`` for a dtype-position expression, or
        ``None`` when the dtype cannot be pinned."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in ("float32", "f4"):
                return F32
            if node.value in ("float64", "f8", "double"):
                return F64
            return None
        if isinstance(node, ast.Name):
            held = env.get(node.id)
            if held == DTYPE32:
                return F32
            if held == DTYPE64:
                return F64
            return None
        if isinstance(node, ast.Attribute):
            path = dotted_name(node)
            if path in ("np.float32", "numpy.float32"):
                return F32
            if path in ("np.float64", "numpy.float64"):
                return F64
            if node.attr == "dtype":
                receiver = self.kinds.get(id(node.value))
                if receiver is None:
                    receiver = self._infer(node.value, env, False)
                if receiver in (F32, F64):
                    return receiver
                return None
            if path is not None and env.get(path) in (DTYPE32, DTYPE64):
                return F32 if env[path] == DTYPE32 else F64
        if isinstance(node, ast.IfExp):
            left = self._dtype_kind(node.body, env)
            right = self._dtype_kind(node.orelse, env)
            return left if left == right else None
        return None

    def _call_kind(
        self, node: ast.Call, env: dict[str, object], record: bool
    ) -> object:
        arg_kinds = [self._infer(arg, env, record) for arg in node.args]
        kw_kinds: dict[str, object] = {}
        for keyword in node.keywords:
            kw_kinds[keyword.arg or "**"] = self._infer(
                keyword.value, env, record
            )
        name = dotted_name(node.func)
        tail = name.split(".")[-1] if name else None
        root = name.split(".")[0] if name else None

        # method calls on tracked receivers
        if isinstance(node.func, ast.Attribute):
            receiver = self.kinds.get(id(node.func.value))
            if receiver is None:
                receiver = self._infer(node.func.value, env, False)
            if tail == "astype":
                dtype_expr = node.args[0] if node.args else None
                for keyword in node.keywords:
                    if keyword.arg == "dtype":
                        dtype_expr = keyword.value
                cast = self._dtype_kind(dtype_expr, env)
                if cast is not None:
                    return cast
                return NDARRAY
            if tail == "copy" and isinstance(receiver, str):
                if receiver in ARRAY_KINDS:
                    return receiver
            if tail == "to_bytes":
                return OTHER
            if tail in ("reshape", "ravel", "view", "transpose", "clip"):
                if isinstance(receiver, str) and receiver in ARRAY_KINDS:
                    return receiver
            if tail in ("append", "extend", "insert", "add") and isinstance(
                node.func.value, ast.Name
            ):
                # container mutation taints the container variable the
                # same way a display would (how a task list built in a
                # loop carries its dict payloads' kinds)
                added = self._taint(list(arg_kinds))
                if added in BOUNDARY_KINDS:
                    current = env.get(node.func.value.id, OTHER)
                    if not (
                        isinstance(current, str)
                        and current in BOUNDARY_KINDS
                    ):
                        env[node.func.value.id] = added
                return OTHER

        if root in _NUMPY_ROOTS and tail is not None:
            out = kw_kinds.get("out")
            dtype_expr = None
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype_expr = keyword.value
            if (
                dtype_expr is None
                and tail in ALLOC_DEFAULT_F64
                and len(node.args) >= 2
            ):
                dtype_expr = node.args[1]  # np.zeros(shape, dtype)
            dtype = self._dtype_kind(dtype_expr, env)
            if tail in ALLOC_DEFAULT_F64:
                if dtype is not None:
                    return dtype
                if dtype_expr is not None:
                    return NDARRAY
                return F64  # numpy's default dtype
            if tail in ALLOC_LIKE:
                if dtype is not None:
                    return dtype
                if dtype_expr is not None:
                    return NDARRAY
                if arg_kinds and isinstance(arg_kinds[0], str):
                    if arg_kinds[0] in ARRAY_KINDS:
                        return arg_kinds[0]
                return NDARRAY
            if tail in PRESERVE or tail in COMBINE:
                if dtype is not None:
                    return dtype
                if dtype_expr is not None:
                    return NDARRAY
                seed = arg_kinds[0] if arg_kinds else OTHER
                if isinstance(seed, tuple):
                    seed = self._taint(list(seed[1]))
                if seed in ARRAY_KINDS:
                    return seed
                if seed == SCALAR and tail == "array":
                    return F64
                return NDARRAY
            if tail in UFUNCS:
                if isinstance(out, str) and out in ARRAY_KINDS:
                    return out
                operands = [
                    _scalarize(k)
                    for k in arg_kinds
                    if isinstance(k, str)
                ]
                result = SCALAR
                for operand in operands:
                    result = promote(result, operand)
                return result if result in ARRAY_KINDS else NDARRAY
            if tail == "float32":
                return F32
            if tail == "float64":
                return F64
            if tail == "dtype":
                inner = self._dtype_kind(
                    node.args[0] if node.args else None, env
                )
                if inner == F32:
                    return DTYPE32
                if inner == F64:
                    return DTYPE64
                return OTHER
            if isinstance(out, str) and out in ARRAY_KINDS:
                return out
            return OTHER

        if tail in OPERATOR_FACTORIES:
            return OPERATOR
        if tail == "asdict":
            return CONFIG
        if tail in self.module_returns:
            return self.module_returns[tail]
        return OTHER


def _scalarize(kind: object) -> str:
    """Collapse container kinds to a plain lattice point for binops."""
    if isinstance(kind, tuple):
        return OTHER
    if kind in (DTYPE32, DTYPE64):
        return OTHER
    return kind  # type: ignore[return-value]


def analyze_functions(tree: ast.Module):
    """Yield ``(func_node, KindAnalysis)`` for every function in a
    module (nested functions analyzed separately, as their own
    contexts)."""
    returns = module_return_kinds(tree)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, KindAnalysis(node, returns).run()
