"""Rule registration: importing this module populates the registry.

Each rule lives in its own module; this aggregator is what the runner
imports, so adding a rule is: write ``rules_<name>.py`` with a
``@register``-decorated :class:`~repro.analysis.core.Rule` subclass,
import it here, give it fixtures under ``tests/analysis/fixtures/``
and a section in ``docs/architecture.md``.
"""

from __future__ import annotations

from . import (  # noqa: F401 — imported for their registration side effect
    rules_alloc,
    rules_async,
    rules_await,
    rules_boundary,
    rules_dispatch,
    rules_docs,
    rules_exceptions,
    rules_lock,
    rules_precision,
    rules_telemetry,
)
