"""RL003: no array allocations inside marked hot loops.

The batched FISTA loop is the multiplier under every throughput number
in the stack — gateway, fleet and federation all sit on it.  Its
discipline (one GEMM pair per iteration, elementwise math in
preallocated :class:`~repro.solvers.batched.BatchWorkspace` buffers)
is worth nothing if a later edit quietly drops an ``np.zeros`` into
the loop: correctness tests still pass, the ROADMAP raw-speed pass
just got slower.  This rule freezes the discipline: inside any loop
marked ``# repro-lint: hot`` (see :mod:`repro.analysis.core`), a call
to a numpy allocator or a ``.copy()`` is a finding.

Intentional allocations (the batched solver's working-set compaction,
which is amortized and *shrinks* the arrays) carry a justified
``disable=RL003`` suppression on their enclosing statement.
"""

from __future__ import annotations

import ast

from .core import Finding, Project, Rule, SourceModule, dotted_name, register

#: numpy namespace functions that allocate a fresh array
NUMPY_ALLOCATORS = frozenset(
    {
        "zeros",
        "zeros_like",
        "empty",
        "empty_like",
        "ones",
        "ones_like",
        "full",
        "full_like",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "tile",
        "repeat",
        "copy",
        "ascontiguousarray",
        "asfortranarray",
        "array",
    }
)

_NUMPY_ROOTS = frozenset({"np", "numpy"})


@register
class HotLoopAllocRule(Rule):
    id = "RL003"
    name = "hot-loop-alloc"
    summary = (
        "loops marked '# repro-lint: hot' must not allocate arrays "
        "(np.zeros/empty/..., .copy()); use the BatchWorkspace arena"
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> list[Finding]:
        if not module.hot_spans():
            return []
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not module.in_hot_span(node.lineno):
                continue
            called = self._allocator(node)
            if called is None:
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f"allocation {called}() inside a hot loop; "
                        f"preallocate outside the loop (BatchWorkspace) "
                        f"or justify with a disable=RL003 suppression"
                    ),
                    key=called,
                )
            )
        return findings

    @staticmethod
    def _allocator(call: ast.Call) -> str | None:
        name = dotted_name(call.func)
        if name is None:
            return None
        parts = name.split(".")
        if (
            len(parts) == 2
            and parts[0] in _NUMPY_ROOTS
            and parts[1] in NUMPY_ALLOCATORS
        ):
            return name
        # method-style copies allocate wherever they appear
        if len(parts) >= 2 and parts[-1] == "copy":
            return name
        return None
