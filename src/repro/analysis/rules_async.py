"""RL001: no blocking calls inside ``async def`` bodies.

The gateway's 2-second node-to-display budget dies quietly when a
coroutine blocks the event loop: every connected stream's frames stop
being read, flush deadlines slip, and nothing crashes.  The convention
(solves and file IO leave the loop through ``run_in_executor`` /
``asyncio.to_thread``) is enforced here: a *direct call* to a known
blocking primitive or a solver entry point inside an ``async def``
body is a finding.

Passing the callable *by reference* to an executor is naturally clean
(``loop.run_in_executor(None, solve_measurement_block, task)`` has no
call node for the solver).  Lambda bodies are skipped — in async code
they are executor thunks, which run off-loop.  Nested ``def``/(async)
functions are their own scopes and are checked separately.
"""

from __future__ import annotations

import ast

from .core import Finding, Project, Rule, SourceModule, dotted_name, register
from .core import walk_function_body

#: exact dotted calls that block the calling thread
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "urllib.request.urlopen",
    }
)

#: bare built-in names that open blocking file IO on the loop
BLOCKING_BARE = frozenset({"open", "input"})

#: decode-stack solver entry points (module-level functions): a solve
#: is tens of milliseconds of GEMMs — never run it on the event loop
SOLVER_CALLS = frozenset({"solve_measurement_block", "batched_fista"})

#: method names treated as solver entry points (``BatchedFista.solve``
#: and the serial solver objects share the name)
SOLVER_METHODS = frozenset({"solve"})


@register
class AsyncBlockingRule(Rule):
    id = "RL001"
    name = "async-blocking"
    summary = (
        "no blocking IO/sleep or direct solver calls inside async def "
        "bodies; dispatch through run_in_executor / asyncio.to_thread"
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> list[Finding]:
        findings = []
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in walk_function_body(func):
                if not isinstance(node, ast.Call):
                    continue
                offense = self._classify(node)
                if offense is None:
                    continue
                called, why = offense
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"{why} call {called}() inside async def "
                            f"{func.name}; run it off-loop via "
                            f"run_in_executor/to_thread"
                        ),
                        key=called,
                    )
                )
        return findings

    @staticmethod
    def _classify(call: ast.Call) -> tuple[str, str] | None:
        name = dotted_name(call.func)
        if name is None:
            return None
        if name in BLOCKING_CALLS or name in BLOCKING_BARE:
            return name, "blocking"
        tail = name.rsplit(".", 1)[-1]
        if tail in SOLVER_CALLS:
            return name, "solver"
        if "." in name and tail in SOLVER_METHODS:
            return name, "solver"
        return None
