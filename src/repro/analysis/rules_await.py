"""RL008: shared state must be re-validated across an ``await``.

Every ``await`` is a scheduling point: any other task — another
session's read loop, another group's drain loop, ``close()`` — may run
and mutate shared state before control returns.  The gateway's
recovery/backpressure machines are built on attributes of ``self`` and
of shared parameters (``session``, ``group``), so a check-then-act
split across an ``await`` is a latent race even on a single-threaded
loop.  Inside every ``async def`` this rule reports:

- **stale-guard write**: an attribute read before an ``await`` and
  written after it, with no re-read between the last ``await`` and
  the write — the write acts on pre-await knowledge;
- **stale-guard use**: an attribute read in an ``if``/``while`` test
  before an ``await`` and *used* after it without a fresh test — the
  classic ``if self._pool is None: ... await ... self._pool.submit``
  shape (the pool may be gone by the time the permit arrives);
- **lock across await**: a synchronous ``with`` on a
  ``threading.Lock``-like object whose body contains an ``await`` —
  the lock is held through arbitrary other tasks' turns.

Only ``self.*`` and ``<parameter>.*`` attribute chains are tracked:
locals are task-private.  The ordering is linear (source order), not
path-sensitive — a loop's header re-test *is* seen as a read before
the awaits in its body, so the common ``while cond: await`` shape
stays silent.  Intentional cross-await patterns carry a justified
``disable=RL008``.
"""

from __future__ import annotations

import ast

from .core import (
    Finding,
    Project,
    Rule,
    SourceModule,
    dotted_name,
    register,
    walk_function_body,
)

#: with-context names treated as thread locks (held-across-await check)
_LOCK_FRAGMENTS = ("lock", "mutex")


def _position(node: ast.AST) -> tuple[int, int]:
    return (node.lineno, node.col_offset)


def _end_position(node: ast.AST) -> tuple[int, int]:
    return (
        node.end_lineno or node.lineno,
        node.end_col_offset or node.col_offset,
    )


class _Event:
    __slots__ = ("pos", "end", "kind", "key", "line")

    def __init__(self, node: ast.AST, kind: str, key: str = "") -> None:
        self.pos = _position(node)
        self.end = _end_position(node)
        self.kind = kind  # "await" | "read" | "test-read" | "write"
        self.key = key
        self.line = node.lineno


def _shared_chain(node: ast.Attribute, roots: set[str]) -> str | None:
    """``self.x.y`` -> ``"self.x.y"`` when rooted at self/a parameter."""
    path = dotted_name(node)
    if path is None:
        return None
    root = path.split(".")[0]
    if root not in roots:
        return None
    return path


@register
class AwaitAtomicityRule(Rule):
    id = "RL008"
    name = "await-atomicity"
    summary = (
        "async code must re-validate self./shared attributes after an "
        "await before acting on them, and never hold a threading lock "
        "across an await"
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(self._check_function(module, node))
        return findings

    # ------------------------------------------------------------------
    def _check_function(
        self, module: SourceModule, func: ast.AsyncFunctionDef
    ) -> list[Finding]:
        roots = {"self"} | {
            arg.arg
            for arg in (
                list(func.args.posonlyargs)
                + list(func.args.args)
                + list(func.args.kwonlyargs)
            )
        }
        roots.discard("cls")
        events = self._collect_events(func, roots)
        events.sort(key=lambda e: e.pos)
        findings = self._stale_guards(module, func, events)
        findings.extend(self._locks_across_await(module, func))
        return findings

    def _collect_events(
        self, func: ast.AsyncFunctionDef, roots: set[str]
    ) -> list[_Event]:
        events: list[_Event] = []
        test_spans: list[tuple[tuple[int, int], tuple[int, int]]] = []
        for node in walk_function_body(func):
            if isinstance(node, (ast.If, ast.While)):
                test_spans.append(
                    (_position(node.test), _end_position(node.test))
                )
            elif isinstance(node, ast.Assert):
                test_spans.append(
                    (_position(node.test), _end_position(node.test))
                )
        # only the longest chain of each attribute access is an event:
        # `session.result.error` must not also read "session.result"
        prefixes = {
            id(node.value)
            for node in walk_function_body(func)
            if isinstance(node, ast.Attribute)
        }
        aug_targets = {
            id(node.target)
            for node in walk_function_body(func)
            if isinstance(node, ast.AugAssign)
        }
        for node in walk_function_body(func):
            if isinstance(node, ast.Await):
                events.append(_Event(node, "await"))
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                # a method call *uses* its receiver object: the event
                # RL008 checks against a pre-await guard on it
                key = _shared_chain(node.func.value, roots)
                if key is not None and isinstance(
                    node.func.value, ast.Attribute
                ):
                    events.append(_Event(node.func.value, "read", key))
            elif isinstance(node, ast.Attribute):
                if id(node) in prefixes or id(node) in aug_targets:
                    continue
                key = _shared_chain(node, roots)
                if key is None:
                    continue
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    events.append(_Event(node, "write", key))
                    # a store also implies current knowledge of the
                    # attribute: it re-validates later uses
                    events.append(_Event(node, "refresh", key))
                else:
                    pos = _position(node)
                    in_test = any(
                        start <= pos <= end for start, end in test_spans
                    )
                    events.append(
                        _Event(
                            node, "test-read" if in_test else "read", key
                        )
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Attribute
            ):
                # read-modify-write reads the *current* value at the
                # write site: self-validating, only a refresh
                key = _shared_chain(node.target, roots)
                if key is not None:
                    events.append(_Event(node, "refresh", key))
        return events

    def _stale_guards(
        self,
        module: SourceModule,
        func: ast.AsyncFunctionDef,
        events: list[_Event],
    ) -> list[Finding]:
        awaits = [e for e in events if e.kind == "await"]
        if not awaits:
            return []
        findings: list[Finding] = []
        reported: set[tuple[str, str]] = set()
        for index, event in enumerate(events):
            if event.kind not in ("write", "read"):
                continue
            key = event.key
            if not key or key.count(".") > 2:
                continue
            # the last await that completed strictly before this event
            last_await = None
            for aw in awaits:
                if aw.end <= event.pos and not (
                    aw.pos <= event.pos <= aw.end
                ):
                    last_await = aw
            if last_await is None:
                continue
            # knowledge of `key` before that await?
            if event.kind == "write":
                prior = [
                    e
                    for e in events
                    if e.key == key
                    and e.kind in ("read", "test-read", "refresh")
                    and e.pos < last_await.pos
                ]
                shape = "written"
            else:
                # a plain use is stale only when guarded by a pre-await
                # *test* (check-then-act); ordinary reads after awaits
                # are the normal way to get fresh state
                prior = [
                    e
                    for e in events
                    if e.key == key
                    and e.kind == "test-read"
                    and e.pos < last_await.pos
                ]
                shape = "used"
            if not prior:
                continue
            # re-validated between the await and the event?
            refreshed = any(
                e.key == key
                and e.kind in ("read", "test-read", "refresh")
                and last_await.end <= e.pos < event.pos
                for e in events
                if e is not event
            )
            if refreshed:
                continue
            fingerprint = (key, shape)
            if fingerprint in reported:
                continue
            reported.add(fingerprint)
            findings.append(
                Finding(
                    rule=self.id,
                    path=module.rel,
                    line=event.line,
                    message=(
                        f"{key} checked before an await and {shape} "
                        f"after it without re-validation; another task "
                        f"may have changed it while {func.name} was "
                        f"suspended"
                    ),
                    key=f"stale-guard:{func.name}:{key}:{shape}",
                )
            )
        return findings

    def _locks_across_await(
        self, module: SourceModule, func: ast.AsyncFunctionDef
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in walk_function_body(func):
            if not isinstance(node, ast.With):
                continue
            held = None
            for item in node.items:
                name = dotted_name(item.context_expr) or ""
                target = name.split(".")[-1].lower()
                # threading.Lock()/RLock() entered inline also counts
                if isinstance(item.context_expr, ast.Call):
                    called = dotted_name(item.context_expr.func) or ""
                    target = called.split(".")[-1].lower()
                if any(frag in target for frag in _LOCK_FRAGMENTS):
                    held = name or target
                    break
            if held is None:
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Await):
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=module.rel,
                            line=inner.lineno,
                            message=(
                                f"await while holding threading lock "
                                f"{held}; the lock blocks every other "
                                f"task for the full suspension — use "
                                f"asyncio.Lock or release first"
                            ),
                            key=f"lock-across-await:{func.name}:{held}",
                        )
                    )
                    break
        return findings
