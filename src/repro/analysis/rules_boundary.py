"""RL009: only rebuild-from-seed material crosses a process boundary.

PR 2's fleet design — and the gateway's process-pool path after it —
rests on one invariant: a worker never receives a matrix.  Group tasks
carry wire bytes, scalar config dicts, Huffman codebooks and seeds;
the worker rebuilds ``A = Phi Psi^-1`` from the seed and caches it.
Ship an ndarray or a whole operator instead and the pickle cost
quietly eats the sharding win (and a future non-picklable operator
breaks the pool outright).  This rule checks it statically: at every
process-dispatch site, each argument's inferred kind
(:mod:`repro.analysis.dataflow`) must stay off the violation list
(``f32-array``/``f64-array``/``ndarray-unknown``/``operator``), and
the submitted callable must not be a lambda or a nested function (a
closure does not pickle).

Dispatch sites recognized:

- ``<pool>.submit(fn, *args)`` / ``<pool>.map|imap|starmap|apply|
  apply_async|map_async(fn, iterable)`` where the receiver is a
  ``multiprocessing.Pool``/``ProcessPoolExecutor`` value or a name
  containing ``pool``/``process`` (but not ``thread``);
- ``loop.run_in_executor(executor, fn, *args)`` when the executor
  expression names a process pool (``None`` and ``*thread*``
  executors do not pickle — exempt);
- ``*._pool_map(fn, tasks, ...)`` — the fleet engine's dispatch
  helper.

The column-sharded fleet layout and the gateway's batch hand-off
intentionally ship pooled *measurement columns* (kilobytes of float
data, stages 1–2 having run in the parent): those sites carry a
justified ``disable=RL009`` rather than an allowlist hole, so every
new array crossing is a conscious decision.
"""

from __future__ import annotations

import ast

from .core import Finding, Project, Rule, SourceModule, dotted_name, register
from .dataflow import (
    BOUNDARY_VIOLATIONS,
    KindAnalysis,
    module_return_kinds,
)

_POOL_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "starmap", "apply",
     "apply_async", "map_async", "starmap_async"}
)
_POOL_FACTORY_TAILS = frozenset({"Pool", "ProcessPoolExecutor"})


def _names_process_pool(name: str) -> bool:
    lowered = name.lower()
    if "thread" in lowered:
        return False
    return "process" in lowered or "pool" in lowered


@register
class ProcessBoundaryRule(Rule):
    id = "RL009"
    name = "process-boundary"
    summary = (
        "process-pool submissions may carry only picklable rebuild "
        "material (wire bytes, configs, codebooks, seeds) — no "
        "ndarrays, operators, or closures"
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> list[Finding]:
        findings: list[Finding] = []
        returns = module_return_kinds(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            pools = self._pool_locals(node)
            sites = [
                (call, shape)
                for call in ast.walk(node)
                if isinstance(call, ast.Call)
                and (shape := self._dispatch_shape(call, pools))
                is not None
            ]
            if not sites:
                continue
            analysis = KindAnalysis(node, returns).run()
            for call, (fn, payloads) in sites:
                findings.extend(
                    self._check_site(module, node, analysis, call, fn,
                                     payloads)
                )
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _pool_locals(func) -> set[str]:
        """Names assigned from a Pool/ProcessPoolExecutor factory."""
        pools: set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            called = dotted_name(node.value.func) or ""
            if called.split(".")[-1] in _POOL_FACTORY_TAILS:
                for target in node.targets:
                    name = dotted_name(target)
                    if name is not None:
                        pools.add(name)
        return pools

    def _dispatch_shape(
        self, call: ast.Call, pools: set[str] | None = None
    ) -> tuple[ast.expr | None, list[ast.expr]] | None:
        """``(submitted_fn, payload_exprs)`` when ``call`` is a
        process-dispatch site, else None."""
        pools = pools or set()
        if not isinstance(call.func, ast.Attribute):
            return None
        method = call.func.attr
        receiver = dotted_name(call.func.value) or ""
        if method == "run_in_executor":
            if not call.args:
                return None
            executor = call.args[0]
            executor_name = dotted_name(executor) or ""
            if isinstance(executor, ast.Constant) and executor.value is None:
                return None  # default thread pool: no pickling
            if not _names_process_pool(executor_name):
                return None
            fn = call.args[1] if len(call.args) > 1 else None
            return fn, list(call.args[2:])
        if method == "_pool_map":
            fn = call.args[0] if call.args else None
            return fn, list(call.args[1:2])
        if method in _POOL_METHODS:
            if not (receiver in pools or _names_process_pool(receiver)):
                return None
            fn = call.args[0] if call.args else None
            return fn, list(call.args[1:])
        return None

    def _check_site(
        self,
        module: SourceModule,
        func,
        analysis: KindAnalysis,
        call: ast.Call,
        fn: ast.expr | None,
        payloads: list[ast.expr],
    ) -> list[Finding]:
        findings: list[Finding] = []
        if isinstance(fn, ast.Lambda):
            findings.append(
                Finding(
                    rule=self.id,
                    path=module.rel,
                    line=call.lineno,
                    message=(
                        "lambda submitted to a process pool; closures "
                        "do not pickle — dispatch a module-level "
                        "function"
                    ),
                    key=f"closure:{func.name}",
                )
            )
        elif isinstance(fn, ast.Name) and self._is_nested_def(func, fn.id):
            findings.append(
                Finding(
                    rule=self.id,
                    path=module.rel,
                    line=call.lineno,
                    message=(
                        f"nested function {fn.id}() submitted to a "
                        f"process pool; closures do not pickle — "
                        f"dispatch a module-level function"
                    ),
                    key=f"closure:{func.name}:{fn.id}",
                )
            )
        for payload in payloads:
            kind = analysis.kind_of(payload)
            if kind in BOUNDARY_VIOLATIONS:
                label = (
                    dotted_name(payload)
                    or type(payload).__name__.lower()
                )
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.rel,
                        line=payload.lineno,
                        message=(
                            f"{kind} payload ({label}) crosses a "
                            f"process boundary; workers rebuild from "
                            f"seeds — ship wire bytes/configs/"
                            f"codebooks/seeds instead (or justify "
                            f"with disable=RL009)"
                        ),
                        key=f"payload:{func.name}:{label}:{kind}",
                    )
                )
        return findings

    @staticmethod
    def _is_nested_def(func, name: str) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not func
                and node.name == name
            ):
                return True
        return False
