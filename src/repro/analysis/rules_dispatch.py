"""RL010: every FrameKind dispatch handles all members or a default.

PR 7 added PARITY and NACK to the wire protocol by *hand-auditing*
every ``if kind is FrameKind...`` chain in the stack — the exact kind
of sweep that misses one site the next time a frame kind lands.  This
rule automates it: a dispatch over :class:`FrameKind` (an ``elif``
chain of ``== / is / in`` tests against ``FrameKind`` members, or a
``match`` over them) must either handle every member of the enum or
carry an explicit default (a final ``else:`` / ``case _:``), so an
unhandled kind is a deliberate, visible decision — not a silent drop.

A *single* ``if`` with no ``else`` is a guard (``if kind is ERROR:
raise``), not a dispatch, and stays exempt.  The enum's members are
read from the ``class FrameKind`` definition wherever it appears in
the linted tree (cross-module, via the rule's ``finish`` hook); when
no definition is in view the rule stays silent rather than guessing.
"""

from __future__ import annotations

import ast

from .core import Finding, Project, Rule, SourceModule, dotted_name, register

_ENUM_NAME = "FrameKind"


def _frame_members(test: ast.expr) -> tuple[str | None, set[str]] | None:
    """``(subject, members)`` when ``test`` compares something against
    FrameKind members (``x == FrameKind.A``, ``x is FrameKind.A``,
    ``x in (FrameKind.A, FrameKind.B)``), else None."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    op = test.ops[0]
    left, right = test.left, test.comparators[0]
    if isinstance(op, (ast.Eq, ast.Is, ast.NotEq, ast.IsNot)):
        member = _member_of(right) or _member_of(left)
        if member is None:
            return None
        subject = dotted_name(left if _member_of(right) else right)
        if isinstance(op, (ast.NotEq, ast.IsNot)):
            # `x is not FrameKind.A: raise` guards are not dispatch arms
            return None
        return subject, {member}
    if isinstance(op, ast.In) and isinstance(
        right, (ast.Tuple, ast.List, ast.Set)
    ):
        members = {_member_of(e) for e in right.elts}
        if None in members or not members:
            return None
        return dotted_name(left), set(members)  # type: ignore[arg-type]
    return None


def _member_of(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == _ENUM_NAME
    ):
        return node.attr
    return None


@register
class FrameDispatchRule(Rule):
    id = "RL010"
    name = "frame-dispatch"
    summary = (
        "dispatches over FrameKind must handle every member or carry "
        "an explicit default (else / case _)"
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> list[Finding]:
        state = project.state.setdefault(
            self.id, {"members": None, "sites": []}
        )
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name == _ENUM_NAME
            ):
                members = {
                    target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.Assign)
                    for target in stmt.targets
                    if isinstance(target, ast.Name)
                }
                if members:
                    state["members"] = members
            elif isinstance(node, ast.If):
                self._record_chain(module, node, state)
            elif isinstance(node, ast.Match):
                self._record_match(module, node, state)
        return []

    def finish(self, project: Project) -> list[Finding]:
        state = project.state.get(self.id)
        if not state or state["members"] is None:
            return []
        members: set[str] = state["members"]
        findings = []
        for rel, line, handled, has_default, context in state["sites"]:
            if has_default:
                continue
            missing = sorted(members - handled)
            if not missing:
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    path=rel,
                    line=line,
                    message=(
                        f"FrameKind dispatch without a default leaves "
                        f"{', '.join(missing)} unhandled; add an "
                        f"explicit else (raise/ignore) or cover every "
                        f"member"
                    ),
                    key=f"dispatch:{context}:{'|'.join(missing)}",
                )
            )
        return findings

    # ------------------------------------------------------------------
    def _record_chain(
        self, module: SourceModule, node: ast.If, state: dict
    ) -> None:
        # only chain heads: an elif arm shows up as its parent's orelse
        if getattr(node, "_rl010_arm", False):
            return
        chain = [node]
        while (
            len(chain[-1].orelse) == 1
            and isinstance(chain[-1].orelse[0], ast.If)
        ):
            arm = chain[-1].orelse[0]
            arm._rl010_arm = True  # type: ignore[attr-defined]
            chain.append(arm)
        arms = [_frame_members(arm.test) for arm in chain]
        if any(arm is None for arm in arms):
            return
        if len(chain) < 2:
            return  # a lone `if` is a guard, not a dispatch
        handled: set[str] = set()
        for arm in arms:
            handled |= arm[1]  # type: ignore[index]
        has_default = bool(chain[-1].orelse)
        state["sites"].append(
            (
                module.rel,
                node.lineno,
                handled,
                has_default,
                f"{module.rel}:{_subject_of(arms)}",
            )
        )

    def _record_match(
        self, module: SourceModule, node: ast.Match, state: dict
    ) -> None:
        handled: set[str] = set()
        has_default = False
        saw_frame_member = False
        for case in node.cases:
            pattern = case.pattern
            if (
                isinstance(pattern, ast.MatchAs)
                and pattern.pattern is None
            ):
                if case.guard is None:
                    has_default = True
                continue
            for value in _pattern_values(pattern):
                member = _member_of(value)
                if member is not None:
                    saw_frame_member = True
                    handled.add(member)
        if not saw_frame_member:
            return
        subject = dotted_name(node.subject) or "<subject>"
        state["sites"].append(
            (
                module.rel,
                node.lineno,
                handled,
                has_default,
                f"{module.rel}:{subject}",
            )
        )


def _pattern_values(pattern: ast.pattern) -> list[ast.expr]:
    values: list[ast.expr] = []
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchValue):
            values.append(node.value)
    return values


def _subject_of(arms) -> str:
    for arm in arms:
        if arm is not None and arm[0]:
            return arm[0]
    return "<subject>"
