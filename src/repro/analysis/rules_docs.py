"""RL006: README must track the CLI (subcommands and serve flags).

PR 3 introduced this check as shell greps in ``scripts/run_tier1.sh``;
moving it into the linter makes it unit-testable, gives it file:line
findings like every other rule, and lets one ``repro-ecg lint`` run
gate docs and code together (the rule also enforces its own
documentation: ``repro-ecg lint`` must appear in the README's CLI
reference like any other subcommand).

The drift contract, unchanged from the shell version:

- every argparse subcommand registered in ``cli.py`` (an
  ``add_parser("name", ...)`` call) appears in README.md as
  ``repro-ecg <name>``;
- every flag in the ``CHANNEL_FLAGS`` and ``TELEMETRY_FLAGS`` tuples
  of ``cli.py`` appears verbatim in README.md.

The CLI surface is read by *parsing* the ``cli.py`` that lives under
``project.root`` — never by importing the installed :mod:`repro.cli` —
so linting another checkout via ``--root`` compares that tree's README
against that tree's CLI, and the rule stays importable on a bare
stdlib interpreter (CI's lint job installs nothing).

The rule runs only when the lint root actually contains the repo's
``README.md`` and CLI module — fixture trees used by rule tests are
exempt by construction.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .core import Finding, Project, Rule, register

#: the module-level tuples in cli.py whose flags the README must list
FLAG_TUPLES = (
    "CHANNEL_FLAGS",
    "TELEMETRY_FLAGS",
    "PRECISION_FLAGS",
    "FEDERATION_FLAGS",
)


def readme_drift(
    readme_text: str,
    subcommands: list[str],
    flags: list[str],
) -> list[tuple[str, str]]:
    """Pure drift check: ``(kind, missing-item)`` pairs.

    Split out of the rule so tests can pin the matching semantics
    without building a repo tree.
    """
    gaps = []
    for command in subcommands:
        if f"repro-ecg {command}" not in readme_text:
            gaps.append(("subcommand", command))
    for flag in flags:
        if flag not in readme_text:
            gaps.append(("flag", flag))
    return gaps


def cli_surface(cli_path: Path) -> tuple[list[str], list[str]]:
    """``(subcommands, drift-checked flags)`` parsed out of ``cli_path``.

    Static by design: an ``add_parser("<name>", ...)`` call declares a
    subcommand; an assignment of a tuple/list of string literals to a
    name in :data:`FLAG_TUPLES` declares drift-checked flags.
    """
    tree = ast.parse(cli_path.read_text(encoding="utf-8"), str(cli_path))
    subcommands = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_parser"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            subcommands.append(node.args[0].value)
    flags = []
    for name in FLAG_TUPLES:
        flags.extend(_string_tuple(tree, name))
    return subcommands, flags


def _string_tuple(tree: ast.Module, name: str) -> list[str]:
    """String literals of a module-level ``name = ("...", ...)``."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            return [
                element.value
                for element in node.value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
    return []


@register
class DocsDriftRule(Rule):
    id = "RL006"
    name = "docs-drift"
    summary = (
        "README.md must list every repro-ecg subcommand and every "
        "drift-checked serve flag"
    )

    def finish(self, project: Project) -> list[Finding]:
        readme = project.root / "README.md"
        cli_module = project.root / "src" / "repro" / "cli.py"
        if not readme.exists() or not cli_module.exists():
            return []
        subcommands, flags = cli_surface(cli_module)
        text = readme.read_text(encoding="utf-8")
        findings = []
        for kind, missing in readme_drift(text, subcommands, flags):
            what = (
                f"repro-ecg {missing}" if kind == "subcommand" else missing
            )
            findings.append(
                Finding(
                    rule=self.id,
                    path="README.md",
                    line=1,
                    message=(
                        f"README.md does not mention '{what}' "
                        f"({kind} exists in repro-ecg --help; update "
                        f"the CLI reference)"
                    ),
                    key=f"{kind}:{missing}",
                )
            )
        return findings
