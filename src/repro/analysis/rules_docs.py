"""RL006: README must track the CLI (subcommands and serve flags).

PR 3 introduced this check as shell greps in ``scripts/run_tier1.sh``;
moving it into the linter makes it unit-testable, gives it file:line
findings like every other rule, and lets one ``repro-ecg lint`` run
gate docs and code together (the rule also enforces its own
documentation: ``repro-ecg lint`` must appear in the README's CLI
reference like any other subcommand).

The drift contract, unchanged from the shell version:

- every argparse subcommand of :func:`repro.cli._build_parser` appears
  in README.md as ``repro-ecg <name>``;
- every flag in :data:`repro.cli.CHANNEL_FLAGS` and
  :data:`repro.cli.TELEMETRY_FLAGS` appears verbatim in README.md.

The rule runs only when the lint root actually contains the repo's
``README.md`` and CLI module — fixture trees used by rule tests are
exempt by construction.
"""

from __future__ import annotations

import argparse

from .core import Finding, Project, Rule, register


def readme_drift(
    readme_text: str,
    subcommands: list[str],
    flags: list[str],
) -> list[tuple[str, str]]:
    """Pure drift check: ``(kind, missing-item)`` pairs.

    Split out of the rule so tests can pin the matching semantics
    without building a repo tree.
    """
    gaps = []
    for command in subcommands:
        if f"repro-ecg {command}" not in readme_text:
            gaps.append(("subcommand", command))
    for flag in flags:
        if flag not in readme_text:
            gaps.append(("flag", flag))
    return gaps


def cli_surface() -> tuple[list[str], list[str]]:
    """``(subcommands, drift-checked flags)`` of the installed CLI."""
    from .. import cli  # lazy: repro.cli imports this package lazily too

    parser = cli._build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    flags = [*cli.CHANNEL_FLAGS, *cli.TELEMETRY_FLAGS]
    return list(subparsers.choices), flags


@register
class DocsDriftRule(Rule):
    id = "RL006"
    name = "docs-drift"
    summary = (
        "README.md must list every repro-ecg subcommand and every "
        "drift-checked serve flag"
    )

    def finish(self, project: Project) -> list[Finding]:
        readme = project.root / "README.md"
        cli_module = project.root / "src" / "repro" / "cli.py"
        if not readme.exists() or not cli_module.exists():
            return []
        subcommands, flags = cli_surface()
        text = readme.read_text(encoding="utf-8")
        findings = []
        for kind, missing in readme_drift(text, subcommands, flags):
            what = (
                f"repro-ecg {missing}" if kind == "subcommand" else missing
            )
            findings.append(
                Finding(
                    rule=self.id,
                    path="README.md",
                    line=1,
                    message=(
                        f"README.md does not mention '{what}' "
                        f"({kind} exists in repro-ecg --help; update "
                        f"the CLI reference)"
                    ),
                    key=f"{kind}:{missing}",
                )
            )
        return findings
