"""RL005: exception hygiene on the decode path.

Two failure modes this rule exists for:

- a **broad handler** (``except:``, ``except Exception``,
  ``except BaseException``) that was written to keep a loop alive and
  then silently eats a programming error three PRs later.  Broad
  handlers are sometimes the right call (the gateway's drain loop must
  survive arbitrary solve failures) — but each one must say so, with a
  justified ``disable=RL005`` suppression;
- a handler that catches one of the stack's *load-bearing* error types
  (``ProtocolError`` — a node speaking garbage; ``TelemetryError`` — a
  corrupted metrics plane) and does nothing at all.  Dropping these on
  the floor turns a diagnosable wire bug into silent data loss.
"""

from __future__ import annotations

import ast

from .core import Finding, Project, Rule, SourceModule, register

_BROAD = frozenset({"Exception", "BaseException"})

#: error types that must never be swallowed with a no-op handler
LOAD_BEARING_ERRORS = frozenset({"ProtocolError", "TelemetryError"})


def _names(expr: ast.expr | None) -> list[str]:
    """Exception class names of one ``except`` clause."""
    if expr is None:
        return []
    nodes = expr.elts if isinstance(expr, ast.Tuple) else [expr]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _is_noop(body: list[ast.stmt]) -> bool:
    """Whether a handler body does nothing (``pass`` / bare ``...``)."""
    for node in body:
        if isinstance(node, ast.Pass):
            continue
        if isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Constant
        ) and node.value.value is Ellipsis:
            continue
        return False
    return True


@register
class ExceptionHygieneRule(Rule):
    id = "RL005"
    name = "exception-hygiene"
    summary = (
        "no bare/broad excepts without a justified suppression; no "
        "silent swallow of ProtocolError/TelemetryError"
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _names(node.type)
            if node.type is None or any(n in _BROAD for n in names):
                caught = " ".join(names) if names else "everything"
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"broad except ({caught}): narrow the "
                            f"types, or keep it with a justified "
                            f"disable=RL005 suppression"
                        ),
                        key="broad-except",
                    )
                )
                continue
            swallowed = sorted(
                set(names) & LOAD_BEARING_ERRORS
            )
            if swallowed and _is_noop(node.body):
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"{', '.join(swallowed)} swallowed by a "
                            f"no-op handler; count it, log it, or "
                            f"re-raise"
                        ),
                        key=f"swallow:{','.join(swallowed)}",
                    )
                )
        return findings
