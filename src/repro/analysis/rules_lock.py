"""RL002: lock discipline in classes that own a ``threading.Lock``.

:class:`~repro.telemetry.core.MetricsRegistry` is touched by the event
loop, the gateway's solve threads and the realtime simulator at once;
its correctness rests on the convention that every mutation of the
instrument maps happens under ``self._lock``.  This rule is a
lightweight static race detector for that convention: in any class
that assigns a ``threading.Lock``/``RLock`` to an attribute, an
instance attribute that is written *both* inside and outside a
``with self.<lock>:`` block (outside ``__init__``, which publishes the
object before any concurrency exists) is flagged at each unguarded
write site.

Writes counted: plain/augmented/annotated assignment to ``self.x``,
and item assignment through it (``self.x[k] = v`` mutates the guarded
structure just as surely).  Reads are deliberately not flagged —
lock-free reads of monotonic state are a legitimate pattern and the
signal-to-noise would collapse.
"""

from __future__ import annotations

import ast

from .core import (
    Finding,
    Project,
    Rule,
    SourceModule,
    dotted_name,
    is_self_attribute,
    register,
    walk_function_body,
)

_LOCK_FACTORIES = frozenset(
    {"threading.Lock", "threading.RLock", "Lock", "RLock"}
)
_UNGUARDED_OK = frozenset({"__init__", "__new__", "__post_init__"})


def _lock_attributes(cls: ast.ClassDef) -> set[str]:
    """Attributes assigned a Lock/RLock anywhere in the class body."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        if dotted_name(node.value.func) not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            if is_self_attribute(target):
                locks.add(target.attr)
    return locks


def _write_targets(node: ast.stmt):
    """Self-attribute names written by one statement."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return
    for target in targets:
        base = target
        # unwrap item/slice writes: self.x[k] = v mutates self.x
        while isinstance(base, ast.Subscript):
            base = base.value
        if is_self_attribute(base):
            yield base.attr
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                if is_self_attribute(element):
                    yield element.attr


@register
class LockDisciplineRule(Rule):
    id = "RL002"
    name = "lock-discipline"
    summary = (
        "in classes owning a threading.Lock, attributes written under "
        "the lock must not also be written outside it"
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> list[Finding]:
        findings = []
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                findings.extend(self._check_class(cls, module))
        return findings

    def _check_class(
        self, cls: ast.ClassDef, module: SourceModule
    ) -> list[Finding]:
        locks = _lock_attributes(cls)
        if not locks:
            return []
        guarded: set[str] = set()
        unguarded: list[tuple[str, int]] = []  # (attr, line)
        for method in cls.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            init = method.name in _UNGUARDED_OK
            self._walk(method.body, False, init, locks, guarded, unguarded)
        findings = []
        for attr, line in unguarded:
            if attr in guarded:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.rel,
                        line=line,
                        message=(
                            f"self.{attr} is written under "
                            f"{cls.name}'s lock elsewhere but written "
                            f"here without it"
                        ),
                        key=f"{cls.name}.{attr}",
                    )
                )
        return findings

    def _walk(
        self,
        body: list[ast.stmt],
        held: bool,
        init: bool,
        locks: set[str],
        guarded: set[str],
        unguarded: list[tuple[str, int]],
    ) -> None:
        for node in body:
            now_held = held
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(
                    is_self_attribute(item.context_expr, lock)
                    or (
                        isinstance(item.context_expr, ast.Call)
                        and any(
                            is_self_attribute(
                                item.context_expr.func, lock
                            )
                            for lock in locks
                        )
                    )
                    for item in node.items
                    for lock in locks
                ):
                    now_held = True
            for attr in _write_targets(node):
                if attr in locks:
                    continue
                if now_held:
                    guarded.add(attr)
                elif not init:
                    unguarded.append((attr, node.lineno))
            # a nested def is a separate call context: even when defined
            # under `with self._lock:`, it may be stored and invoked later
            # without the lock, so its body is walked as unguarded
            nested = isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            child_held = False if nested else now_held
            for child_body in self._child_bodies(node):
                self._walk(
                    child_body, child_held, init, locks, guarded, unguarded
                )

    @staticmethod
    def _child_bodies(node: ast.stmt) -> list[list[ast.stmt]]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return [node.body]
        bodies = []
        for name in ("body", "orelse", "finalbody"):
            value = getattr(node, name, None)
            if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt
            ):
                bodies.append(value)
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                bodies.append(handler.body)
        if isinstance(node, ast.Match):
            bodies.extend(case.body for case in node.cases)
        return bodies
