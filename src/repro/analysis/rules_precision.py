"""RL007: no float64 promotion inside hot / f32 regions.

PR 8's 2.18x hybrid speedup holds only while the float32 FISTA leg
*stays* float32: one float64 operand in a binop — a ``np.float64``
scalar, a 64-bit buffer, an allocator left at numpy's float64 default
— and numpy silently promotes the whole expression, doubling the
GEMM/elementwise cost while every correctness test stays green.  This
rule runs the value-kind lattice (:mod:`repro.analysis.dataflow`) over
every function and, inside ``# repro-lint: hot`` loops and
``# repro-lint: f32`` regions (the solver's float32 leg,
``sparse_apply``'s kernels), reports:

- a binary op or binary ufunc call whose inferred operand kinds mix
  ``f32-array`` with ``f64-array`` — a forced float64 promotion;
- a fresh-allocation call (``np.zeros/empty/ones/full``) with no
  ``dtype=`` argument — it defaults to float64 no matter what flows
  into it.

Deliberate precision exits (accumulating norms in float64, the
float64 polish hand-off) are exactly that — deliberate — and carry a
justified ``disable=RL007``.
"""

from __future__ import annotations

import ast

from .core import Finding, Project, Rule, SourceModule, dotted_name, register
from .dataflow import (
    ALLOC_DEFAULT_F64,
    F32,
    F64,
    UFUNCS,
    _NUMPY_ROOTS,
    analyze_functions,
)


@register
class PrecisionFlowRule(Rule):
    id = "RL007"
    name = "precision-flow"
    summary = (
        "hot/f32 regions must not promote float32 operands to float64 "
        "or allocate at numpy's float64 default (missing dtype=)"
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> list[Finding]:
        if not module.hot_spans() and not module.f32_spans():
            return []
        in_region = lambda line: module.in_hot_span(  # noqa: E731
            line
        ) or module.in_f32_span(line)
        findings: list[Finding] = []
        for func, analysis in analyze_functions(module.tree):
            span = range(func.lineno, (func.end_lineno or func.lineno) + 1)
            if not any(in_region(line) for line in span):
                continue
            for node in ast.walk(func):
                if not in_region(getattr(node, "lineno", 0)):
                    continue
                if isinstance(node, ast.BinOp):
                    left = analysis.kind_of(node.left)
                    right = analysis.kind_of(node.right)
                    findings.extend(
                        self._promotion(module, func, node, left, right)
                    )
                elif isinstance(node, ast.Call):
                    findings.extend(
                        self._check_call(module, func, analysis, node)
                    )
        return findings

    def _promotion(
        self,
        module: SourceModule,
        func,
        node: ast.AST,
        left: str,
        right: str,
    ) -> list[Finding]:
        if {left, right} != {F32, F64}:
            return []
        return [
            Finding(
                rule=self.id,
                path=module.rel,
                line=node.lineno,
                message=(
                    f"float64 promotion in a float32 region: "
                    f"{left} combined with {right}; cast the float64 "
                    f"side (or justify with disable=RL007)"
                ),
                key=f"promotion:{func.name}:{left}x{right}",
            )
        ]

    def _check_call(
        self,
        module: SourceModule,
        func,
        analysis,
        node: ast.Call,
    ) -> list[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return []
        parts = name.split(".")
        if len(parts) != 2 or parts[0] not in _NUMPY_ROOTS:
            return []
        tail = parts[1]
        if tail in ALLOC_DEFAULT_F64:
            has_dtype = (
                any(kw.arg == "dtype" for kw in node.keywords)
                or len(node.args) >= 2  # np.zeros(shape, dtype)
            )
            if not has_dtype:
                return [
                    Finding(
                        rule=self.id,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"{name}() without dtype= in a hot/f32 "
                            f"region allocates float64; pass the "
                            f"working dtype explicitly"
                        ),
                        key=f"alloc-no-dtype:{func.name}:{name}",
                    )
                ]
            return []
        if tail in UFUNCS and len(node.args) >= 2:
            kinds = [analysis.kind_of(arg) for arg in node.args[:2]]
            return self._promotion(
                module, func, node, kinds[0], kinds[1]
            )
        return []
