"""RL004: every metric must be declared in the telemetry catalog.

The telemetry plane's merge algebra, sinks and dashboards all key on
metric *names and label sets*; a call site that invents a name (or
mislabels a series) forks the plane silently — the series exists, but
no view, bench assertion or scrape consumer knows to look for it.
This rule pins every literal-named ``.inc(...)`` / ``.set_gauge(...)``
/ ``.observe(...)`` call to :mod:`repro.telemetry.catalog`:

- the metric name must be declared;
- the instrument kind must match (``inc`` on a gauge is a bug);
- explicit label kwargs must be within the declared label set;
- meter bindings (``registry.meter(...)``, ``meter.child(...)``) may
  only bind declared label names;
- and, cross-module, a catalog entry no call site references is dead
  and flagged — the catalog cannot drift in either direction.

Calls whose metric name is not a string literal (the ``Meter``
forwarding shims, histogram internals) are out of static reach and
skipped; the catalog's completeness is still guaranteed by every
*entry point* call site carrying a literal.
"""

from __future__ import annotations

import ast

from ..telemetry.catalog import CATALOG, KIND_BY_METHOD, LABEL_NAMES
from .core import Finding, Project, Rule, SourceModule, register

#: kwargs of the instrument methods that are not labels
_NON_LABEL_KWARGS = frozenset({"amount", "value", "buckets"})

_BINDING_METHODS = frozenset({"meter", "child"})

#: the module defining the instruments: its forwarding shims
#: (``Meter.inc`` -> ``registry.inc``) take the name as a variable and
#: would only produce skipped, uncheckable sites
_EXEMPT_SUFFIX = "telemetry/core.py"


@register
class TelemetryCatalogRule(Rule):
    id = "RL004"
    name = "telemetry-catalog"
    summary = (
        "metric names/kinds/labels at every call site must match "
        "repro.telemetry.catalog (and no catalog entry may be dead)"
    )

    def check_module(
        self, module: SourceModule, project: Project
    ) -> list[Finding]:
        used: set[str] = project.state.setdefault(self.id, set())
        if module.rel.replace("\\", "/").endswith(_EXEMPT_SUFFIX):
            return []
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            if method in KIND_BY_METHOD:
                findings.extend(
                    self._check_instrument_call(node, method, module, used)
                )
            elif method in _BINDING_METHODS and node.keywords:
                findings.extend(self._check_binding(node, module))
        return findings

    def _check_instrument_call(
        self,
        node: ast.Call,
        method: str,
        module: SourceModule,
        used: set[str],
    ) -> list[Finding]:
        if not node.args:
            return []
        first = node.args[0]
        if not (
            isinstance(first, ast.Constant) and isinstance(first.value, str)
        ):
            return []  # dynamic name: out of static reach
        name = first.value
        spec = CATALOG.get(name)
        if spec is None:
            return [
                Finding(
                    rule=self.id,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f"metric '{name}' is not declared in "
                        f"repro.telemetry.catalog"
                    ),
                    key=name,
                )
            ]
        used.add(name)
        findings = []
        expected = KIND_BY_METHOD[method]
        if spec.kind != expected:
            findings.append(
                Finding(
                    rule=self.id,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f"'{name}' is declared as a {spec.kind} but "
                        f".{method}() records a {expected}"
                    ),
                    key=f"{name}:kind",
                )
            )
        for keyword in node.keywords:
            label = keyword.arg
            if label is None or label in _NON_LABEL_KWARGS:
                continue  # **labels splats are dynamic; skip
            if label not in spec.labels:
                declared = (
                    ", ".join(sorted(spec.labels)) or "no labels"
                )
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"label '{label}' is not declared for "
                            f"'{name}' (catalog allows: {declared})"
                        ),
                        key=f"{name}:{label}",
                    )
                )
        return findings

    def _check_binding(
        self, node: ast.Call, module: SourceModule
    ) -> list[Finding]:
        findings = []
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            if keyword.arg not in LABEL_NAMES:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"meter binds label '{keyword.arg}', which "
                            f"no catalog entry declares"
                        ),
                        key=f"binding:{keyword.arg}",
                    )
                )
        return findings

    def finish(self, project: Project) -> list[Finding]:
        used = project.state.get(self.id, set())
        findings = []
        catalog_rel = "src/repro/telemetry/catalog.py"
        if not any(
            m.rel.replace("\\", "/").endswith("telemetry/catalog.py")
            for m in project.modules
        ):
            # fixture/partial runs without the catalog module in scope
            # cannot meaningfully report dead entries
            return []
        for name in sorted(set(CATALOG) - set(used)):
            findings.append(
                Finding(
                    rule=self.id,
                    path=catalog_rel,
                    line=1,
                    message=(
                        f"catalog entry '{name}' is referenced by no "
                        f"call site; delete it or use it"
                    ),
                    key=f"dead:{name}",
                )
            )
        return findings
