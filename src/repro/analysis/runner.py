"""The lint runner: discover files, run rules, filter, report.

Exposed as ``repro-ecg lint`` and ``python -m repro.analysis``.  The
pipeline per run:

1. discover ``*.py`` files (default: ``src/`` under the root, the
   runtime the invariants protect; pass explicit paths to lint
   anything else, e.g. the rule-test fixtures; ``--changed [REF]``
   narrows to files changed vs a git base ref for fast PR feedback);
2. parse each into a :class:`~repro.analysis.core.SourceModule` and
   run every registered rule over it, then each rule's cross-module
   :meth:`~repro.analysis.core.Rule.finish` hook;
3. drop findings covered by an inline justified suppression, add
   ``RL000`` diagnostics for unjustified ones;
4. subtract the checked-in baseline
   (:mod:`repro.analysis.baseline`);
5. render ``file:line: RLxxx message`` lines (or JSON, or
   ``--format github`` workflow annotations), optionally write the
   machine-readable report, and exit non-zero iff findings remain.

Exit codes: 0 clean, 1 findings, 2 usage error — shell-friendly so
``scripts/run_tier1.sh`` and CI gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from ..errors import ConfigurationError
from . import rules as _rules  # noqa: F401 — importing registers the rules
from .baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .core import Finding, Project, SourceModule, all_rule_ids, all_rules

REPORT_SCHEMA = 1


def discover_files(root: Path, paths: list[str] | None) -> list[Path]:
    """The files to lint: explicit paths, or ``<root>/src/**/*.py``."""
    if paths:
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = root / path
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.is_file():
                files.append(path)
            else:
                raise ConfigurationError(f"no such file or directory: {raw}")
        return files
    source_root = root / "src"
    if not source_root.is_dir():
        raise ConfigurationError(
            f"{source_root} does not exist; pass explicit paths or --root"
        )
    return sorted(source_root.rglob("*.py"))


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def changed_files(root: Path, base: str) -> set[str] | None:
    """Repo-relative paths changed vs ``base`` (plus untracked files),
    or None when git is unavailable — the caller falls back to the
    full tree so ``--changed`` never silently lints nothing."""
    commands = (
        ["git", "diff", "--name-only", "-z", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "-z"],
    )
    names: set[str] = set()
    for command in commands:
        try:
            result = subprocess.run(
                command,
                cwd=root,
                capture_output=True,
                text=True,
                timeout=30,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        if result.returncode != 0:
            return None
        names.update(n for n in result.stdout.split("\0") if n)
    return names


def run_lint(
    root: Path,
    paths: list[str] | None = None,
    select: set[str] | None = None,
    only_rels: set[str] | None = None,
) -> tuple[list[Finding], Project, int]:
    """Run every (selected) rule; returns (findings, project,
    suppressed-count).  Findings are sorted by file, line, rule and
    *not* yet baseline-filtered.  ``only_rels`` (from ``--changed``)
    restricts the discovered set to those repo-relative paths — a
    filter, not an expansion, so test fixtures stay out even when they
    changed."""
    files = discover_files(root, paths)
    if only_rels is not None:
        files = [
            path for path in files if _relative(path, root) in only_rels
        ]
    modules = [
        SourceModule(
            path, _relative(path, root), path.read_text(encoding="utf-8")
        )
        for path in files
    ]
    project = Project(root, modules)
    rules = {
        rule_id: rule
        for rule_id, rule in all_rules().items()
        if select is None or rule_id in select
    }
    raw: list[Finding] = []
    for module in modules:
        raw.extend(module.framework_findings())
        for rule in rules.values():
            raw.extend(rule.check_module(module, project))
    for rule in rules.values():
        raw.extend(rule.finish(project))

    by_rel = {module.rel: module for module in modules}
    findings = []
    suppressed = 0
    for finding in raw:
        module = by_rel.get(finding.path)
        if module is not None and module.suppressed(finding):
            suppressed += 1
        else:
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.key))
    return findings, project, suppressed


def _report_dict(
    findings: list[Finding],
    suppressed: int,
    baselined: int,
    root: Path,
) -> dict:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema": REPORT_SCHEMA,
        "root": str(root),
        "findings": [f.to_dict() for f in findings],
        "counts": counts,
        "suppressed": suppressed,
        "baselined": baselined,
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ecg lint",
        description=(
            "repro-lint: static invariant checks for the decode stack "
            "(event-loop blocking, lock discipline, hot-loop "
            "allocations, telemetry catalog, exception hygiene, "
            "docs drift, precision flow, await atomicity, process "
            "boundaries, frame-dispatch exhaustiveness)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: <root>/src)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (README.md, .repro-lint-baseline.json)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "lint only files changed vs REF (default HEAD; plus "
            "untracked files); falls back to the full tree when git "
            "is unavailable"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "stdout format (github emits workflow annotations: "
            "::error file=...,line=...)"
        ),
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the JSON findings report here",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} "
            f"when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report grandfathered findings too",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id} {rule.name}: {rule.summary}")
        return 0
    root = Path(args.root)
    if not root.is_dir():
        print(f"--root {args.root} is not a directory", file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = {rule_id.strip() for rule_id in args.select.split(",")}
        # validate against the full id space: RL000 is a legal (if
        # redundant) selection — framework diagnostics always run
        unknown = select - all_rule_ids()
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    only_rels = None
    if args.changed is not None:
        only_rels = changed_files(root, args.changed)
        if only_rels is None:
            print(
                "repro-lint: git unavailable; --changed falling back "
                "to the full tree",
                file=sys.stderr,
            )
    try:
        findings, _, suppressed = run_lint(
            root, args.paths, select, only_rels
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else root / DEFAULT_BASELINE_NAME
    )
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"baseline: recorded {len(findings)} finding(s) in "
            f"{baseline_path}"
        )
        return 0
    baselined = 0
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        findings, baselined = apply_baseline(findings, baseline)

    report = _report_dict(findings, suppressed, baselined, root)
    if args.report is not None:
        report_path = Path(args.report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    elif args.format == "github":
        for finding in findings:
            # workflow-command annotations; newlines would terminate
            # the command early, so flatten the message
            message = finding.message.replace("\n", " ")
            print(
                f"::error file={finding.path},line={finding.line},"
                f"title={finding.rule} {finding.key}::{message}"
            )
        print(
            f"repro-lint: {len(findings)} finding(s), "
            f"{suppressed} suppressed, {baselined} baselined"
        )
    else:
        for finding in findings:
            print(finding.render())
        summary = (
            f"repro-lint: {len(findings)} finding(s), "
            f"{suppressed} suppressed, {baselined} baselined"
        )
        print(summary)
    return 1 if findings else 0
