"""Command-line interface: run the paper's experiments from a shell.

Installed as ``repro-ecg``::

    repro-ecg quickstart --cr 50 --record 100
    repro-ecg fleet --streams 8 --batch-size 32 --groups 4 --fleet-workers 4
    repro-ecg serve --port 9765 --flush-ms 250 --fleet-workers 2
    repro-ecg serve --adaptive --metrics-port 9100 --metrics-file ring.jsonl
    repro-ecg serve --simulate 4 --packets 6     # self-contained demo
    repro-ecg sweep --figure fig7 --records 3 --packets 6
    repro-ecg fig8
    repro-ecg budget
    repro-ecg simd
    repro-ecg records
    repro-ecg lint

Every subcommand prints the same tables the benchmarks assert on, sized
by ``--records``/``--packets`` so a laptop run stays interactive.
``serve`` runs the live ingestion gateway (:mod:`repro.ingest`) — with
``--simulate N`` it also spawns N in-process node clients over real TCP
and exits when they finish.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .config import SystemConfig
from .core import EcgMonitorSystem
from .ecg import RECORD_NAMES, SyntheticMitBih
from .experiments import (
    render_table,
    run_encoder_budget,
    run_fig2,
    run_fig6,
    run_fig7,
    run_fig8,
    run_simd_ablation,
)
from .telemetry import render_result_table

_FIGURES = ("fig2", "fig6", "fig7")

#: the lossy-channel simulation flags of ``serve --simulate``; the
#: README drift check (scripts/run_tier1.sh) greps for each of these,
#: so the docs cannot silently fall behind the CLI
CHANNEL_FLAGS = (
    "--loss", "--reorder", "--dup", "--corrupt", "--channel-seed",
    "--fec", "--nack-budget",
)

#: the telemetry/adaptive flags of ``serve``; drift-checked against
#: README exactly like CHANNEL_FLAGS
TELEMETRY_FLAGS = ("--adaptive", "--metrics-file", "--metrics-port")

#: the decode-backend flags shared by ``fleet`` and ``serve``
#: (``--simulate`` nodes request the backend in their handshake);
#: drift-checked against README exactly like CHANNEL_FLAGS
PRECISION_FLAGS = ("--precision",)

#: the multi-gateway federation flags of ``serve``; drift-checked
#: against README exactly like CHANNEL_FLAGS
FEDERATION_FLAGS = ("--gateways", "--groups")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ecg",
        description=(
            "Reproduction of 'A Real-Time Compressed Sensing-Based "
            "Personal Electrocardiogram Monitoring System' (DATE 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quick = sub.add_parser("quickstart", help="compress one record and report metrics")
    quick.add_argument("--record", default="100", choices=list(RECORD_NAMES))
    quick.add_argument("--cr", type=float, default=50.0, help="nominal CR percent")
    quick.add_argument("--packets", type=int, default=8)
    quick.add_argument("--duration", type=float, default=40.0)
    quick.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "decode this many windows per batched-FISTA call "
            "(default: serial reference decode, one window at a time)"
        ),
    )

    sweep = sub.add_parser("sweep", help="regenerate a figure's series")
    sweep.add_argument("--figure", choices=_FIGURES, default="fig7")
    sweep.add_argument("--records", type=int, default=3)
    sweep.add_argument("--packets", type=int, default=6)
    sweep.add_argument("--duration", type=float, default=40.0)

    fleet = sub.add_parser(
        "fleet",
        help="decode many simulated node streams through the fleet scheduler",
    )
    fleet.add_argument(
        "--streams",
        type=int,
        default=4,
        help="number of concurrent node streams (one record each)",
    )
    fleet.add_argument("--packets", type=int, default=8)
    fleet.add_argument("--cr", type=float, default=50.0)
    fleet.add_argument("--duration", type=float, default=40.0)
    fleet.add_argument(
        "--groups",
        type=int,
        default=1,
        help=(
            "distinct sensing seeds across the fleet (1 = the paper's "
            "shared fixed matrix; sharding across workers needs >= 2 "
            "operator groups)"
        ),
    )
    fleet.add_argument(
        "--batch-size",
        type=int,
        default=32,
        help="target solve width, filled across streams per operator group",
    )
    fleet.add_argument(
        "--fleet-workers",
        type=int,
        default=None,
        help=(
            "shard the decode across this many processes: whole operator "
            "groups when there are >= 2, batch-aligned column slices "
            "within the group when the fleet shares one matrix. Falls "
            "back to a single process — with a warning naming the "
            "reason — when omitted/0/1, when the only group's windows "
            "fit a single batch, or when the platform cannot start a "
            "multiprocessing pool"
        ),
    )
    fleet.add_argument(
        "--precision",
        choices=("float64", "float32", "hybrid"),
        default="float64",
        help=(
            "decode backend: float64 (reference), float32, or hybrid — "
            "float32 FISTA with a sparse scatter/gather residual gate "
            "and per-column float64 polish when a window leaves the "
            "fig-6 PRD corridor"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the live ingestion gateway: accept node connections "
            "over TCP and decode their packet streams in real time"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="listen address"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=9765,
        help="TCP port to listen on (0 = OS-assigned)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=16,
        help=(
            "target solve width; batches fill across all connected "
            "streams sharing one sensing operator"
        ),
    )
    serve.add_argument(
        "--flush-ms",
        type=float,
        default=250.0,
        help=(
            "flush-on-idle deadline: a pending window decodes at most "
            "this many ms after arrival even if the batch is not full"
        ),
    )
    serve.add_argument(
        "--fleet-workers",
        type=int,
        default=None,
        help=(
            "decode flushed batches on this many worker processes "
            "(>= 2 shards within an operator group; default/0/1: "
            "solve in-process on a thread)"
        ),
    )
    serve.add_argument(
        "--simulate",
        type=int,
        default=0,
        metavar="N",
        help=(
            "demo/bench mode: spawn N simulated node clients over TCP "
            "against this gateway, print their latency table, and exit "
            "(0 = serve until interrupted)"
        ),
    )
    serve.add_argument(
        "--packets",
        type=int,
        default=6,
        help="windows each simulated node streams (with --simulate)",
    )
    serve.add_argument(
        "--cr", type=float, default=50.0, help="nominal CR of simulated nodes"
    )
    serve.add_argument(
        "--precision",
        choices=("float64", "float32", "hybrid"),
        default="float64",
        help=(
            "decode backend simulated nodes request in their handshake "
            "(with --simulate): float64, float32, or the hybrid "
            "float32-fast/float64-polish path"
        ),
    )
    serve.add_argument(
        "--interval-ms",
        type=float,
        default=100.0,
        help=(
            "pacing between a simulated node's packets, in ms "
            "(0 = as fast as the link accepts; the true node rate is "
            "one packet per 2000 ms)"
        ),
    )
    federation = serve.add_argument_group(
        "multi-gateway federation",
        description=(
            "scale the ingest tier across gateway worker processes: a "
            "consistent-hash front door routes each node link by its "
            "operator key, so every operator group's shared sensing "
            "precompute and cross-stream batching stay on one gateway; "
            "a dead gateway's ring segment (and only that segment) is "
            "remapped to the survivors"
        ),
    )
    federation.add_argument(
        "--gateways",
        type=int,
        default=1,
        help=(
            "gateway worker processes behind the consistent-hash "
            "front door (1 = single in-process gateway, the exact "
            "pre-federation code path)"
        ),
    )
    federation.add_argument(
        "--groups",
        type=int,
        default=1,
        help=(
            "distinct operator groups the simulated nodes spread "
            "across (with --simulate): nodes of one group share a "
            "sensing seed, so their windows pool into shared batches "
            "on whichever gateway the ring places the group"
        ),
    )
    telemetry = serve.add_argument_group(
        "telemetry and adaptive batching",
        description=(
            "the gateway publishes every counter/latency through the "
            "unified telemetry plane (repro.telemetry); these flags "
            "turn on its persistent sinks and the AIMD batch "
            "controller that steers the flush operating point against "
            "the 2 s real-time budget"
        ),
    )
    telemetry.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "adapt the effective batch width and flush deadline to "
            "load (AIMD: widen under backlog with latency headroom, "
            "shed multiplicatively when the 2 s budget is threatened); "
            "at steady state the controller holds the configured "
            "--batch-size/--flush-ms point exactly"
        ),
    )
    telemetry.add_argument(
        "--metrics-file",
        default=None,
        metavar="PATH",
        help=(
            "append telemetry snapshots to this bounded JSONL ring "
            "file (compacts itself; replay restores the newest "
            "snapshot after a crash)"
        ),
    )
    telemetry.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve the Prometheus text exposition on this HTTP port "
            "(0 = OS-assigned; any GET answers with the current "
            "registry)"
        ),
    )
    telemetry.add_argument(
        "--metrics-interval",
        type=float,
        default=5.0,
        help="seconds between ring-file snapshot appends",
    )
    channel = serve.add_argument_group(
        "lossy channel simulation (with --simulate)",
        description=(
            "impair each simulated node's radio link at the given "
            "per-frame probabilities; the gateway recovers via "
            "keyframe resync and accounts every damaged window "
            "(lost/resynced/corrupt/dup columns in the table)"
        ),
    )
    channel.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="probability a PACKET frame is dropped",
    )
    channel.add_argument(
        "--reorder",
        type=float,
        default=0.0,
        help="probability a PACKET frame is delivered late (reordered)",
    )
    channel.add_argument(
        "--dup",
        type=float,
        default=0.0,
        help="probability a PACKET frame is delivered twice",
    )
    channel.add_argument(
        "--corrupt",
        type=float,
        default=0.0,
        help="probability one payload bit is flipped (CRC-detectable)",
    )
    channel.add_argument(
        "--channel-seed",
        type=int,
        default=2011,
        help="seed of the impairment RNG (per-node offsets applied)",
    )
    channel.add_argument(
        "--fec",
        action="store_true",
        help=(
            "enable two-tier recovery: nodes emit one XOR parity "
            "frame per keyframe epoch (single-loss repair, zero "
            "round trips) and answer gateway NACKs with "
            "retransmissions for multi-loss epochs"
        ),
    )
    channel.add_argument(
        "--nack-budget",
        type=int,
        default=8,
        help=(
            "per-stream cap on NACKed sequences before the gateway "
            "falls back to keyframe resync (with --fec)"
        ),
    )

    fig8 = sub.add_parser("fig8", help="simulate the real-time pipeline")
    fig8.add_argument("--cr", type=float, default=50.0)
    fig8.add_argument("--packets", type=int, default=10)
    fig8.add_argument("--duration", type=float, default=120.0)

    sub.add_parser("budget", help="node-side timing/memory/energy table")
    sub.add_parser("simd", help="Figures 3-5 SIMD ablation tables")
    sub.add_parser("records", help="list the synthetic corpus")

    lint = sub.add_parser(
        "lint",
        help="static invariant checks (repro-lint, rules RL001-RL010)",
        description=(
            "Run repro-lint over the source tree.  All arguments are "
            "forwarded to python -m repro.analysis; see "
            "'repro-ecg lint -- --help' for its options."
        ),
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        metavar="...",
        help="arguments forwarded to python -m repro.analysis",
    )
    return parser


def _cmd_quickstart(args: argparse.Namespace) -> int:
    config = SystemConfig().with_target_cr(args.cr)
    database = SyntheticMitBih(duration_s=args.duration)
    record = database.load(args.record)
    system = EcgMonitorSystem(config)
    system.calibrate(record)
    stream = system.stream(
        record, max_packets=args.packets, batch_size=args.batch_size
    )
    engine = (
        f"batched x{args.batch_size}"
        if args.batch_size is not None and args.batch_size > 1
        else "serial"
    )
    row = {
        "record": args.record,
        "rhythm": record.rhythm,
        "engine": engine,
        "packets": stream.num_packets,
        "measured_cr": stream.compression_ratio_percent,
        "prd_percent": stream.mean_prd_percent,
        "snr_db": stream.mean_snr_db,
        "iterations": stream.mean_iterations,
        "decode_ms": 1000.0 * stream.mean_decode_seconds,
    }
    print(render_table([row], title=f"quickstart @ nominal CR {args.cr:.0f} %"))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import time

    from .fleet import FleetDecoder, StreamTask

    from .errors import ConfigurationError

    if args.streams < 1:
        print("--streams must be >= 1", file=sys.stderr)
        return 2
    if args.packets < 1:
        print("--packets must be >= 1", file=sys.stderr)
        return 2
    if args.groups < 1:
        print("--groups must be >= 1", file=sys.stderr)
        return 2
    try:
        decoder = FleetDecoder(
            batch_size=args.batch_size, workers=args.fleet_workers
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    base = SystemConfig().with_target_cr(args.cr)
    database = SyntheticMitBih(duration_s=args.duration)
    names = [
        list(RECORD_NAMES)[i % len(RECORD_NAMES)] for i in range(args.streams)
    ]
    # --groups 1: every node ships the paper's shared fixed matrix ->
    # one operator group, the scheduler pools all streams into joint
    # solves; --groups >= 2 spreads seeds so workers have groups to
    # shard across
    tasks = []
    for index, name in enumerate(names):
        record = database.load(name)
        system = EcgMonitorSystem(
            base.replace(seed=base.seed + index % args.groups),
            precision=args.precision,
        )
        system.calibrate(record)
        tasks.append(
            StreamTask(system=system, record=record, max_packets=args.packets)
        )

    started = time.perf_counter()
    results = decoder.run(tasks)
    elapsed = time.perf_counter() - started

    rows = [
        {
            "stream": index,
            "record": name,
            "packets": result.num_packets,
            "measured_cr": result.compression_ratio_percent,
            "prd_percent": result.mean_prd_percent,
            "iterations": result.mean_iterations,
            "decode_ms": 1000.0 * result.mean_decode_seconds,
        }
        for index, (name, result) in enumerate(zip(names, results))
    ]
    # report what actually ran: the engine owns the fallback decision
    # (and warns with the reason when a workers>=2 request fell back)
    groups = decoder.last_num_groups
    mode = (
        f"{decoder.last_effective_workers} workers "
        f"({decoder.last_shard_mode})"
        if decoder.last_effective_workers > 1
        else "single process"
    )
    total_windows = sum(r.num_packets for r in results)
    print(
        render_result_table(
            rows,
            title=(
                f"fleet decode: {args.streams} streams, {groups} operator "
                f"group(s), batch {args.batch_size}, {mode}"
            ),
        )
    )
    print(
        f"decoded {total_windows} windows in {elapsed:.3f} s "
        f"({total_windows / elapsed:.1f} windows/s)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import dataclasses

    from .errors import ConfigurationError
    from .ingest import (
        FederationFrontDoor,
        IngestGateway,
        LossyChannel,
        NodeClient,
    )
    from .telemetry import JsonlRingSink, MetricsRegistry, MetricsServer

    if args.simulate < 0:
        print("--simulate must be >= 0", file=sys.stderr)
        return 2
    if args.simulate and args.packets < 1:
        print("--packets must be >= 1", file=sys.stderr)
        return 2
    if args.metrics_interval <= 0:
        print("--metrics-interval must be positive", file=sys.stderr)
        return 2
    if args.gateways < 1:
        print("--gateways must be >= 1", file=sys.stderr)
        return 2
    if args.groups < 1:
        print("--groups must be >= 1", file=sys.stderr)
        return 2
    if args.groups > 1 and not args.simulate:
        print(
            "--groups spreads the *simulated* nodes across operator "
            "groups and needs --simulate N",
            file=sys.stderr,
        )
        return 2
    registry = MetricsRegistry()
    try:
        if args.gateways > 1:
            # N-process scale-out: the front door owns the public port
            # and routes each node link by operator key to one of N
            # supervised gateway worker processes
            gateway = FederationFrontDoor(
                gateways=args.gateways,
                batch_size=args.batch_size,
                flush_ms=args.flush_ms,
                workers_per_gateway=args.fleet_workers or 1,
                telemetry=registry,
                adaptive=args.adaptive,
                nack_budget=args.nack_budget,
            )
        else:
            gateway = IngestGateway(
                batch_size=args.batch_size,
                flush_ms=args.flush_ms,
                workers=args.fleet_workers,
                telemetry=registry,
                adaptive=args.adaptive,
                nack_budget=args.nack_budget,
            )
        # validates the --loss/--reorder/--dup/--corrupt probabilities
        channel_template = LossyChannel(
            loss=args.loss,
            reorder=args.reorder,
            duplicate=args.dup,
            corrupt=args.corrupt,
            seed=args.channel_seed,
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if channel_template.impairs and not args.simulate:
        print(
            "--loss/--reorder/--dup/--corrupt impair the *simulated* "
            "node links and need --simulate N; a plain serve would "
            "silently ignore them",
            file=sys.stderr,
        )
        return 2
    ring = (
        JsonlRingSink(args.metrics_file)
        if args.metrics_file is not None
        else None
    )

    async def _open_sinks() -> tuple[MetricsServer | None, asyncio.Task | None]:
        """Start the scrape endpoint and the periodic ring appender."""
        server = None
        if args.metrics_port is not None:
            server = MetricsServer(registry)
            port = await server.start(args.host, args.metrics_port)
            print(f"metrics exposition on http://{args.host}:{port}/metrics")
        appender = None
        if ring is not None:

            async def _append_loop() -> None:
                loop = asyncio.get_running_loop()
                while True:
                    await asyncio.sleep(args.metrics_interval)
                    # snapshot on the loop (cheap, lock-guarded), but
                    # write — and possibly compact — off it: file I/O
                    # must not stall frame reads or flush deadlines
                    snapshot = registry.snapshot()
                    await loop.run_in_executor(None, ring.append, snapshot)

            appender = asyncio.create_task(_append_loop())
            print(f"metrics ring file: {ring.path}")
        return server, appender

    async def _close_sinks(server, appender) -> None:
        if appender is not None:
            appender.cancel()
            try:
                await appender
            except asyncio.CancelledError:
                pass
        if ring is not None:
            ring.append(registry.snapshot())  # final state survives exit
        if server is not None:
            await server.close()

    async def _serve_forever() -> int:
        port = await gateway.start(args.host, args.port)
        server, appender = await _open_sinks()
        if args.gateways > 1:
            mode = f"{args.gateways}-gateway federation"
        else:
            workers = gateway.workers
            mode = (
                f"{workers} worker processes" if workers > 1 else "in-process"
            )
        batching = "adaptive batching" if args.adaptive else "fixed batching"
        print(
            f"ingest gateway listening on {args.host}:{port} "
            f"(batch {args.batch_size}, flush {args.flush_ms:.0f} ms, "
            f"{batching}, {mode} decode); Ctrl-C to stop"
        )
        try:
            await asyncio.Event().wait()
        finally:
            await gateway.close()
            await _close_sinks(server, appender)
        return 0

    async def _simulate() -> int:
        port = await gateway.start(args.host, args.port)
        server, appender = await _open_sinks()
        base = SystemConfig().with_target_cr(args.cr)
        duration = args.packets * base.packet_seconds + 4.0
        database = SyntheticMitBih(duration_s=duration)
        clients = []
        if args.simulate > len(RECORD_NAMES):
            # stream identity is record:channel — once the corpus
            # wraps, two concurrent nodes share an identity and the
            # per-stream telemetry/merged views aggregate them as one
            print(
                f"note: {args.simulate} nodes over a {len(RECORD_NAMES)}"
                f"-record corpus: stream identities repeat, so "
                f"per-stream telemetry merges the nodes sharing a "
                f"record (per-session rows stay exact)",
                file=sys.stderr,
            )
        # by default every simulated node ships the paper's shared
        # fixed matrix -> one operator group, batches fill across all
        # of them; --groups K rotates the sensing seed so the nodes
        # split into K operator groups (and, with --gateways, the ring
        # spreads those groups across the federation)
        for index in range(args.simulate):
            record = database.load(
                list(RECORD_NAMES)[index % len(RECORD_NAMES)]
            )
            config = base
            if args.groups > 1:
                config = dataclasses.replace(
                    base, seed=base.seed + (index % args.groups)
                )
            system = EcgMonitorSystem(config, precision=args.precision)
            system.calibrate(record)
            lossy = None
            if channel_template.impairs:
                # distinct per-node seeds so the nodes' impairment
                # patterns decorrelate, deterministically
                lossy = dataclasses.replace(
                    channel_template, seed=args.channel_seed + index
                )
            clients.append(
                NodeClient(
                    system,
                    record,
                    max_packets=args.packets,
                    interval_s=args.interval_ms / 1000.0,
                    lossy_channel=lossy,
                    telemetry=registry,
                    fec=args.fec,
                )
            )
        try:
            outcomes = await asyncio.gather(
                *[client.run_tcp(args.host, port) for client in clients],
                return_exceptions=True,
            )
        finally:
            await gateway.close()
            await _close_sinks(server, appender)
        failures = [o for o in outcomes if isinstance(o, BaseException)]
        for failure in failures:
            print(f"node client failed: {failure}", file=sys.stderr)
        reports = [o for o in outcomes if not isinstance(o, BaseException)]
        if not reports:
            return 1
        # damage columns come from the gateway's per-stream results
        # (authoritative: the node-side ack view misses damage after
        # the last DECODED ack, e.g. a BYE-declared tail gap).  The
        # WELCOME-assigned stream id pairs them exactly, even when
        # several nodes stream the same record.
        results_by_session = {
            result.session_id: result for result in gateway.results
        }
        rows = []
        for index, report in enumerate(reports):
            result = results_by_session.get(report.stream_id, report)
            rows.append(
                {
                    "stream": index,
                    "record": report.record,
                    "sent": report.sent,
                    "decoded": report.acked,
                    "lost": result.windows_lost,
                    "recovered": getattr(result, "windows_recovered", 0),
                    "resynced": result.windows_resynced,
                    "corrupt": result.frames_corrupt,
                    "dup": result.frames_duplicate,
                    # None (no window ever decoded) renders as n/a via
                    # the shared table helper — never as a perfect 0.0
                    "max_latency_ms": report.max_gateway_latency_ms,
                    "mean_iters": (
                        sum(report.iterations)
                        / max(len(report.iterations), 1)
                    ),
                }
            )
        stats = gateway.stats
        title = (
            f"live gateway: {args.simulate} nodes over TCP, "
            f"batch {args.batch_size}, flush {args.flush_ms:.0f} ms"
        )
        if args.adaptive:
            title += ", adaptive"
        if args.gateways > 1:
            title += f", {args.gateways}-gateway federation"
        if args.groups > 1:
            title += f", {args.groups} operator groups"
        if channel_template.impairs:
            title += (
                f", channel loss={args.loss:g} reorder={args.reorder:g} "
                f"dup={args.dup:g} corrupt={args.corrupt:g}"
            )
        if args.fec:
            title += f", fec on (nack budget {args.nack_budget})"
        print(render_result_table(rows, title=title))
        print(
            f"{stats.windows_decoded} windows in {stats.batches} pooled "
            f"batches ({stats.cross_stream_batches} spanning streams; "
            f"flushes: {stats.flushes_full} full, "
            f"{stats.flushes_deadline} deadline, "
            f"{stats.flushes_drain} drain, "
            f"{stats.flushes_pressure} pressure)"
        )
        print(
            f"channel damage: {stats.windows_lost} windows lost, "
            f"{stats.windows_resynced} resynced, "
            f"{stats.frames_corrupt} corrupt frames, "
            f"{stats.frames_duplicate} duplicate/stale frames dropped"
        )
        if args.fec:
            recovered = (
                stats.windows_recovered_parity
                + stats.windows_recovered_retransmit
            )
            print(
                f"recovery: {recovered} windows recovered "
                f"({stats.windows_recovered_parity} parity, "
                f"{stats.windows_recovered_retransmit} retransmit), "
                f"{stats.nacks_sent} sequences NACKed, "
                f"{stats.frames_late_retransmit} late retransmits dropped"
            )
        if args.gateways > 1:
            fed = gateway.federation_stats()
            per_gateway = ", ".join(
                f"{gid}: {count}"
                for gid, count in sorted(fed.streams_by_gateway.items())
            )
            print(
                f"federation: {fed.streams_routed} stream(s) routed "
                f"across {fed.gateways} gateways ({per_gateway}); "
                f"{fed.reroutes} reroute(s)"
            )
        if args.adaptive:
            # federation workers run their controllers in-process; the
            # front door has none to summarise
            controller = getattr(gateway, "controller", None)
            if controller is not None:
                print(
                    f"adaptive controller: effective batch "
                    f"{controller.effective_batch} (base {args.batch_size}), "
                    f"flush {1000 * controller.effective_flush_s:.0f} ms, "
                    f"{controller.widen_count} widen(s), "
                    f"{controller.shed_count} shed(s)"
                )
        if failures or any(report.error for report in reports):
            return 1
        return 0

    try:
        return asyncio.run(_simulate() if args.simulate else _serve_forever())
    except KeyboardInterrupt:
        print("gateway stopped")
        return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    database = SyntheticMitBih(duration_s=args.duration)
    records = database.subset(args.records)
    driver = {"fig2": run_fig2, "fig6": run_fig6, "fig7": run_fig7}[args.figure]
    rows = driver(
        records=records,
        packets_per_record=args.packets,
        database=database,
    )
    print(render_table(rows, title=f"{args.figure} series"))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    database = SyntheticMitBih(duration_s=max(args.duration / 4.0, 24.0))
    report, summary = run_fig8(
        nominal_cr=args.cr,
        packets=args.packets,
        duration_s=args.duration,
        database=database,
    )
    print(render_table([summary], title="figure 8: real-time claims"))
    print(
        render_table(
            [
                {
                    "buffer_min_s": report.buffer_min_s,
                    "buffer_max_s": report.buffer_max_s,
                    "latency_s": report.mean_end_to_end_latency_s,
                }
            ],
            title="pipeline detail",
        )
    )
    return 0


def _cmd_budget(_: argparse.Namespace) -> int:
    budget = run_encoder_budget()
    headline = {
        "sensing_ms": budget["sensing_time_ms"],
        "encode_ms": budget["encode_time_ms"],
        "node_cpu_percent": budget["node_cpu_percent"],
        "ram_bytes": budget["ram_bytes"],
        "flash_bytes": budget["flash_bytes"],
    }
    print(render_table([headline], title="node budget"))
    print(render_table(budget["approaches"], title="sensing approaches"))
    print(render_table(budget["lifetime"], title="lifetime extension vs CR"))
    return 0


def _cmd_simd(_: argparse.Namespace) -> int:
    ablation = run_simd_ablation()
    print(render_table(ablation["fig3"], title="figure 3: leftover strategies"))
    print(render_table([ablation["fig4"]], title="figure 4: if-conversion"))
    print(render_table(ablation["fig5"], title="figure 5: loop nests"))
    print(render_table(ablation["iteration_kernels"], title="per-kernel cycles"))
    summary = {
        "speedup": ablation["speedup_at_1000_iters"],
        "cap_scalar": ablation["max_iterations_scalar"],
        "cap_neon": ablation["max_iterations_neon"],
    }
    print(render_table([summary], title="section V"))
    return 0


def _cmd_records(_: argparse.Namespace) -> int:
    database = SyntheticMitBih(duration_s=10.0)
    rows = []
    for name in RECORD_NAMES:
        record = database.load(name)
        rows.append(
            {
                "record": name,
                "rhythm": record.rhythm,
                "beats": len(record.annotations),
                "channels": record.num_channels,
            }
        )
    print(render_table(rows, title="synthetic MIT-BIH-like corpus (48 records)"))
    return 0


def _cmd_lint(forwarded: list[str]) -> int:
    from .analysis.runner import main as lint_main

    if forwarded[:1] == ["--"]:
        forwarded = forwarded[1:]
    return lint_main(forwarded)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw[:1] == ["lint"]:
        # forwarded verbatim: argparse's REMAINDER mis-parses leading
        # optionals (bpo-17050), so lint options never cross the
        # repro-ecg parser
        return _cmd_lint(raw[1:])
    args = _build_parser().parse_args(raw)
    handlers = {
        "quickstart": _cmd_quickstart,
        "fleet": _cmd_fleet,
        "serve": _cmd_serve,
        "sweep": _cmd_sweep,
        "fig8": _cmd_fig8,
        "budget": _cmd_budget,
        "simd": _cmd_simd,
        "records": _cmd_records,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
