"""Lossless-coding substrate: bitstreams, Huffman coding, redundancy removal.

This package implements the third encoder stage of the paper (entropy
coding with an offline-generated, length-limited Huffman codebook of 512
symbols and at most 16-bit codewords) together with the "redundancy
removal" stage that differences consecutive measurement vectors.
"""

from .bitstream import BitReader, BitWriter
from .huffman import HuffmanCode, huffman_code_lengths
from .length_limited import package_merge_lengths
from .codebook import Codebook, train_codebook, laplacian_frequencies
from .redundancy import DifferentialCodec
from .rice import RiceCoder, optimal_rice_parameter, zigzag_decode, zigzag_encode

# imported last: fec reaches into repro.core for the on-air packet
# layout, and repro.core's encoder imports back into this package —
# everything it needs is bound above, so the cycle resolves here
from .fec import (
    covered_sequences,
    decode_parity_body,
    encode_parity_body,
    recover_body,
    xor_fold,
)

__all__ = [
    "covered_sequences",
    "decode_parity_body",
    "encode_parity_body",
    "recover_body",
    "xor_fold",
    "RiceCoder",
    "optimal_rice_parameter",
    "zigzag_decode",
    "zigzag_encode",
    "BitReader",
    "BitWriter",
    "HuffmanCode",
    "huffman_code_lengths",
    "package_merge_lengths",
    "Codebook",
    "train_codebook",
    "laplacian_frequencies",
    "DifferentialCodec",
]
