"""Lossless-coding substrate: bitstreams, Huffman coding, redundancy removal.

This package implements the third encoder stage of the paper (entropy
coding with an offline-generated, length-limited Huffman codebook of 512
symbols and at most 16-bit codewords) together with the "redundancy
removal" stage that differences consecutive measurement vectors.
"""

from .bitstream import BitReader, BitWriter
from .huffman import HuffmanCode, huffman_code_lengths
from .length_limited import package_merge_lengths
from .codebook import Codebook, train_codebook, laplacian_frequencies
from .redundancy import DifferentialCodec
from .rice import RiceCoder, optimal_rice_parameter, zigzag_decode, zigzag_encode

__all__ = [
    "RiceCoder",
    "optimal_rice_parameter",
    "zigzag_decode",
    "zigzag_encode",
    "BitReader",
    "BitWriter",
    "HuffmanCode",
    "huffman_code_lengths",
    "package_merge_lengths",
    "Codebook",
    "train_codebook",
    "laplacian_frequencies",
    "DifferentialCodec",
]
