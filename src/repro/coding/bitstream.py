"""MSB-first bit-level I/O.

The encoder firmware writes variable-length Huffman codewords into a byte
buffer most-significant-bit first, which is the natural layout on a
big-endian bit order wire format and matches how the reference C
implementation packs codewords.  :class:`BitWriter` and :class:`BitReader`
implement that layout exactly; a payload written by one is read back
bit-for-bit by the other.
"""

from __future__ import annotations

from ..errors import BitstreamError


class BitWriter:
    """Accumulate bits MSB-first into a growing byte buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_position = 0  # bits already used in the last byte (0..7)

    def __len__(self) -> int:
        """Total number of bits written so far."""
        if self._bit_position == 0:
            return 8 * len(self._bytes)
        return 8 * (len(self._bytes) - 1) + self._bit_position

    @property
    def bit_length(self) -> int:
        """Alias of ``len(self)`` for readability at call sites."""
        return len(self)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise BitstreamError(f"bit must be 0 or 1, got {bit!r}")
        if self._bit_position == 0:
            self._bytes.append(0)
        if bit:
            self._bytes[-1] |= 0x80 >> self._bit_position
        self._bit_position = (self._bit_position + 1) & 7

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant bit first."""
        if width < 0:
            raise BitstreamError(f"width must be >= 0, got {width}")
        if width == 0:
            return
        if value < 0 or value >= (1 << width):
            raise BitstreamError(
                f"value {value} does not fit in {width} unsigned bits"
            )
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_signed(self, value: int, width: int) -> None:
        """Append a two's-complement signed integer of the given width."""
        if width < 1:
            raise BitstreamError(f"signed width must be >= 1, got {width}")
        low = -(1 << (width - 1))
        high = (1 << (width - 1)) - 1
        if not low <= value <= high:
            raise BitstreamError(
                f"value {value} does not fit in {width} signed bits"
            )
        self.write_bits(value & ((1 << width) - 1), width)

    def write_unary(self, value: int) -> None:
        """Append ``value`` ones followed by a terminating zero."""
        if value < 0:
            raise BitstreamError(f"unary value must be >= 0, got {value}")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def align_to_byte(self) -> None:
        """Pad with zero bits up to the next byte boundary."""
        while self._bit_position != 0:
            self.write_bit(0)

    def getvalue(self) -> bytes:
        """Return the buffer contents, zero-padded to a whole byte."""
        return bytes(self._bytes)


class BitReader:
    """Consume bits MSB-first from a byte buffer produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = bytes(data)
        max_bits = 8 * len(self._data)
        if bit_length is None:
            bit_length = max_bits
        if not 0 <= bit_length <= max_bits:
            raise BitstreamError(
                f"bit_length {bit_length} outside [0, {max_bits}]"
            )
        self._bit_length = bit_length
        self._position = 0

    @property
    def position(self) -> int:
        """Number of bits consumed so far."""
        return self._position

    @property
    def remaining(self) -> int:
        """Number of bits still available."""
        return self._bit_length - self._position

    def read_bit(self) -> int:
        """Read and return the next bit."""
        if self._position >= self._bit_length:
            raise BitstreamError("read past end of bitstream")
        byte = self._data[self._position >> 3]
        bit = (byte >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first)."""
        if width < 0:
            raise BitstreamError(f"width must be >= 0, got {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_signed(self, width: int) -> int:
        """Read a two's-complement signed integer of the given width."""
        if width < 1:
            raise BitstreamError(f"signed width must be >= 1, got {width}")
        raw = self.read_bits(width)
        sign_bit = 1 << (width - 1)
        if raw & sign_bit:
            raw -= 1 << width
        return raw

    def read_unary(self) -> int:
        """Read a unary-coded value (count of ones before the first zero)."""
        count = 0
        while self.read_bit() == 1:
            count += 1
        return count

    def align_to_byte(self) -> None:
        """Skip forward to the next byte boundary."""
        offset = self._position & 7
        if offset:
            skip = 8 - offset
            if skip > self.remaining:
                raise BitstreamError("cannot align: past end of bitstream")
            self._position += skip
