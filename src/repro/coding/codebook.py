"""Offline Huffman codebook: training, storage model, serialization.

The paper trains a single Huffman codebook offline over the difference
signal (range ``[-256, 255]``, 512 symbols, codewords capped at 16 bits)
and stores it in the mote's flash: "1 kB for the codebook itself and
512 B for its corresponding codeword lengths".  That is exactly a table of
512 16-bit codewords (1024 B) plus 512 8-bit lengths (512 B);
:meth:`Codebook.flash_bytes` reproduces this accounting.

Because real firmware must code *any* symbol in range (not only those
seen during training), training adds a +1 Laplace floor to every symbol
frequency so the codebook is complete.
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..config import DIFF_MAX, DIFF_MIN, HUFFMAN_MAX_CODE_BITS
from ..errors import CodebookError
from .huffman import HuffmanCode
from .length_limited import package_merge_lengths


@dataclass(frozen=True)
class Codebook:
    """A trained, length-limited canonical Huffman codebook.

    Symbols are difference values shifted to ``0 .. num_symbols-1``:
    symbol ``s`` encodes difference value ``s + offset``.
    """

    code: HuffmanCode
    offset: int

    @property
    def num_symbols(self) -> int:
        """Alphabet size (512 for the paper's difference signal)."""
        return self.code.num_symbols

    @property
    def min_value(self) -> int:
        """Smallest encodable difference value."""
        return self.offset

    @property
    def max_value(self) -> int:
        """Largest encodable difference value."""
        return self.offset + self.num_symbols - 1

    def symbol_for(self, value: int) -> int:
        """Map a difference value to its symbol index."""
        symbol = int(value) - self.offset
        if not 0 <= symbol < self.num_symbols:
            raise CodebookError(
                f"value {value} outside codebook range "
                f"[{self.min_value}, {self.max_value}]"
            )
        return symbol

    def value_for(self, symbol: int) -> int:
        """Map a symbol index back to its difference value."""
        if not 0 <= symbol < self.num_symbols:
            raise CodebookError(f"symbol {symbol} outside alphabet")
        return symbol + self.offset

    # ------------------------------------------------------------------
    # Firmware storage model
    # ------------------------------------------------------------------
    def flash_bytes(self) -> dict[str, int]:
        """Flash footprint of the stored codebook, byte-accurate.

        Matches the paper's accounting: 16-bit codewords (2 B/symbol)
        plus 8-bit lengths (1 B/symbol) — 1 kB + 512 B for 512 symbols.
        """
        return {
            "codeword_table": 2 * self.num_symbols,
            "length_table": self.num_symbols,
            "total": 3 * self.num_symbols,
        }

    def mean_bits_per_symbol(self, frequencies: Sequence[int]) -> float:
        """Average codeword length under the given symbol frequencies."""
        total_freq = sum(frequencies)
        if total_freq <= 0:
            raise CodebookError("frequencies must sum to a positive value")
        return self.code.expected_bits(frequencies) / total_freq

    # ------------------------------------------------------------------
    # Serialization (lengths only: canonical codes rebuild the codewords)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize as JSON (offset + canonical length table)."""
        return json.dumps({"offset": self.offset, "lengths": self.code.lengths})

    @classmethod
    def from_json(cls, payload: str) -> "Codebook":
        """Rebuild a codebook from :meth:`to_json` output."""
        try:
            data = json.loads(payload)
            offset = int(data["offset"])
            lengths = [int(x) for x in data["lengths"]]
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise CodebookError(f"malformed codebook payload: {exc}") from exc
        return cls(code=HuffmanCode(lengths), offset=offset)


def laplacian_frequencies(
    num_symbols: int = DIFF_MAX - DIFF_MIN + 1,
    scale: float = 12.0,
    total: int = 1_000_000,
) -> list[int]:
    """Synthetic Laplacian frequency profile for difference signals.

    Inter-packet measurement differences are well modeled as zero-mean
    Laplacian; this profile seeds a default codebook when no training
    corpus is available (e.g. cold start on a new device).
    """
    if num_symbols < 2:
        raise CodebookError(f"num_symbols must be >= 2, got {num_symbols}")
    if scale <= 0:
        raise CodebookError(f"scale must be positive, got {scale}")
    offset = -(num_symbols // 2)
    values = np.arange(offset, offset + num_symbols)
    weights = np.exp(-np.abs(values) / scale)
    weights /= weights.sum()
    frequencies = np.maximum(1, np.round(weights * total).astype(int))
    return [int(f) for f in frequencies]


def train_codebook(
    samples: Iterable[int] | None = None,
    offset: int = DIFF_MIN,
    num_symbols: int = DIFF_MAX - DIFF_MIN + 1,
    max_length: int = HUFFMAN_MAX_CODE_BITS,
    laplace_floor: int = 1,
) -> Codebook:
    """Train a complete, length-limited codebook over difference samples.

    Parameters
    ----------
    samples:
        Iterable of difference values in ``[offset, offset+num_symbols)``.
        ``None`` trains on the synthetic Laplacian profile instead.
    offset:
        Value encoded by symbol 0 (``-256`` in the paper).
    num_symbols:
        Alphabet size (512 in the paper).
    max_length:
        Codeword-length cap in bits (16 in the paper).
    laplace_floor:
        Added to every symbol count so all in-range values are encodable.
    """
    if laplace_floor < 0:
        raise CodebookError(f"laplace_floor must be >= 0, got {laplace_floor}")
    frequencies = [laplace_floor] * num_symbols
    if samples is None:
        base = laplacian_frequencies(num_symbols=num_symbols)
        frequencies = [f + b for f, b in zip(frequencies, base)]
    else:
        for value in samples:
            index = int(value) - offset
            if not 0 <= index < num_symbols:
                raise CodebookError(
                    f"training value {value} outside "
                    f"[{offset}, {offset + num_symbols - 1}]"
                )
            frequencies[index] += 1
    if all(f == 0 for f in frequencies):
        raise CodebookError(
            "no symbol has nonzero frequency; use laplace_floor >= 1"
        )
    lengths = package_merge_lengths(frequencies, max_length)
    return Codebook(code=HuffmanCode(lengths), offset=offset)


def empirical_entropy_bits(samples: Sequence[int]) -> float:
    """Empirical zeroth-order entropy of a symbol sequence, bits/symbol."""
    if len(samples) == 0:
        raise CodebookError("samples must be non-empty")
    values, counts = np.unique(np.asarray(samples), return_counts=True)
    del values
    probabilities = counts / counts.sum()
    return float(-np.sum(probabilities * np.log2(probabilities)))


def huffman_efficiency(
    codebook: Codebook, samples: Sequence[int]
) -> dict[str, float]:
    """Compare codebook mean length against the source entropy."""
    frequencies = [0] * codebook.num_symbols
    for value in samples:
        frequencies[codebook.symbol_for(int(value))] += 1
    mean_bits = codebook.mean_bits_per_symbol(frequencies)
    entropy = empirical_entropy_bits(list(samples))
    return {
        "mean_bits_per_symbol": mean_bits,
        "entropy_bits_per_symbol": entropy,
        "redundancy_bits": mean_bits - entropy,
        "efficiency": entropy / mean_bits if mean_bits > 0 else math.nan,
    }
