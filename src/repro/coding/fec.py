"""XOR-parity forward error correction over keyframe epochs.

The wire path's tier-1 recovery (see :mod:`repro.ingest.channel`): the
node emits one parity frame per keyframe epoch, XOR-folded over a
contiguous run of the epoch's on-air packet bodies padded to the
longest body (the node folds the epoch's *difference* packets —
folding the much larger keyframe would pad the parity to keyframe
width, and keyframes are pinned in the retransmit ring for tier 2
anyway).  Any *single* missing packet of the covered run can then be
reconstructed locally by the receiver — zero round trips, byte
overhead bounded by one body per ``keyframe_interval`` packets —
which matches the node's energy budget: the cheap redundancy rides
along every epoch, and the expensive path (NACK retransmission) is
reserved for the rare multi-loss epoch and for keyframes.

This module is pure byte math shared by the live gateway and the
offline :func:`~repro.ingest.channel.replay_survivors` reference; it
carries no protocol or asyncio state, so both sides provably run the
same reconstruction.

Parity frame body layout (the ``PARITY`` frame of
:mod:`repro.ingest.protocol`)::

    u16be base_sequence | u16be count | parity[max body length]

``base_sequence`` is the first covered packet sequence (the node uses
the epoch's first difference packet, keyframe sequence + 1)
and ``count`` the number of packet bodies folded in; the parity bytes
are the XOR of those bodies, each zero-padded to the longest.  Because
a recovered body is zero-padded the same way, its true length is
re-read from the recovered packet header (``nbits``) and the on-air
CRC-16 then validates the reconstruction end to end — a parity frame
damaged in flight can never smuggle a corrupt window past the CRC.
"""

from __future__ import annotations

from ..core.packets import CRC_BYTES, HEADER_BYTES
from ..errors import PacketFormatError

#: u16be base sequence + u16be covered-packet count
PARITY_HEADER_BYTES = 4

_SEQ_MOD = 1 << 16


def xor_fold(bodies: list[bytes]) -> bytes:
    """XOR of ``bodies``, each zero-padded to the longest one.

    Zero-padding commutes with XOR, so folding is associative and a
    receiver can fold bodies in any order (delivery order, sequence
    order) and land on the same parity bytes.
    """
    if not bodies:
        raise PacketFormatError("cannot fold parity over zero bodies")
    width = max(len(body) for body in bodies)
    folded = bytearray(width)
    for body in bodies:
        for index, byte in enumerate(body):
            folded[index] ^= byte
    return bytes(folded)


def encode_parity_body(base_sequence: int, bodies: list[bytes]) -> bytes:
    """Build one ``PARITY`` frame body covering an epoch's bodies.

    ``bodies`` must be consecutive packet bodies in sequence order
    starting at ``base_sequence``; a final partial epoch simply folds
    fewer bodies.
    """
    if not 0 <= base_sequence < _SEQ_MOD:
        raise PacketFormatError(
            f"parity base sequence out of range: {base_sequence}"
        )
    if not 0 < len(bodies) < _SEQ_MOD:
        raise PacketFormatError(
            f"parity must cover 1..65535 bodies, got {len(bodies)}"
        )
    return (
        base_sequence.to_bytes(2, "big")
        + len(bodies).to_bytes(2, "big")
        + xor_fold(bodies)
    )


def decode_parity_body(body: bytes) -> tuple[int, int, bytes]:
    """Parse a ``PARITY`` body into ``(base_sequence, count, parity)``."""
    if len(body) < PARITY_HEADER_BYTES:
        raise PacketFormatError(
            f"parity body too short: {len(body)} bytes"
        )
    base = int.from_bytes(body[0:2], "big")
    count = int.from_bytes(body[2:4], "big")
    if count < 1:
        raise PacketFormatError("parity body covers zero packets")
    return base, count, body[PARITY_HEADER_BYTES:]


def covered_sequences(base: int, count: int) -> list[int]:
    """The packet sequences one parity frame covers, in order (mod 2^16)."""
    return [(base + offset) % _SEQ_MOD for offset in range(count)]


def recover_body(parity: bytes, present: list[bytes]) -> bytes:
    """Reconstruct the single missing body of an epoch.

    XOR-folds the parity bytes with every *present* body of the epoch;
    what remains is the missing body zero-padded to the parity width.
    The true on-air length is re-read from the reconstructed packet
    header, and the caller must CRC-check the result (parse it with
    :meth:`~repro.core.packets.EncodedPacket.from_bytes`) before
    trusting it — a lost-then-reconstructed window is only accepted
    when the CRC proves the reconstruction exact.

    Raises :class:`~repro.errors.PacketFormatError` when the remainder
    cannot be a packet body (too short, or its declared length exceeds
    the parity width) — the receiver treats that as an unrecoverable
    epoch and falls through to NACK retransmission.
    """
    candidate = bytearray(xor_fold([parity, *present]))
    if len(candidate) < HEADER_BYTES + CRC_BYTES:
        raise PacketFormatError(
            f"recovered body too short: {len(candidate)} bytes"
        )
    payload_bits = int.from_bytes(candidate[6:10], "big")
    length = HEADER_BYTES + (payload_bits + 7) // 8 + CRC_BYTES
    if length > len(candidate):
        raise PacketFormatError(
            f"recovered body declares {length} bytes but parity holds "
            f"only {len(candidate)}"
        )
    if any(candidate[length:]):
        # the tail past the declared length must be pure padding: a
        # non-zero remainder means >= 2 bodies (or a damaged parity)
        # were folded together and the epoch is not single-loss
        raise PacketFormatError(
            "recovered body has non-zero padding: epoch is not a "
            "single-loss epoch"
        )
    return bytes(candidate[:length])


__all__ = [
    "PARITY_HEADER_BYTES",
    "covered_sequences",
    "decode_parity_body",
    "encode_parity_body",
    "recover_body",
    "xor_fold",
]
