"""Huffman coding with canonical codes.

The encoder firmware stores only codeword *lengths* plus a canonical
ordering (1 kB codebook + 512 B of lengths in the paper), not an explicit
tree, so this module is built around canonical Huffman codes:

- :func:`huffman_code_lengths` computes optimal (unbounded) codeword
  lengths from symbol frequencies with the classic two-queue algorithm;
- :class:`HuffmanCode` turns a length table into canonical codewords and
  provides encoding plus a table-driven decoder.

Length-*limited* codes (the paper caps codewords at 16 bits) are produced
by :mod:`repro.coding.length_limited` and consumed by the same
:class:`HuffmanCode` machinery.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence

from ..errors import CodebookError, DecodingError
from .bitstream import BitReader, BitWriter


def huffman_code_lengths(frequencies: Sequence[int]) -> list[int]:
    """Optimal prefix-code lengths for the given symbol frequencies.

    Zero-frequency symbols get length 0 (no codeword).  If only one
    symbol has nonzero frequency it is assigned a 1-bit codeword.
    """
    if not frequencies:
        raise CodebookError("frequencies must be non-empty")
    if any(f < 0 for f in frequencies):
        raise CodebookError("frequencies must be non-negative")

    active = [(freq, index) for index, freq in enumerate(frequencies) if freq > 0]
    lengths = [0] * len(frequencies)
    if not active:
        raise CodebookError("at least one symbol must have nonzero frequency")
    if len(active) == 1:
        lengths[active[0][1]] = 1
        return lengths

    # Classic heap-based Huffman: each heap entry carries the subtree's
    # total frequency, a tie-breaker, and the list of leaf symbols so we
    # can increment depths on merge.
    heap: list[tuple[int, int, list[int]]] = []
    for tie, (freq, index) in enumerate(active):
        heap.append((freq, tie, [index]))
    heapq.heapify(heap)
    tie = len(active)
    while len(heap) > 1:
        freq_a, _, leaves_a = heapq.heappop(heap)
        freq_b, _, leaves_b = heapq.heappop(heap)
        for leaf in leaves_a:
            lengths[leaf] += 1
        for leaf in leaves_b:
            lengths[leaf] += 1
        heapq.heappush(heap, (freq_a + freq_b, tie, leaves_a + leaves_b))
        tie += 1
    return lengths


def kraft_sum(lengths: Iterable[int]) -> float:
    """Kraft–McMillan sum ``sum(2^-l)`` over nonzero lengths."""
    return sum(2.0 ** -length for length in lengths if length > 0)


def canonical_codewords(lengths: Sequence[int]) -> list[int | None]:
    """Assign canonical codewords from a valid length table.

    Symbols are ordered by (length, symbol index); codewords are the
    standard canonical sequence.  Returns ``None`` for zero-length
    (absent) symbols.
    """
    used = [(length, symbol) for symbol, length in enumerate(lengths) if length > 0]
    if not used:
        raise CodebookError("length table has no coded symbols")
    total = kraft_sum(lengths)
    if total > 1.0 + 1e-12:
        raise CodebookError(f"length table violates Kraft inequality (sum={total})")

    used.sort()
    codewords: list[int | None] = [None] * len(lengths)
    code = 0
    previous_length = used[0][0]
    for length, symbol in used:
        code <<= length - previous_length
        previous_length = length
        if code >= (1 << length):
            raise CodebookError("canonical code overflow: invalid length table")
        codewords[symbol] = code
        code += 1
    return codewords


class HuffmanCode:
    """A canonical Huffman code over symbols ``0 .. num_symbols-1``.

    Decoding uses the canonical first-code/offset tables, the same
    structure a microcontroller would keep in flash: per length ``l`` the
    first canonical codeword and the index of its first symbol, plus the
    symbol permutation sorted by (length, symbol).
    """

    def __init__(self, lengths: Sequence[int]) -> None:
        self._lengths = [int(length) for length in lengths]
        if any(length < 0 for length in self._lengths):
            raise CodebookError("codeword lengths must be non-negative")
        self._codewords = canonical_codewords(self._lengths)
        self._max_length = max(self._lengths)

        # Canonical decoding tables.
        ordered = sorted(
            (length, symbol)
            for symbol, length in enumerate(self._lengths)
            if length > 0
        )
        self._symbols_by_rank = [symbol for _, symbol in ordered]
        self._first_code = [0] * (self._max_length + 2)
        self._first_rank = [0] * (self._max_length + 2)
        rank = 0
        code = 0
        for length in range(1, self._max_length + 1):
            code <<= 1
            self._first_code[length] = code
            self._first_rank[length] = rank
            count = sum(1 for l, _ in ordered if l == length)
            rank += count
            code += count
        self._first_code[self._max_length + 1] = code << 1
        self._first_rank[self._max_length + 1] = rank
        self._counts = [
            self._first_rank[length + 1] - self._first_rank[length]
            for length in range(self._max_length + 1)
        ]

    # ------------------------------------------------------------------
    @property
    def lengths(self) -> list[int]:
        """Codeword length per symbol (0 = symbol has no codeword)."""
        return list(self._lengths)

    @property
    def max_length(self) -> int:
        """Longest codeword length in bits."""
        return self._max_length

    @property
    def num_symbols(self) -> int:
        """Size of the symbol alphabet (including absent symbols)."""
        return len(self._lengths)

    def codeword(self, symbol: int) -> tuple[int, int]:
        """Return ``(code, length)`` for a symbol, or raise if absent."""
        if not 0 <= symbol < len(self._lengths):
            raise CodebookError(f"symbol {symbol} outside alphabet")
        code = self._codewords[symbol]
        if code is None:
            raise CodebookError(f"symbol {symbol} has no codeword")
        return code, self._lengths[symbol]

    # ------------------------------------------------------------------
    def encode_symbol(self, symbol: int, writer: BitWriter) -> None:
        """Append one symbol's codeword to ``writer``."""
        code, length = self.codeword(symbol)
        writer.write_bits(code, length)

    def encode(self, symbols: Iterable[int], writer: BitWriter | None = None) -> BitWriter:
        """Encode a symbol sequence; returns the (possibly new) writer."""
        if writer is None:
            writer = BitWriter()
        for symbol in symbols:
            self.encode_symbol(symbol, writer)
        return writer

    def decode_symbol(self, reader: BitReader) -> int:
        """Read one canonical codeword from ``reader``."""
        code = 0
        for length in range(1, self._max_length + 1):
            code = (code << 1) | reader.read_bit()
            count = self._counts[length]
            if count and code - self._first_code[length] < count:
                rank = self._first_rank[length] + (code - self._first_code[length])
                return self._symbols_by_rank[rank]
        raise DecodingError("invalid codeword in bitstream")

    def decode(self, reader: BitReader, count: int) -> list[int]:
        """Decode exactly ``count`` symbols."""
        if count < 0:
            raise DecodingError(f"count must be >= 0, got {count}")
        return [self.decode_symbol(reader) for _ in range(count)]

    # ------------------------------------------------------------------
    def expected_bits(self, frequencies: Sequence[int]) -> float:
        """Total bits to code a source with the given frequencies."""
        if len(frequencies) != len(self._lengths):
            raise CodebookError("frequency table size mismatch")
        total = 0.0
        for symbol, freq in enumerate(frequencies):
            if freq > 0:
                if self._lengths[symbol] == 0:
                    raise CodebookError(
                        f"symbol {symbol} occurs but has no codeword"
                    )
                total += freq * self._lengths[symbol]
        return total
