"""Length-limited prefix codes via the package-merge algorithm.

The paper's codebook covers 512 symbols with a **maximum codeword length
of 16 bits**.  Plain Huffman construction does not respect a length cap,
so we implement the package-merge algorithm (Larmore & Hirschberg, 1990),
which produces the optimal prefix code subject to ``length <= limit``.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import CodebookError


def package_merge_lengths(frequencies: Sequence[int], max_length: int) -> list[int]:
    """Optimal codeword lengths with ``length <= max_length`` for all symbols.

    Zero-frequency symbols receive length 0.  Raises
    :class:`~repro.errors.CodebookError` when the alphabet cannot be coded
    within ``max_length`` bits (i.e. more than ``2**max_length`` active
    symbols).
    """
    if max_length < 1:
        raise CodebookError(f"max_length must be >= 1, got {max_length}")
    if any(freq < 0 for freq in frequencies):
        raise CodebookError("frequencies must be non-negative")
    active = [
        (int(freq), index) for index, freq in enumerate(frequencies) if freq > 0
    ]
    if not active:
        raise CodebookError("at least one symbol must have nonzero frequency")

    lengths = [0] * len(frequencies)
    if len(active) == 1:
        lengths[active[0][1]] = 1
        return lengths
    if len(active) > (1 << max_length):
        raise CodebookError(
            f"{len(active)} symbols cannot be coded in <= {max_length} bits"
        )

    # Package-merge.  Items are (weight, {symbol: multiplicity}); at each
    # of the max_length levels we pair adjacent items into packages and
    # merge with the original leaves.  After the final level, taking the
    # first 2*(n-1) items gives each symbol's codeword length as its
    # total multiplicity across taken items.
    leaves = sorted(active)
    level: list[tuple[int, dict[int, int]]] = [
        (weight, {symbol: 1}) for weight, symbol in leaves
    ]
    for _ in range(max_length - 1):
        packages: list[tuple[int, dict[int, int]]] = []
        for i in range(0, len(level) - 1, 2):
            weight = level[i][0] + level[i + 1][0]
            counts: dict[int, int] = dict(level[i][1])
            for symbol, multiplicity in level[i + 1][1].items():
                counts[symbol] = counts.get(symbol, 0) + multiplicity
            packages.append((weight, counts))
        merged: list[tuple[int, dict[int, int]]] = []
        leaf_iter = iter(leaves)
        package_iter = iter(packages)
        next_leaf = next(leaf_iter, None)
        next_package = next(package_iter, None)
        while next_leaf is not None or next_package is not None:
            take_leaf = next_package is None or (
                next_leaf is not None and next_leaf[0] <= next_package[0]
            )
            if take_leaf:
                assert next_leaf is not None
                merged.append((next_leaf[0], {next_leaf[1]: 1}))
                next_leaf = next(leaf_iter, None)
            else:
                assert next_package is not None
                merged.append(next_package)
                next_package = next(package_iter, None)
        level = merged

    needed = 2 * (len(active) - 1)
    if len(level) < needed:
        raise CodebookError("package-merge failed: not enough packages")
    for _, counts in level[:needed]:
        for symbol, multiplicity in counts.items():
            lengths[symbol] += multiplicity

    if max(lengths) > max_length:
        raise CodebookError("package-merge produced an over-long codeword")
    return lengths
