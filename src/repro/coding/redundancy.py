"""Inter-packet redundancy removal (paper Section IV-A).

A fixed binary sensing matrix combined with the quasi-periodic ECG yields
very similar consecutive measurement vectors ``y``; the encoder therefore
transmits only the element-wise difference between consecutive packets.
The difference is saturated into the codebook range ``[-256, 255]``
(saturation is rare on well-behaved signals; keyframes bound any drift it
introduces, and the decoder mirrors the saturated values exactly, so
encoder and decoder prediction states never diverge).

:class:`DifferentialCodec` implements both directions with an explicit
keyframe policy: every ``keyframe_interval`` packets the raw measurement
vector is sent instead of a difference, allowing a receiver to join a
stream mid-flight and resynchronizing after losses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DIFF_MAX, DIFF_MIN
from ..errors import DecodingError
from ..utils import check_integer_array


@dataclass
class DifferentialCodec:
    """Stateful inter-packet difference encoder/decoder.

    The encoder and decoder keep the *same* reference vector: after a
    saturated difference the encoder reconstructs the value the decoder
    will see and uses that as its next reference (closed-loop DPCM), so
    saturation never accumulates as drift between the two sides.
    """

    keyframe_interval: int = 16
    diff_min: int = DIFF_MIN
    diff_max: int = DIFF_MAX

    def __post_init__(self) -> None:
        if self.keyframe_interval < 1:
            raise ValueError(
                f"keyframe_interval must be >= 1, got {self.keyframe_interval}"
            )
        if self.diff_min >= 0 or self.diff_max <= 0:
            raise ValueError(
                f"diff range must straddle zero, got [{self.diff_min}, {self.diff_max}]"
            )
        self._reference: np.ndarray | None = None
        self._packet_index = 0
        #: values actually clipped (strictly outside the rails before
        #: saturation) in the most recent :meth:`encode` call; keyframes
        #: clip nothing.  Rail-valued differences are representable and
        #: therefore never counted.
        self.last_clip_count = 0
        #: per-window strict clip counts of the most recent
        #: :meth:`encode_batch` call
        self.last_batch_clip_counts = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def packet_index(self) -> int:
        """Number of packets processed since the last :meth:`reset`."""
        return self._packet_index

    @property
    def has_reference(self) -> bool:
        """Whether a keyframe has anchored the difference chain —
        without one, difference payloads cannot be reconstructed."""
        return self._reference is not None

    def reset(self) -> None:
        """Drop all state; the next packet becomes a keyframe."""
        self._reference = None
        self._packet_index = 0
        self.last_clip_count = 0
        self.last_batch_clip_counts = np.zeros(0, dtype=np.int64)

    def _is_keyframe_slot(self) -> bool:
        return self._reference is None or (
            self._packet_index % self.keyframe_interval == 0
        )

    # ------------------------------------------------------------------
    # Encoder side
    # ------------------------------------------------------------------
    def encode(self, measurements: np.ndarray) -> tuple[bool, np.ndarray]:
        """Encode one measurement vector.

        Returns ``(is_keyframe, payload)``: for keyframes the payload is
        the raw integer measurement vector; otherwise the saturated
        difference against the shared reference.
        """
        y = check_integer_array(np.asarray(measurements), "measurements")
        if y.ndim != 1:
            raise ValueError(f"measurements must be 1-D, got shape {y.shape}")
        y = y.astype(np.int64)

        if self._is_keyframe_slot():
            self._reference = y.copy()
            self._packet_index += 1
            self.last_clip_count = 0
            return True, y.copy()

        assert self._reference is not None
        if len(y) != len(self._reference):
            raise ValueError(
                f"packet length changed mid-stream: {len(self._reference)} "
                f"-> {len(y)}; call reset() first"
            )
        raw = y - self._reference
        self.last_clip_count = int(
            np.count_nonzero((raw < self.diff_min) | (raw > self.diff_max))
        )
        diff = np.clip(raw, self.diff_min, self.diff_max)
        # Closed loop: advance the reference by the *saturated* diff, which
        # is exactly what the decoder will add on its side.
        self._reference = self._reference + diff
        self._packet_index += 1
        return False, diff.astype(np.int64)

    def encode_batch(
        self, measurements: np.ndarray
    ) -> list[tuple[bool, np.ndarray]]:
        """Encode a ``(B, m)`` block of measurement vectors at once.

        Equivalent to ``[encode(y) for y in measurements]`` — same
        payloads, same keyframe schedule, same closed-loop state
        afterwards — but the differencing between keyframes is one
        vectorized subtraction per segment.  The closed loop only
        becomes genuinely sequential when a difference saturates, which
        is rare on well-behaved signals; a segment containing any
        clipped value falls back to the per-window path so saturated
        references stay exact.

        Per-window strict clip counts are left in
        :attr:`last_batch_clip_counts` (aligned with the block).
        """
        y = check_integer_array(np.asarray(measurements), "measurements")
        if y.ndim != 2:
            raise ValueError(
                f"measurements must be 2-D (B, m), got shape {y.shape}"
            )
        y = y.astype(np.int64)
        batch = y.shape[0]
        results: list[tuple[bool, np.ndarray]] = []
        clip_counts = np.zeros(batch, dtype=np.int64)

        index = 0
        while index < batch:
            if self._is_keyframe_slot():
                results.append(self.encode(y[index]))
                index += 1
                continue
            assert self._reference is not None
            if y.shape[1] != len(self._reference):
                raise ValueError(
                    f"packet length changed mid-stream: "
                    f"{len(self._reference)} -> {y.shape[1]}; "
                    "call reset() first"
                )
            # the run of difference slots before the next keyframe
            until_keyframe = self.keyframe_interval - (
                self._packet_index % self.keyframe_interval
            )
            stop = min(batch, index + until_keyframe)
            segment = y[index:stop]
            previous = np.vstack([self._reference[None, :], segment[:-1]])
            raw = segment - previous
            if (
                raw.min() >= self.diff_min
                and raw.max() <= self.diff_max
            ):
                # no saturation anywhere: each reference lands exactly on
                # its measurement vector, so consecutive diffs are final
                for offset in range(stop - index):
                    results.append((False, raw[offset].copy()))
                self._reference = segment[-1].copy()
                self._packet_index += stop - index
                self.last_clip_count = 0
            else:
                for position in range(index, stop):
                    results.append(self.encode(y[position]))
                    clip_counts[position] = self.last_clip_count
            index = stop

        self.last_batch_clip_counts = clip_counts
        return results

    def saturation_fraction(self, raw_diff: np.ndarray) -> float:
        """Fraction of *raw* (pre-saturation) differences that clip.

        Strict comparison: values exactly at ``diff_min``/``diff_max``
        are representable and do not count as clipped.  Note that the
        payload returned by :meth:`encode` is already saturated, so
        feeding it here always yields 0.0 — for an encoded packet's
        clipping statistics read :attr:`last_clip_count` (or
        :attr:`last_batch_clip_counts`), which the encoder records from
        the pre-clip differences.
        """
        d = np.asarray(raw_diff)
        if d.size == 0:
            return 0.0
        clipped = np.count_nonzero((d < self.diff_min) | (d > self.diff_max))
        return clipped / d.size

    # ------------------------------------------------------------------
    # Decoder side
    # ------------------------------------------------------------------
    def decode(self, is_keyframe: bool, payload: np.ndarray) -> np.ndarray:
        """Reconstruct one measurement vector from a payload."""
        data = check_integer_array(np.asarray(payload), "payload").astype(np.int64)
        if data.ndim != 1:
            raise ValueError(f"payload must be 1-D, got shape {data.shape}")

        if is_keyframe:
            self._reference = data.copy()
            self._packet_index += 1
            return data.copy()

        if self._reference is None:
            raise DecodingError(
                "difference packet received before any keyframe"
            )
        if len(data) != len(self._reference):
            raise DecodingError(
                f"payload length {len(data)} does not match stream "
                f"width {len(self._reference)}"
            )
        if data.min() < self.diff_min or data.max() > self.diff_max:
            raise DecodingError(
                f"difference values outside [{self.diff_min}, {self.diff_max}]"
            )
        self._reference = self._reference + data
        self._packet_index += 1
        return self._reference.copy()
