"""Rice/Golomb coding: the codebook-free alternative entropy coder.

The paper's Huffman codebook costs 1.5 kB of flash.  A Rice coder needs
*no* stored tables — each value is zigzag-mapped to an unsigned integer
and coded as ``quotient`` in unary plus ``k`` remainder bits — at the
cost of slightly worse compression on non-geometric sources.  This
module implements it (with the standard per-packet optimal-``k``
estimator) so the coding-stage ablation can quantify the flash-vs-CR
trade-off the paper's designers implicitly made.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..errors import BitstreamError, DecodingError
from .bitstream import BitReader, BitWriter

#: guard against pathological unary runs on corrupted streams
_MAX_QUOTIENT = 4096


def zigzag_encode(value: int) -> int:
    """Map a signed integer to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if value < 0:
        raise DecodingError(f"zigzag value must be >= 0, got {value}")
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


def optimal_rice_parameter(values: Sequence[int]) -> int:
    """The standard estimator: ``k = ceil(log2(mean(|zigzag|)))``.

    Returns 0 for all-zero inputs.  Clamped to [0, 24].
    """
    if len(values) == 0:
        raise BitstreamError("values must be non-empty")
    mean = float(np.mean([zigzag_encode(int(v)) for v in values]))
    if mean < 1.0:
        return 0
    return max(0, min(24, int(math.ceil(math.log2(mean)))))


def rice_encode_value(value: int, k: int, writer: BitWriter) -> None:
    """Append one signed value with Rice parameter ``k``."""
    if not 0 <= k <= 24:
        raise BitstreamError(f"rice parameter must be in [0, 24], got {k}")
    mapped = zigzag_encode(int(value))
    quotient, remainder = divmod(mapped, 1 << k)
    if quotient > _MAX_QUOTIENT:
        raise BitstreamError(
            f"value {value} too large for rice parameter {k}"
        )
    writer.write_unary(quotient)
    if k:
        writer.write_bits(remainder, k)


def rice_decode_value(k: int, reader: BitReader) -> int:
    """Read one signed value with Rice parameter ``k``."""
    if not 0 <= k <= 24:
        raise DecodingError(f"rice parameter must be in [0, 24], got {k}")
    quotient = 0
    while reader.read_bit() == 1:
        quotient += 1
        if quotient > _MAX_QUOTIENT:
            raise DecodingError("unary run exceeds limit: corrupt stream")
    remainder = reader.read_bits(k) if k else 0
    return zigzag_decode((quotient << k) | remainder)


class RiceCoder:
    """Packet-level Rice coder with a 5-bit per-packet parameter header.

    ``encode`` prefixes the adaptive ``k`` so the decoder is stateless —
    exactly what a firmware implementation would transmit.
    """

    PARAMETER_BITS = 5

    def encode(
        self, values: Sequence[int], writer: BitWriter | None = None
    ) -> BitWriter:
        """Encode a packet of signed values; returns the writer."""
        if writer is None:
            writer = BitWriter()
        k = optimal_rice_parameter(values)
        writer.write_bits(k, self.PARAMETER_BITS)
        for value in values:
            rice_encode_value(int(value), k, writer)
        return writer

    def decode(self, reader: BitReader, count: int) -> list[int]:
        """Decode exactly ``count`` values."""
        if count < 0:
            raise DecodingError(f"count must be >= 0, got {count}")
        k = reader.read_bits(self.PARAMETER_BITS)
        if k > 24:
            raise DecodingError(f"invalid rice parameter {k} in stream")
        return [rice_decode_value(k, reader) for _ in range(count)]

    def encoded_bits(self, values: Sequence[int]) -> int:
        """Exact bit cost without materializing the stream."""
        k = optimal_rice_parameter(values)
        total = self.PARAMETER_BITS
        for value in values:
            mapped = zigzag_encode(int(value))
            total += (mapped >> k) + 1 + k
        return total
