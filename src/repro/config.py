"""System-level configuration for the CS-based ECG monitor.

The paper fixes most of these values implicitly: the Shimmer node samples
ECG at 256 Hz and processes 2-second packets, i.e. ``N = 512`` samples per
packet; the sparse binary sensing matrix uses ``d = 12`` ones per column;
the difference signal before entropy coding lives in ``[-256, 255]`` so the
Huffman codebook has 512 symbols with codewords of at most 16 bits.

:class:`SystemConfig` bundles those choices, validates them, and derives
the quantities the rest of the library needs (measurement count for a
target compression ratio, wavelet decomposition depth, packet rate...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigurationError

#: Sampling rate of the node-side ECG front end, in hertz (paper: 256 Hz).
NODE_SAMPLE_RATE_HZ = 256

#: Duration of one CS packet, in seconds (paper: 2 s).
PACKET_SECONDS = 2.0

#: Samples per packet: ``N = 512`` in the paper.
PACKET_SAMPLES = int(round(NODE_SAMPLE_RATE_HZ * PACKET_SECONDS))

#: ADC resolution of the stored MIT-BIH records (11-bit over 10 mV).
MITBIH_ADC_BITS = 11

#: MIT-BIH native sampling rate, in hertz.
MITBIH_SAMPLE_RATE_HZ = 360

#: Bits used to represent one original (uncompressed) sample on the air.
#: MIT-BIH samples are 11-bit; they are carried in 16-bit words on the
#: serial link but compression ratios in the CS-ECG literature are counted
#: against the 12-bit packed representation used by PhysioNet's ``212``
#: format.  We follow that convention.
ORIGINAL_SAMPLE_BITS = 12

#: Range of the inter-packet difference signal entering the entropy coder.
DIFF_MIN = -256
DIFF_MAX = 255

#: Number of symbols in the Huffman codebook (paper: 512).
HUFFMAN_SYMBOLS = DIFF_MAX - DIFF_MIN + 1

#: Maximum Huffman codeword length, in bits (paper: 16).
HUFFMAN_MAX_CODE_BITS = 16


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class SystemConfig:
    """Complete parameter set of the CS encoder/decoder pair.

    Parameters
    ----------
    n:
        Samples per packet (signal dimension ``N``).  Must be a power of
        two so the periodized wavelet transform is defined at every level.
    m:
        Number of CS measurements per packet (``M`` rows of ``Phi``).
    d:
        Ones per column of the sparse binary sensing matrix.
    wavelet:
        Name of the orthonormal wavelet used as the sparsifying basis
        ``Psi`` (e.g. ``"db4"``; see :mod:`repro.wavelet.filters`).
    levels:
        Wavelet decomposition depth.  ``None`` selects the maximum depth
        allowed by ``n`` and the filter length.
    lam:
        The Lagrangian weight ``lambda`` of the l1 term in the FISTA
        objective ``||A alpha - y||^2 + lambda * ||alpha||_1``.  Expressed
        as a fraction of ``||A^T y||_inf`` (a standard normalization), so
        the same value is meaningful across compression ratios.
    max_iterations:
        Hard iteration cap of the reconstruction solver.  The paper's
        real-time budget allows up to 2000 iterations on the optimized
        decoder and 800 on the unoptimized one.
    tolerance:
        Relative-change stopping tolerance of the solver.
    sample_rate_hz:
        Node sampling rate (256 Hz in the paper).
    adc_bits:
        Resolution of samples entering the encoder.
    original_sample_bits:
        Bits/sample charged to the uncompressed stream when computing CR.
    keyframe_interval:
        A keyframe (raw measurement vector, no differencing) is emitted
        every ``keyframe_interval`` packets so decoding can (re)start and
        saturation drift stays bounded.
    seed:
        Seed for the sensing-matrix construction.  Node and coordinator
        must share it (the paper stores the same fixed matrix on both).
    """

    n: int = PACKET_SAMPLES
    m: int = 256
    d: int = 12
    wavelet: str = "db4"
    levels: int | None = 5
    lam: float = 0.002
    max_iterations: int = 2000
    tolerance: float = 1e-5
    sample_rate_hz: int = NODE_SAMPLE_RATE_HZ
    adc_bits: int = MITBIH_ADC_BITS
    original_sample_bits: int = ORIGINAL_SAMPLE_BITS
    keyframe_interval: int = 16
    seed: int = 2011

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.n):
            raise ConfigurationError(f"n must be a power of two, got {self.n}")
        if not 0 < self.m <= self.n:
            raise ConfigurationError(
                f"m must satisfy 0 < m <= n={self.n}, got {self.m}"
            )
        if not 0 < self.d <= self.m:
            raise ConfigurationError(
                f"d must satisfy 0 < d <= m={self.m}, got {self.d}"
            )
        if self.levels is not None and self.levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {self.levels}")
        if self.lam <= 0:
            raise ConfigurationError(f"lam must be positive, got {self.lam}")
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.tolerance <= 0:
            raise ConfigurationError(
                f"tolerance must be positive, got {self.tolerance}"
            )
        if self.sample_rate_hz <= 0:
            raise ConfigurationError(
                f"sample_rate_hz must be positive, got {self.sample_rate_hz}"
            )
        if not 1 <= self.adc_bits <= 16:
            raise ConfigurationError(
                f"adc_bits must be in [1, 16], got {self.adc_bits}"
            )
        if self.original_sample_bits < self.adc_bits:
            raise ConfigurationError(
                "original_sample_bits must be >= adc_bits "
                f"({self.original_sample_bits} < {self.adc_bits})"
            )
        if self.keyframe_interval < 1:
            raise ConfigurationError(
                f"keyframe_interval must be >= 1, got {self.keyframe_interval}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def packet_seconds(self) -> float:
        """Duration of one packet in seconds."""
        return self.n / self.sample_rate_hz

    @property
    def packets_per_second(self) -> float:
        """Packet production rate of the node."""
        return 1.0 / self.packet_seconds

    @property
    def undersampling_ratio(self) -> float:
        """``M / N``, the raw measurement-domain compression factor."""
        return self.m / self.n

    @property
    def nominal_cr_percent(self) -> float:
        """Compression ratio ignoring entropy coding, in percent.

        ``CR = (b_orig - b_comp) / b_orig * 100`` with ``b_comp`` counted
        as ``m`` measurements carried at ``original_sample_bits`` each.
        Entropy coding improves on this; the actual achieved CR is
        measured by the encoder on real payloads.
        """
        return 100.0 * (1.0 - self.m / self.n)

    def with_target_cr(self, cr_percent: float) -> "SystemConfig":
        """Return a copy whose ``m`` targets the given *nominal* CR."""
        if not 0.0 <= cr_percent < 100.0:
            raise ConfigurationError(
                f"cr_percent must be in [0, 100), got {cr_percent}"
            )
        m = int(round(self.n * (1.0 - cr_percent / 100.0)))
        m = max(self.d, min(self.n, m))
        return replace(self, m=m)

    def replace(self, **changes: Any) -> "SystemConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)

    def max_wavelet_levels(self, filter_length: int) -> int:
        """Deepest periodized decomposition for a given filter length."""
        if filter_length < 2:
            raise ConfigurationError(
                f"filter_length must be >= 2, got {filter_length}"
            )
        levels = 0
        length = self.n
        while length >= filter_length and length % 2 == 0:
            length //= 2
            levels += 1
        return max(levels, 1)

    @property
    def original_packet_bits(self) -> int:
        """Bits of one uncompressed packet (``b_orig``)."""
        return self.n * self.original_sample_bits

    def summary(self) -> str:
        """One-line human-readable summary used by examples and logs."""
        return (
            f"SystemConfig(n={self.n}, m={self.m}, d={self.d}, "
            f"wavelet={self.wavelet}, levels={self.levels}, "
            f"lam={self.lam}, nominal_cr={self.nominal_cr_percent:.1f}%)"
        )


#: The configuration matching the paper's headline operating point
#: (CR = 50 % nominal, d = 12, 2-second packets at 256 Hz).
PAPER_DEFAULT = SystemConfig()


def config_for_cr_sweep(
    cr_values: tuple[float, ...] = (30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0),
    base: SystemConfig | None = None,
) -> dict[float, SystemConfig]:
    """Build the per-CR configurations used by the evaluation sweeps."""
    base = base if base is not None else PAPER_DEFAULT
    configs: dict[float, SystemConfig] = {}
    for cr in cr_values:
        configs[float(cr)] = base.with_target_cr(cr)
    return configs


def db_snr_from_prd(prd_percent: float) -> float:
    """Paper Eq. (8): ``SNR = -20 log10(0.01 PRD)``."""
    if prd_percent <= 0:
        raise ConfigurationError(
            f"prd_percent must be positive, got {prd_percent}"
        )
    return -20.0 * math.log10(0.01 * prd_percent)
