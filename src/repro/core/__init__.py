"""The paper's contribution: the complete CS-ECG encoder/decoder pair.

- :mod:`repro.core.quantizer` — the measurement quantizer between the
  integer sensing accumulator and the difference coder;
- :mod:`repro.core.packets` — the on-air packet format (keyframe/diff,
  headers, CRC-16, serialization);
- :mod:`repro.core.encoder` — :class:`CSEncoder`, the three-stage node
  pipeline (sparse binary sensing -> redundancy removal -> Huffman);
- :mod:`repro.core.decoder` — :class:`CSDecoder`, the mirrored pipeline
  (Huffman -> packet reconstruction -> FISTA -> inverse wavelet);
- :mod:`repro.core.system` — :class:`EcgMonitorSystem`, streaming a
  record end-to-end and collecting CR/PRD/SNR/iteration statistics;
- :mod:`repro.core.batch` — the batched decode engine: whole-record
  windowing, vectorized sensing/differencing and multi-window
  batched-FISTA reconstruction behind ``stream(batch_size=...)``.

Cross-stream pooling of many records/leads lives one level up in
:mod:`repro.fleet`, built on :class:`PacketPayloadDecoder` (the
operator-free stages 1-2) and :func:`encode_record_windows`.
"""

from .quantizer import MeasurementQuantizer
from .packets import EncodedPacket, PacketKind, crc16_ccitt
from .encoder import CSEncoder, EncoderStats
from .decoder import CSDecoder, DecodedPacket, PacketPayloadDecoder
from .system import EcgMonitorSystem, StreamResult, PacketResult
from .multichannel import MultiChannelMonitor, MultiChannelResult
from .batch import (
    DEFAULT_BATCH_SIZE,
    encode_record_windows,
    stream_batched,
    window_record,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "encode_record_windows",
    "stream_batched",
    "window_record",
    "PacketPayloadDecoder",
    "MeasurementQuantizer",
    "EncodedPacket",
    "PacketKind",
    "crc16_ccitt",
    "CSEncoder",
    "EncoderStats",
    "CSDecoder",
    "DecodedPacket",
    "EcgMonitorSystem",
    "StreamResult",
    "PacketResult",
    "MultiChannelMonitor",
    "MultiChannelResult",
]
