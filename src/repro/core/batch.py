"""Batched whole-record streaming: many windows per solver call.

The serial :meth:`~repro.core.system.EcgMonitorSystem.stream` loop is
the paper's real-time story — one packet in, one packet out.  A
production coordinator (or an offline re-analysis job) instead holds
seconds-to-hours of signal and wants throughput: this module windows a
whole record in one shot, runs the *same* three encoder stages with the
block-vectorized kernels (``Phi @ windows`` sensing, batched
quantization and differencing), and reconstructs ``batch_size`` windows
per :class:`~repro.solvers.batched.BatchedFista` call.

The output is the same :class:`~repro.core.system.StreamResult` the
serial path produces, with bit-identical packets (the encoder stages
are integer-exact) and reconstructions matching to solver
floating-point noise — the serial path stays the reference
implementation, and ``tests/core/test_batch.py`` pins the equivalence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..ecg.records import Record

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .system import EcgMonitorSystem, StreamResult

#: default reconstruction block width; past ~32 columns the GEMM pair
#: dominates per-iteration cost and the speedup saturates (see
#: ``benchmarks/bench_batched_decode.py``)
DEFAULT_BATCH_SIZE = 32


def window_record(samples: np.ndarray, n: int, max_windows: int | None = None) -> np.ndarray:
    """Slice a 1-D sample stream into a ``(B, n)`` block of windows.

    Trailing samples that do not fill a whole window are dropped,
    matching the serial streaming loop.
    """
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise ValueError(f"samples must be 1-D, got shape {samples.shape}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    count = len(samples) // n
    if max_windows is not None:
        count = min(count, max_windows)
    return samples[: count * n].reshape(count, n)


def encode_record_windows(
    system: "EcgMonitorSystem",
    record: Record,
    channel: int = 0,
    max_packets: int | None = None,
) -> tuple[np.ndarray, list]:
    """Window and batch-encode one record channel; reset stream state.

    Shared front end of :func:`stream_batched` and the fleet engine
    (:mod:`repro.fleet`): returns the ``(B, n)`` window block and the
    matching encoded packets, with both encoder and decoder codec state
    reset so decoding starts from the first keyframe.
    """
    if max_packets is not None and max_packets < 1:
        raise ValueError(
            f"max_packets={max_packets} requests no windows; "
            "need at least 1 packet to stream"
        )
    samples = system._prepare_samples(record, channel)
    n = system.config.n
    windows = window_record(samples, n, max_packets)
    if windows.shape[0] == 0:
        raise ValueError(
            f"record too short: {len(samples)} samples < one window of {n}"
        )

    system.encoder.reset()
    system.decoder.reset()
    packets = system.encoder.encode_batch(windows)
    return windows, packets


def stream_batched(
    system: "EcgMonitorSystem",
    record: Record,
    channel: int = 0,
    max_packets: int | None = None,
    keep_signals: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> "StreamResult":
    """Stream one record channel using the batched decode engine.

    Drop-in equivalent of ``system.stream(...)``: encodes the whole
    record with the block-vectorized encoder, then reconstructs
    ``batch_size`` windows per batched-FISTA call.  The per-packet
    ``decode_seconds`` is the batch wall-clock amortized over its
    columns (the quantity a throughput-oriented deployment budgets).
    """
    from .system import StreamResult, packet_result

    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")

    windows, packets = encode_record_windows(
        system, record, channel=channel, max_packets=max_packets
    )
    offset = system.encoder.dc_offset

    result = StreamResult(
        record=record.name, channel=channel, config=system.config
    )
    reconstructed: list[np.ndarray] = []

    for start in range(0, len(packets), batch_size):
        chunk = packets[start : start + batch_size]
        decoded_chunk = system.decoder.decode_batch(chunk)
        for index, decoded in enumerate(decoded_chunk):
            result.packets.append(
                packet_result(windows[start + index], chunk[index], decoded, offset)
            )
            if keep_signals:
                reconstructed.append(decoded.samples_adu)

    if keep_signals:
        result.original_adu = windows.astype(np.float64).reshape(-1)
        result.reconstructed_adu = np.concatenate(reconstructed)
    return result
