"""The coordinator-side CS decoder (paper Figure 1, bottom path).

Three stages mirroring the encoder:

1. **Huffman decoding** with the shared codebook;
2. **packet reconstruction** — re-inserting the inter-packet redundancy
   (cumulative differences against the last keyframe);
3. **FISTA reconstruction** — solving the l1 problem in the wavelet
   domain and synthesizing the time-domain ECG.

The decoder supports float64 (the paper's Matlab reference) and float32
(the iPhone build); Figure 6 overlays the two.  The dense system
operator and its Lipschitz constant are computed once on first use and
cached for the decoder's lifetime (the sensing matrix is fixed),
exactly as an embedded decoder would precompute them offline — lazily,
so a fleet of per-stream decoders sharing one operator group does not
pay the precompute per stream.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..coding import BitReader, Codebook, DifferentialCodec, train_codebook
from ..config import SystemConfig
from ..errors import ConfigurationError, DecodingError
from ..sensing import SparseBinaryMatrix
from ..solvers import (
    BatchedFista,
    SolverResult,
    StructuredOperator,
    fista,
    lambda_from_fraction,
)
from ..solvers.lipschitz import lipschitz_constant
from ..wavelet import WaveletTransform
from .packets import EncodedPacket, PacketKind, unpack_keyframe_values
from .quantizer import MeasurementQuantizer


class PacketPayloadDecoder:
    """Stages 1-2 of the decoder: entropy decode + redundancy re-insert.

    Everything *before* the FISTA solve — Huffman decoding, closed-loop
    difference reconstruction and dequantization — is per-stream state
    (codebook, reference vector) that never touches the dense system
    operator.  Splitting it out lets a fleet worker keep one of these
    per stream while sharing a single operator/Lipschitz precomputation
    per sensing-operator group (see :mod:`repro.fleet`), and lets the
    worker be constructed without materializing ``A = Phi Psi`` at all.
    """

    def __init__(
        self, config: SystemConfig, codebook: Codebook | None = None
    ) -> None:
        self.config = config
        self.codebook = codebook if codebook is not None else train_codebook()
        self.codec = DifferentialCodec(
            keyframe_interval=config.keyframe_interval
        )
        self.quantizer = MeasurementQuantizer(d=config.d)
        self._awaiting_keyframe = False
        self._keyframe_admitted = False

    def reset(self) -> None:
        """Drop the inter-packet reference state."""
        self.codec.reset()
        self._awaiting_keyframe = False
        self._keyframe_admitted = False

    # -- lossy-channel recovery ----------------------------------------
    @property
    def awaiting_keyframe(self) -> bool:
        """Whether stage 2 is resyncing: difference packets are
        undecodable until the next keyframe re-anchors the chain.

        A keyframe re-anchors at *admission* time (the ``_keyframe_
        admitted`` latch), not only once decoded: the recovery drain
        admits a whole held run before the caller decodes any of it,
        and the differences behind an admitted-but-not-yet-decoded
        keyframe are decodable because the caller always decodes
        accepted packets in admission order."""
        return self._awaiting_keyframe or not (
            self.codec.has_reference or self._keyframe_admitted
        )

    def resync(self) -> None:
        """Enter the resync state after a sequence gap or corrupt frame.

        The cumulative difference reference is now stale — applying
        further diffs to it would silently corrupt every window until
        the next keyframe — so the reference is discarded and
        difference packets must be skipped (:meth:`skip_to_keyframe`)
        until a keyframe arrives.
        """
        self.codec.reset()
        self._awaiting_keyframe = True
        self._keyframe_admitted = False

    def skip_to_keyframe(self, packet: EncodedPacket) -> bool:
        """Whether ``packet`` must be discarded to reach a keyframe.

        ``True`` for a difference packet while resyncing (or before the
        stream's first keyframe — joining mid-stream looks exactly like
        a loss).  A keyframe ends the resync and returns ``False``: the
        caller decodes it normally and the difference chain re-arms.
        """
        if packet.kind is PacketKind.KEYFRAME:
            self._awaiting_keyframe = False
            self._keyframe_admitted = True
            return False
        return self.awaiting_keyframe

    def decode_payload(self, packet: EncodedPacket) -> np.ndarray:
        """Decode one packet down to its quantized measurement vector."""
        if packet.m != self.config.m:
            raise DecodingError(
                f"packet m={packet.m} does not match decoder m={self.config.m}"
            )
        if packet.kind is PacketKind.KEYFRAME:
            self._awaiting_keyframe = False
            self._keyframe_admitted = True
            values = unpack_keyframe_values(packet.payload, self.config.m)
            return self.codec.decode(True, values)
        if self._awaiting_keyframe:
            raise DecodingError(
                "difference packet during resync: call skip_to_keyframe() "
                "and wait for the next keyframe"
            )
        reader = BitReader(packet.payload, bit_length=packet.payload_bits)
        symbols = self.codebook.code.decode(reader, self.config.m)
        if reader.remaining >= 8:
            raise DecodingError(
                f"{reader.remaining} unread payload bits after decoding"
            )
        diffs = np.asarray(
            [self.codebook.value_for(s) for s in symbols], dtype=np.int64
        )
        return self.codec.decode(False, diffs)

    def measurement_block(
        self, packets: Sequence[EncodedPacket], dtype: np.dtype | type
    ) -> np.ndarray:
        """Stack the dequantized measurements of many packets, ``(m, B)``.

        Sequential by necessity — the difference codec is stateful — but
        cheap relative to the reconstruction solve it feeds.
        """
        block = np.empty((self.config.m, len(packets)), dtype=dtype)
        for column, packet in enumerate(packets):
            y_q = self.decode_payload(packet)
            block[:, column] = self.quantizer.dequantize(y_q).astype(dtype)
        return block


@dataclass(frozen=True)
class DecodedPacket:
    """One reconstructed 2-second window plus solver diagnostics."""

    sequence: int
    samples_adu: np.ndarray
    measurements: np.ndarray
    solver: SolverResult
    decode_seconds: float

    @property
    def iterations(self) -> int:
        """FISTA iterations spent on this packet."""
        return self.solver.iterations


class CSDecoder:
    """Compressed-sensing ECG decoder for one lead.

    Parameters
    ----------
    config:
        Must match the encoder's configuration (same seed -> same
        sensing matrix, the paper's shared fixed matrix).
    codebook:
        Must be the same codebook the encoder used.
    precision:
        ``"float64"`` (Matlab reference), ``"float32"`` (iPhone), or
        ``"hybrid"`` — the raw-speed backend: float32 FISTA iterations
        against the fused dense operator, dense ``Psi`` GEMM synthesis,
        a sparse scatter/gather residual gate ``||y - Phi s||`` per
        column, and a float64 polish re-solve for any column whose
        relative residual leaves the fig-6 corridor (see
        :func:`~repro.solvers.batched.structured_batched_fista`).
    warm_start:
        Reuse the previous packet's wavelet coefficients as the FISTA
        starting point (off by default: the paper decodes each packet
        independently).  Not supported with ``"hybrid"`` (the polish
        re-solve would break the per-stream coefficient chain).
    """

    def __init__(
        self,
        config: SystemConfig,
        codebook: Codebook | None = None,
        precision: str = "float64",
        warm_start: bool = False,
    ) -> None:
        if precision not in ("float64", "float32", "hybrid"):
            raise ConfigurationError(
                f"precision must be 'float64', 'float32' or 'hybrid', "
                f"got {precision!r}"
            )
        if precision == "hybrid" and warm_start:
            raise ConfigurationError(
                "warm_start is not supported with precision='hybrid'"
            )
        self.config = config
        self.precision = precision
        self.warm_start = warm_start
        self.payload = PacketPayloadDecoder(config, codebook=codebook)

        self._matrix = SparseBinaryMatrix(
            config.m, config.n, d=config.d, seed=config.seed
        )
        self.transform = WaveletTransform(config.n, config.wavelet, config.levels)
        # Dense materialization of A = Phi Psi (at N = 512 the fastest
        # representation for the numerical sweeps; the embedded cost
        # models account for the matrix-free structure instead) is
        # *lazy*: it and its Lipschitz estimate are built on first use.
        # A fleet run constructs one decoder per stream but iterates
        # only one operator per group — eager per-decoder builds would
        # pay the group's precompute once per stream.
        self._system_cache: np.ndarray | None = None
        self._lipschitz_cache: float | None = None
        self.dc_offset = 1 << (config.adc_bits - 1)
        self._previous_alpha: np.ndarray | None = None
        self._batched_solver: BatchedFista | None = None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop stream state (reference vector and warm-start memory)."""
        self.payload.reset()
        self._previous_alpha = None

    # stages 1-2 live on the payload decoder; these aliases keep the
    # historical attribute surface (tests and ablations poke them)
    @property
    def codebook(self) -> Codebook:
        """Shared entropy codebook (must match the encoder's)."""
        return self.payload.codebook

    @codebook.setter
    def codebook(self, value: Codebook) -> None:
        self.payload.codebook = value

    @property
    def codec(self) -> DifferentialCodec:
        """Stateful inter-packet difference decoder."""
        return self.payload.codec

    @codec.setter
    def codec(self, value: DifferentialCodec) -> None:
        self.payload.codec = value

    @property
    def quantizer(self) -> MeasurementQuantizer:
        """Measurement dequantizer (folds the deferred 1/sqrt(d))."""
        return self.payload.quantizer

    @quantizer.setter
    def quantizer(self, value: MeasurementQuantizer) -> None:
        self.payload.quantizer = value

    @property
    def system_matrix(self) -> np.ndarray:
        """The dense system operator ``A = Phi Psi`` (decoder precision)."""
        if self._system_cache is None:
            dtype = np.float32 if self.precision == "float32" else np.float64
            self._system_cache = (
                self._matrix.sparse() @ self.transform.synthesis_matrix()
            ).astype(dtype)
        return self._system_cache

    @property
    def lipschitz(self) -> float:
        """Precomputed Lipschitz constant of the data-fidelity gradient."""
        if self._lipschitz_cache is None:
            self._lipschitz_cache = lipschitz_constant(
                self.system_matrix.astype(np.float64)
            )
        return self._lipschitz_cache

    def batched_solver(self) -> BatchedFista:
        """The (lazily built) batched solver for this decoder's backend.

        For ``"hybrid"`` precision the solver is bound to a
        :class:`~repro.solvers.sparse_apply.StructuredOperator` (sparse
        ``Phi`` gather kernels + both-precision dense pair) so
        :meth:`~repro.solvers.batched.BatchedFista.solve_structured`
        is available; otherwise a plain dense-operator solver.  Shared
        by :meth:`decode_batch` and the fleet's in-process group path,
        so the operator/Lipschitz precompute is paid once per decoder.
        """
        if self._batched_solver is None:
            if self.precision == "hybrid":
                structure = StructuredOperator(
                    self._matrix,
                    self.transform.synthesis_matrix(),
                    dense=self.system_matrix,
                    lipschitz=self.lipschitz,
                )
                self._batched_solver = BatchedFista(
                    structure.dense64,
                    lipschitz=structure.lipschitz,
                    structure=structure,
                )
            else:
                self._batched_solver = BatchedFista(
                    self.system_matrix, lipschitz=self.lipschitz
                )
        return self._batched_solver

    # ------------------------------------------------------------------
    def _decode_payload(self, packet: EncodedPacket) -> np.ndarray:
        """Stages 1-2: entropy decoding and redundancy re-insertion."""
        return self.payload.decode_payload(packet)

    def decode(self, packet: EncodedPacket) -> DecodedPacket:
        """Full decode of one packet into reconstructed adu samples."""
        started = time.perf_counter()
        y_q = self._decode_payload(packet)
        y = self.quantizer.dequantize(y_q)
        if self.precision == "hybrid":
            # the structured backend is inherently batched; a serial
            # decode is a width-1 block through the same pipeline
            result = self.batched_solver().solve_structured(
                np.asarray(y, dtype=np.float64)[:, None],
                self.config.lam,
                max_iterations=self.config.max_iterations,
                tolerance=self.config.tolerance,
            )
            samples = result.signals[:, 0] + self.dc_offset
            return DecodedPacket(
                sequence=packet.sequence,
                samples_adu=samples,
                measurements=np.asarray(y, dtype=np.float64),
                solver=result.per_column(0),
                decode_seconds=time.perf_counter() - started,
            )
        dtype = np.float32 if self.precision == "float32" else np.float64
        y = y.astype(dtype)

        lam = lambda_from_fraction(self.system_matrix, y, self.config.lam)
        x0 = self._previous_alpha if self.warm_start else None
        result = fista(
            self.system_matrix,
            y,
            lam=lam,
            max_iterations=self.config.max_iterations,
            tolerance=self.config.tolerance,
            lipschitz=self.lipschitz,
            x0=x0,
        )
        if self.warm_start:
            self._previous_alpha = result.coefficients

        signal = self.transform.inverse(result.coefficients)
        samples = np.asarray(signal, dtype=np.float64) + self.dc_offset
        elapsed = time.perf_counter() - started
        return DecodedPacket(
            sequence=packet.sequence,
            samples_adu=samples,
            measurements=np.asarray(y, dtype=np.float64),
            solver=result,
            decode_seconds=elapsed,
        )

    def decode_batch(
        self, packets: Sequence[EncodedPacket]
    ) -> list[DecodedPacket]:
        """Decode many packets with one batched FISTA solve.

        Entropy decoding and redundancy re-insertion stay sequential
        (they are stateful and cheap); the measurement vectors are then
        stacked into an ``(m, B)`` matrix and reconstructed by
        :class:`~repro.solvers.batched.BatchedFista` with per-column
        regularization weights and convergence masking, followed by one
        batched inverse wavelet synthesis.  Per-packet results match
        :meth:`decode` to solver floating-point noise (identical
        iteration counts, reconstructions equal to ~1e-9).

        With ``warm_start`` enabled, every column starts from the last
        coefficients solved before this batch (the serial path warm
        starts each packet from its immediate predecessor, which a
        parallel solve cannot reproduce), and the final column is
        retained for the next batch.
        """
        packets = list(packets)
        if not packets:
            return []
        started = time.perf_counter()
        dtype = np.float32 if self.precision == "float32" else np.float64
        measurements = self.payload.measurement_block(packets, dtype)
        solver = self.batched_solver()

        if self.precision == "hybrid":
            result = solver.solve_structured(
                measurements,
                self.config.lam,
                max_iterations=self.config.max_iterations,
                tolerance=self.config.tolerance,
            )
            samples = result.signals + self.dc_offset
            elapsed = time.perf_counter() - started
            per_packet_seconds = elapsed / len(packets)
            return [
                DecodedPacket(
                    sequence=packet.sequence,
                    samples_adu=samples[:, column].copy(),
                    measurements=np.asarray(
                        measurements[:, column], dtype=np.float64
                    ),
                    solver=result.per_column(column),
                    decode_seconds=per_packet_seconds,
                )
                for column, packet in enumerate(packets)
            ]

        lams = solver.lambdas(measurements, self.config.lam)
        x0 = None
        if self.warm_start and self._previous_alpha is not None:
            x0 = np.repeat(
                self._previous_alpha[:, None], len(packets), axis=1
            )
        batch_result = solver.solve(
            measurements,
            lams,
            max_iterations=self.config.max_iterations,
            tolerance=self.config.tolerance,
            x0=x0,
        )
        if self.warm_start:
            self._previous_alpha = batch_result.coefficients[:, -1].copy()

        signals = self.transform.inverse_batch(batch_result.coefficients)
        samples = np.asarray(signals, dtype=np.float64) + self.dc_offset
        elapsed = time.perf_counter() - started
        per_packet_seconds = elapsed / len(packets)
        return [
            DecodedPacket(
                sequence=packet.sequence,
                samples_adu=samples[:, column].copy(),
                measurements=np.asarray(
                    measurements[:, column], dtype=np.float64
                ),
                solver=batch_result.per_column(column),
                decode_seconds=per_packet_seconds,
            )
            for column, packet in enumerate(packets)
        ]

    def decode_bytes(self, wire: bytes) -> DecodedPacket:
        """Parse a wire packet (with CRC check) and decode it."""
        return self.decode(EncodedPacket.from_bytes(wire))
