"""The node-side CS encoder (paper Figure 1, top path).

Three stages, exactly as on the Shimmer mote:

1. **sparse binary sensing** — ``y_int[i] = sum of selected samples``
   (integer additions only; the ``1/sqrt(d)`` scale is the decoder's
   job), followed by the shift quantizer;
2. **redundancy removal** — closed-loop differencing of consecutive
   quantized measurement vectors, with periodic keyframes;
3. **Huffman coding** — the offline-trained, length-limited canonical
   codebook turns the difference symbols into the payload bitstream.

Everything on this path is integer arithmetic a 16-bit MCU can execute;
the encoder also keeps running totals (bits in/out, saturation counts)
for the compression-ratio accounting of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..coding import BitWriter, Codebook, DifferentialCodec, train_codebook
from ..config import SystemConfig
from ..errors import ConfigurationError
from ..sensing import SparseBinaryMatrix
from ..utils import check_integer_array
from .packets import EncodedPacket, PacketKind, pack_keyframe_values
from .quantizer import MeasurementQuantizer


@dataclass
class EncoderStats:
    """Running encoder statistics (for CR accounting and diagnostics)."""

    packets: int = 0
    keyframes: int = 0
    input_bits: int = 0
    output_bits: int = 0
    saturated_symbols: int = 0
    total_symbols: int = 0
    per_packet_bits: list[int] = field(default_factory=list)

    @property
    def compression_ratio_percent(self) -> float:
        """Stream-level CR (Eq. 7) including all packet overheads."""
        if self.input_bits == 0:
            return 0.0
        return (self.input_bits - self.output_bits) / self.input_bits * 100.0

    @property
    def saturation_fraction(self) -> float:
        """Fraction of difference symbols clipped to the codebook rails."""
        if self.total_symbols == 0:
            return 0.0
        return self.saturated_symbols / self.total_symbols


class CSEncoder:
    """Compressed-sensing ECG encoder for one lead.

    Parameters
    ----------
    config:
        System parameters (N, M, d, seed, keyframe interval...).
    codebook:
        Trained Huffman codebook; ``None`` trains the default Laplacian
        codebook (what a device would ship with before calibration).
    """

    def __init__(
        self, config: SystemConfig, codebook: Codebook | None = None
    ) -> None:
        self.config = config
        self.matrix = SparseBinaryMatrix(
            config.m, config.n, d=config.d, seed=config.seed
        )
        self.quantizer = MeasurementQuantizer(d=config.d)
        self.codec = DifferentialCodec(keyframe_interval=config.keyframe_interval)
        self.codebook = codebook if codebook is not None else train_codebook()
        if self.codebook.min_value > self.codec.diff_min or (
            self.codebook.max_value < self.codec.diff_max
        ):
            raise ConfigurationError(
                "codebook range does not cover the difference-signal range"
            )
        self.stats = EncoderStats()
        self._sequence = 0
        #: centering offset subtracted from raw adu samples (DC removal)
        self.dc_offset = 1 << (config.adc_bits - 1)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restart the stream: next packet is a keyframe, stats cleared."""
        self.codec.reset()
        self.stats = EncoderStats()
        self._sequence = 0

    # ------------------------------------------------------------------
    def measure(self, samples_adu: np.ndarray) -> np.ndarray:
        """Stage 1: integer sensing + quantization of one window."""
        x = check_integer_array(np.asarray(samples_adu), "samples_adu")
        if x.shape != (self.config.n,):
            raise ValueError(
                f"expected {self.config.n} samples, got shape {x.shape}"
            )
        centered = x.astype(np.int64) - self.dc_offset
        y_int = self.matrix.measure_integer(centered)
        return self.quantizer.quantize(y_int)

    def measure_batch(self, windows_adu: np.ndarray) -> np.ndarray:
        """Stage 1 for a ``(B, n)`` block: one sparse matmul + quantize.

        Row ``b`` equals ``measure(windows_adu[b])`` bit for bit — the
        sensing sum and the shift quantizer are integer-exact.
        """
        x = check_integer_array(np.asarray(windows_adu), "windows_adu")
        if x.ndim != 2 or x.shape[1] != self.config.n:
            raise ValueError(
                f"expected batch shape (B, {self.config.n}), got shape {x.shape}"
            )
        centered = x.astype(np.int64) - self.dc_offset
        y_int = self.matrix.measure_integer_batch(centered)
        return self.quantizer.quantize(y_int)

    def encode(self, samples_adu: np.ndarray) -> EncodedPacket:
        """Encode one N-sample window into an on-air packet."""
        y_q = self.measure(samples_adu)
        is_keyframe, payload_values = self.codec.encode(y_q)
        return self._packetize(
            is_keyframe, payload_values, self.codec.last_clip_count
        )

    def encode_batch(self, windows_adu: np.ndarray) -> list[EncodedPacket]:
        """Encode a ``(B, n)`` block of windows into on-air packets.

        Produces exactly the packets (and the same running stats) that
        ``[encode(w) for w in windows_adu]`` would: sensing and
        quantization are vectorized across the block, differencing runs
        segment-at-a-time through the codec's batched closed loop, and
        only the Huffman bitstream remains per-packet.
        """
        y_q = self.measure_batch(windows_adu)
        pairs = self.codec.encode_batch(y_q)
        clip_counts = self.codec.last_batch_clip_counts
        return [
            self._packetize(is_keyframe, values, int(clip_counts[index]))
            for index, (is_keyframe, values) in enumerate(pairs)
        ]

    def _packetize(
        self,
        is_keyframe: bool,
        payload_values: np.ndarray,
        clip_count: int,
    ) -> EncodedPacket:
        """Stage 3 + stats: shared by the serial and batched paths.

        ``clip_count`` is the codec's *strict* clipping count (values
        that fell outside the rails before saturation); rail-valued
        differences are representable symbols and are not saturation.
        """
        if is_keyframe:
            payload, payload_bits = pack_keyframe_values(payload_values)
            kind = PacketKind.KEYFRAME
            self.stats.keyframes += 1
        else:
            self.stats.saturated_symbols += int(clip_count)
            self.stats.total_symbols += len(payload_values)
            writer = BitWriter()
            for value in payload_values:
                self.codebook.code.encode_symbol(
                    self.codebook.symbol_for(int(value)), writer
                )
            payload_bits = writer.bit_length
            payload = writer.getvalue()
            kind = PacketKind.DIFFERENCE

        packet = EncodedPacket(
            kind=kind,
            sequence=self._sequence & 0xFFFF,
            m=self.config.m,
            payload=payload,
            payload_bits=payload_bits,
        )
        self._sequence += 1
        self.stats.packets += 1
        self.stats.input_bits += self.config.original_packet_bits
        self.stats.output_bits += packet.total_bits
        self.stats.per_packet_bits.append(packet.total_bits)
        return packet

    # ------------------------------------------------------------------
    def train_codebook_on(self, windows_adu: list[np.ndarray]) -> Codebook:
        """Offline codebook training pass over calibration windows.

        Runs the sensing + differencing stages (on a scratch codec so
        the live stream state is untouched), collects the difference
        symbols, and trains a length-limited codebook on them — the
        "offline-generated codebook" of the paper.
        """
        scratch = DifferentialCodec(
            keyframe_interval=self.config.keyframe_interval
        )
        samples: list[int] = []
        for window in windows_adu:
            y_q = self.measure(window)
            is_keyframe, values = scratch.encode(y_q)
            if not is_keyframe:
                samples.extend(int(v) for v in values)
        if not samples:
            raise ConfigurationError(
                "calibration produced no difference symbols; "
                "provide more than one window per keyframe interval"
            )
        self.codebook = train_codebook(samples)
        return self.codebook
