"""Multi-lead streaming: both MIT-BIH channels through paired systems.

The MIT-BIH records are two-channel; a deployed monitor compresses
every lead.  :class:`MultiChannelMonitor` runs one matched
encoder/decoder pair per lead (sharing the configuration but using
per-lead sensing seeds, so simultaneous packet losses do not correlate
across leads) and aggregates bandwidth/quality statistics — the node's
radio carries the *sum* of all leads' packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..coding import Codebook
from ..config import SystemConfig
from ..ecg.records import Record
from ..errors import ConfigurationError
from ..metrics import compression_ratio
from .system import EcgMonitorSystem, StreamResult


@dataclass
class MultiChannelResult:
    """Aggregate of the per-lead stream results."""

    per_channel: list[StreamResult] = field(default_factory=list)

    @property
    def num_channels(self) -> int:
        """Number of leads streamed."""
        return len(self.per_channel)

    @property
    def total_bits(self) -> int:
        """Radio payload across all leads."""
        return sum(
            sum(p.packet_bits for p in result.packets)
            for result in self.per_channel
        )

    @property
    def compression_ratio_percent(self) -> float:
        """CR of the combined multi-lead stream."""
        original = sum(
            result.config.original_packet_bits * result.num_packets
            for result in self.per_channel
        )
        return compression_ratio(original, self.total_bits)

    @property
    def worst_channel_prd_percent(self) -> float:
        """The clinically binding quality figure: the worst lead."""
        return max(result.mean_prd_percent for result in self.per_channel)

    @property
    def mean_iterations(self) -> float:
        """Average decoder iterations across leads (phone-side load)."""
        total = sum(result.mean_iterations for result in self.per_channel)
        return total / self.num_channels

    def bits_per_second(self) -> float:
        """Sustained radio rate for the combined stream."""
        seconds = sum(
            result.config.packet_seconds * result.num_packets
            for result in self.per_channel
        ) / self.num_channels
        if seconds == 0:
            return 0.0
        return self.total_bits / seconds


class MultiChannelMonitor:
    """One CS encoder/decoder pair per ECG lead."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        channels: int = 2,
        codebook: Codebook | None = None,
        precision: str = "float64",
    ) -> None:
        if channels < 1:
            raise ConfigurationError(f"channels must be >= 1, got {channels}")
        self.config = config if config is not None else SystemConfig()
        # per-lead seeds decorrelate the sensing patterns across leads
        self.systems = [
            EcgMonitorSystem(
                self.config.replace(seed=self.config.seed + channel),
                codebook=codebook,
                precision=precision,
            )
            for channel in range(channels)
        ]

    @property
    def num_channels(self) -> int:
        """Number of leads this monitor compresses."""
        return len(self.systems)

    def calibrate(self, record: Record) -> None:
        """Train every lead's codebook on its own channel."""
        for channel, system in enumerate(self.systems):
            if channel < record.num_channels:
                system.calibrate(record, channel=channel)

    def stream(
        self,
        record: Record,
        max_packets: int | None = None,
        keep_signals: bool = False,
        batch_size: int | None = None,
    ) -> MultiChannelResult:
        """Stream every available lead of a record.

        ``batch_size`` selects the batched decode engine per lead (see
        :meth:`EcgMonitorSystem.stream`); a multi-lead record is the
        natural batched workload — every lead contributes a full block
        of windows to reconstruct.
        """
        if record.num_channels < self.num_channels:
            raise ConfigurationError(
                f"record has {record.num_channels} channels, "
                f"monitor expects {self.num_channels}"
            )
        result = MultiChannelResult()
        for channel, system in enumerate(self.systems):
            result.per_channel.append(
                system.stream(
                    record,
                    channel=channel,
                    max_packets=max_packets,
                    keep_signals=keep_signals,
                    batch_size=batch_size,
                )
            )
        return result
