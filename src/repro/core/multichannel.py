"""Multi-lead streaming: both MIT-BIH channels through paired systems.

The MIT-BIH records are two-channel; a deployed monitor compresses
every lead.  :class:`MultiChannelMonitor` runs one matched
encoder/decoder pair per lead (sharing the configuration but using
per-lead sensing seeds, so simultaneous packet losses do not correlate
across leads) and aggregates bandwidth/quality statistics — the node's
radio carries the *sum* of all leads' packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..coding import Codebook
from ..config import SystemConfig
from ..ecg.records import Record
from ..errors import ConfigurationError
from ..metrics import compression_ratio
from .system import EcgMonitorSystem, StreamResult


@dataclass
class MultiChannelResult:
    """Aggregate of the per-lead stream results."""

    per_channel: list[StreamResult] = field(default_factory=list)

    @property
    def num_channels(self) -> int:
        """Number of leads streamed."""
        return len(self.per_channel)

    @property
    def total_bits(self) -> int:
        """Radio payload across all leads."""
        return sum(
            sum(p.packet_bits for p in result.packets)
            for result in self.per_channel
        )

    @property
    def compression_ratio_percent(self) -> float:
        """CR of the combined multi-lead stream."""
        original = sum(
            result.config.original_packet_bits * result.num_packets
            for result in self.per_channel
        )
        return compression_ratio(original, self.total_bits)

    @property
    def worst_channel_prd_percent(self) -> float:
        """The clinically binding quality figure: the worst lead."""
        return max(result.mean_prd_percent for result in self.per_channel)

    @property
    def mean_iterations(self) -> float:
        """Average decoder iterations across leads (phone-side load)."""
        total = sum(result.mean_iterations for result in self.per_channel)
        return total / self.num_channels

    def bits_per_second(self) -> float:
        """Sustained radio rate for the combined stream.

        The stream is over when the *longest* lead finishes, so the
        denominator is the max per-lead duration — dividing by the mean
        overstates the rate whenever leads carry unequal packet counts.
        """
        seconds = max(
            (
                result.config.packet_seconds * result.num_packets
                for result in self.per_channel
            ),
            default=0.0,
        )
        if seconds == 0:
            return 0.0
        return self.total_bits / seconds


class MultiChannelMonitor:
    """One CS encoder/decoder pair per ECG lead."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        channels: int = 2,
        codebook: Codebook | None = None,
        precision: str = "float64",
    ) -> None:
        if channels < 1:
            raise ConfigurationError(f"channels must be >= 1, got {channels}")
        self.config = config if config is not None else SystemConfig()
        # per-lead seeds decorrelate the sensing patterns across leads
        self.systems = [
            EcgMonitorSystem(
                self.config.replace(seed=self.config.seed + channel),
                codebook=codebook,
                precision=precision,
            )
            for channel in range(channels)
        ]

    @property
    def num_channels(self) -> int:
        """Number of leads this monitor compresses."""
        return len(self.systems)

    def calibrate(self, record: Record) -> None:
        """Train every lead's codebook on its own channel."""
        for channel, system in enumerate(self.systems):
            if channel < record.num_channels:
                system.calibrate(record, channel=channel)

    def stream(
        self,
        record: Record,
        max_packets: int | None = None,
        keep_signals: bool = False,
        batch_size: int | None = None,
        fleet_workers: int | None = None,
    ) -> MultiChannelResult:
        """Stream every available lead of a record.

        ``batch_size`` selects the batched decode engine; a multi-lead
        record is the natural batched workload — every lead contributes
        a full block of windows to reconstruct.  Batched decoding pools
        all leads through the fleet scheduler (:mod:`repro.fleet`):
        leads sharing a sensing operator batch *across* leads, and
        ``fleet_workers >= 2`` shards the operator groups over a
        multiprocessing pool.  ``fleet_workers`` only applies to the
        fleet path, so it requires ``batch_size > 1``.
        """
        if record.num_channels < self.num_channels:
            raise ConfigurationError(
                f"record has {record.num_channels} channels, "
                f"monitor expects {self.num_channels}"
            )
        if fleet_workers is not None and (
            batch_size is None or batch_size <= 1
        ):
            raise ConfigurationError(
                "fleet_workers requires batch_size > 1 (the serial "
                "per-lead path does not shard)"
            )
        if batch_size is not None and batch_size > 1:
            from ..fleet import FleetDecoder, StreamTask

            tasks = [
                StreamTask(
                    system=system,
                    record=record,
                    channel=channel,
                    max_packets=max_packets,
                    keep_signals=keep_signals,
                )
                for channel, system in enumerate(self.systems)
            ]
            decoder = FleetDecoder(
                batch_size=batch_size, workers=fleet_workers
            )
            return MultiChannelResult(per_channel=decoder.run(tasks))
        result = MultiChannelResult()
        for channel, system in enumerate(self.systems):
            result.per_channel.append(
                system.stream(
                    record,
                    channel=channel,
                    max_packets=max_packets,
                    keep_signals=keep_signals,
                    batch_size=batch_size,
                )
            )
        return result
