"""On-air packet format of the CS-ECG link.

Every 2-second window produces one packet:

====== ======================= =======================================
field   size                    meaning
====== ======================= =======================================
sync    8 bits (``0xA5``)       frame delimiter
kind    8 bits                  1 = keyframe, 2 = difference
seq     16 bits                 packet sequence number (mod 65536)
m       16 bits                 measurement count (sanity check)
nbits   32 bits                 payload length in bits
payload ``ceil(nbits/8)`` bytes keyframe: 16-bit signed raw values;
                                difference: Huffman codewords
crc     16 bits                 CRC-16/CCITT over header + payload
====== ======================= =======================================

Keyframes carry raw 16-bit quantized measurements (they are rare — one
every ``keyframe_interval`` packets — and must be decodable without
history).  Difference packets carry the Huffman bitstream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import PacketFormatError

SYNC_BYTE = 0xA5
HEADER_BYTES = 1 + 1 + 2 + 2 + 4
CRC_BYTES = 2


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021), the standard small-MCU CRC."""
    crc = initial
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


class PacketKind(enum.IntEnum):
    """Packet payload type."""

    KEYFRAME = 1
    DIFFERENCE = 2


@dataclass(frozen=True)
class EncodedPacket:
    """One encoded 2-second ECG window, ready for the radio."""

    kind: PacketKind
    sequence: int
    m: int
    payload: bytes
    payload_bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.sequence < 1 << 16:
            raise PacketFormatError(f"sequence out of range: {self.sequence}")
        if not 0 < self.m < 1 << 16:
            raise PacketFormatError(f"m out of range: {self.m}")
        if self.payload_bits < 0 or (self.payload_bits + 7) // 8 > len(self.payload):
            raise PacketFormatError(
                f"payload_bits {self.payload_bits} inconsistent with "
                f"{len(self.payload)} payload bytes"
            )

    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Full on-air size (header + payload + CRC) in bits."""
        return 8 * (HEADER_BYTES + len(self.payload) + CRC_BYTES)

    def header_bytes(self) -> bytes:
        """Serialize the header fields."""
        return bytes(
            [
                SYNC_BYTE,
                int(self.kind),
                (self.sequence >> 8) & 0xFF,
                self.sequence & 0xFF,
                (self.m >> 8) & 0xFF,
                self.m & 0xFF,
                (self.payload_bits >> 24) & 0xFF,
                (self.payload_bits >> 16) & 0xFF,
                (self.payload_bits >> 8) & 0xFF,
                self.payload_bits & 0xFF,
            ]
        )

    def to_bytes(self) -> bytes:
        """Full wire representation with trailing CRC."""
        body = self.header_bytes() + self.payload
        crc = crc16_ccitt(body)
        return body + bytes([(crc >> 8) & 0xFF, crc & 0xFF])

    # ------------------------------------------------------------------
    @classmethod
    def from_bytes(cls, data: bytes) -> "EncodedPacket":
        """Parse and CRC-check one wire packet."""
        if len(data) < HEADER_BYTES + CRC_BYTES:
            raise PacketFormatError(
                f"packet too short: {len(data)} bytes"
            )
        if data[0] != SYNC_BYTE:
            raise PacketFormatError(
                f"bad sync byte 0x{data[0]:02X} (expected 0x{SYNC_BYTE:02X})"
            )
        try:
            kind = PacketKind(data[1])
        except ValueError as exc:
            raise PacketFormatError(f"unknown packet kind {data[1]}") from exc
        sequence = (data[2] << 8) | data[3]
        m = (data[4] << 8) | data[5]
        payload_bits = (data[6] << 24) | (data[7] << 16) | (data[8] << 8) | data[9]
        payload_bytes = (payload_bits + 7) // 8
        expected = HEADER_BYTES + payload_bytes + CRC_BYTES
        if len(data) != expected:
            raise PacketFormatError(
                f"packet length {len(data)} != expected {expected}"
            )
        body = data[:-CRC_BYTES]
        crc_received = (data[-2] << 8) | data[-1]
        crc_computed = crc16_ccitt(body)
        if crc_received != crc_computed:
            raise PacketFormatError(
                f"CRC mismatch: got 0x{crc_received:04X}, "
                f"computed 0x{crc_computed:04X}"
            )
        payload = data[HEADER_BYTES:-CRC_BYTES]
        return cls(
            kind=kind,
            sequence=sequence,
            m=m,
            payload=payload,
            payload_bits=payload_bits,
        )


def pack_keyframe_values(values: np.ndarray) -> tuple[bytes, int]:
    """Serialize keyframe measurements as big-endian int16."""
    v = np.asarray(values)
    if v.size and (v.max() > 32767 or v.min() < -32768):
        raise PacketFormatError("keyframe value outside int16 range")
    payload = v.astype(">i2").tobytes()
    return payload, 16 * v.size


def unpack_keyframe_values(payload: bytes, count: int) -> np.ndarray:
    """Deserialize keyframe measurements."""
    if len(payload) < 2 * count:
        raise PacketFormatError(
            f"keyframe payload too short: {len(payload)} bytes for {count} values"
        )
    return np.frombuffer(payload[: 2 * count], dtype=">i2").astype(np.int64)
