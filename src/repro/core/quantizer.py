"""Measurement quantization between sensing and entropy coding.

The node's integer measurement ``y_int = sum of selected samples``
(sparse binary sensing with the ``1/sqrt(d)`` scale deferred to the
decoder) spans a few thousand adu.  To make consecutive-packet
differences fit the paper's ``[-256, 255]`` codebook range, the encoder
right-shifts the accumulator by a small number of bits with rounding —
a one-instruction operation on the MSP430.  The decoder multiplies back
and folds in the deferred ``1/sqrt(d)``.

The default ``shift = 4`` was chosen empirically on the synthetic
corpus: the 99th percentile of shifted differences stays inside the
codebook range at every evaluated compression ratio (see
``tests/core/test_quantizer.py``), mirroring how the paper's fixed
codebook was sized offline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..utils import check_integer_array


@dataclass(frozen=True)
class MeasurementQuantizer:
    """Shift-with-rounding quantizer and its exact inverse model.

    Parameters
    ----------
    shift:
        Right-shift amount in bits (step ``2**shift`` adu).
    d:
        Sparse-binary column weight; the decoder's dequantization folds
        the deferred ``1/sqrt(d)`` scale so dequantized values live on
        the float measurement scale ``y = Phi x``.
    """

    shift: int = 4
    d: int = 12

    def __post_init__(self) -> None:
        if not 0 <= self.shift <= 12:
            raise ConfigurationError(f"shift must be in [0, 12], got {self.shift}")
        if self.d < 1:
            raise ConfigurationError(f"d must be >= 1, got {self.d}")

    @property
    def step(self) -> int:
        """Quantization step in accumulator units."""
        return 1 << self.shift

    def quantize(self, y_int: np.ndarray) -> np.ndarray:
        """Accumulator -> quantized integers (round-half-away rounding).

        Implemented as ``(y + step/2) >> shift`` for non-negative values
        and symmetrically for negatives, matching a two-instruction
        firmware sequence.  Shape-agnostic: a ``(B, m)`` block of
        stacked measurement windows quantizes in one call, exactly
        row-for-row what per-window calls would produce.
        """
        y = check_integer_array(np.asarray(y_int), "y_int").astype(np.int64)
        if self.shift == 0:
            return y.copy()
        half = self.step // 2
        magnitude = (np.abs(y) + half) >> self.shift
        return np.where(y < 0, -magnitude, magnitude).astype(np.int64)

    def dequantize(self, y_q: np.ndarray) -> np.ndarray:
        """Quantized integers -> float measurements on the ``Phi x`` scale.

        ``y = y_q * 2**shift / sqrt(d)`` — the decoder-side inverse
        including the deferred sparse-binary scale.
        """
        y = check_integer_array(np.asarray(y_q), "y_q").astype(np.float64)
        return y * (self.step / math.sqrt(self.d))

    def noise_std(self) -> float:
        """Std of the quantization error on the ``Phi x`` scale.

        Uniform rounding error over one step: ``step / sqrt(12)``,
        divided by ``sqrt(d)`` like the signal itself.
        """
        return self.step / math.sqrt(12.0) / math.sqrt(self.d)
