"""End-to-end streaming: node encoder -> (wire) -> coordinator decoder.

:class:`EcgMonitorSystem` packages the full pipeline for evaluation: it
takes a :class:`~repro.ecg.records.Record`, resamples it to the node
rate, digitizes it, streams every N-sample window through the encoder
and decoder, and collects per-packet and aggregate metrics (CR, PRD,
SNR, FISTA iterations, wall-clock decode time).  All the paper's
figure-level sweeps are thin loops over this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..coding import Codebook
from ..config import SystemConfig
from ..ecg.records import Record
from ..ecg.resample import resample_record
from ..metrics import compression_ratio, prd, snr_from_prd
from .decoder import CSDecoder, DecodedPacket
from .encoder import CSEncoder
from .packets import EncodedPacket, PacketKind


@dataclass(frozen=True)
class PacketResult:
    """Metrics of one encoded+decoded window."""

    sequence: int
    is_keyframe: bool
    packet_bits: int
    prd_percent: float
    snr_db: float
    iterations: int
    decode_seconds: float


def window_metrics(
    window_adu: np.ndarray,
    packet: EncodedPacket,
    samples_adu: np.ndarray,
    iterations: int,
    decode_seconds: float,
    dc_offset: int,
) -> PacketResult:
    """Per-window metrics from raw reconstruction arrays.

    The lowest-level assembly step: the serial and batched streams feed
    it via :func:`packet_result`; the fleet engine calls it directly
    because a sharded worker ships back plain arrays, not
    :class:`~repro.core.decoder.DecodedPacket` objects.
    """
    centered_original = window_adu.astype(np.float64) - dc_offset
    centered_reconstruction = samples_adu - dc_offset
    packet_prd = prd(centered_original, centered_reconstruction)
    return PacketResult(
        sequence=packet.sequence,
        is_keyframe=packet.kind is PacketKind.KEYFRAME,
        packet_bits=packet.total_bits,
        prd_percent=packet_prd,
        snr_db=snr_from_prd(packet_prd),
        iterations=iterations,
        decode_seconds=decode_seconds,
    )


def packet_result(
    window_adu: np.ndarray,
    packet: EncodedPacket,
    decoded: DecodedPacket,
    dc_offset: int,
) -> PacketResult:
    """Per-window metrics shared by the serial and batched streams."""
    return window_metrics(
        window_adu,
        packet,
        decoded.samples_adu,
        decoded.iterations,
        decoded.decode_seconds,
        dc_offset,
    )


@dataclass
class StreamResult:
    """Aggregate outcome of streaming one record channel."""

    record: str
    channel: int
    config: SystemConfig
    packets: list[PacketResult] = field(default_factory=list)
    original_adu: np.ndarray | None = None
    reconstructed_adu: np.ndarray | None = None

    @property
    def num_packets(self) -> int:
        """Number of processed windows."""
        return len(self.packets)

    def _require_packets(self, metric: str) -> None:
        if not self.packets:
            raise ValueError(
                f"{metric} is undefined for a stream with zero packets "
                f"(record {self.record!r}, channel {self.channel})"
            )

    @property
    def compression_ratio_percent(self) -> float:
        """Stream-level CR including headers and keyframes."""
        self._require_packets("compression_ratio_percent")
        total_bits = sum(p.packet_bits for p in self.packets)
        original = self.config.original_packet_bits * self.num_packets
        return compression_ratio(original, total_bits)

    @property
    def mean_prd_percent(self) -> float:
        """Average per-packet PRD."""
        self._require_packets("mean_prd_percent")
        return float(np.mean([p.prd_percent for p in self.packets]))

    @property
    def mean_snr_db(self) -> float:
        """Average per-packet output SNR."""
        self._require_packets("mean_snr_db")
        return float(np.mean([p.snr_db for p in self.packets]))

    @property
    def mean_iterations(self) -> float:
        """Average FISTA iterations per packet."""
        self._require_packets("mean_iterations")
        return float(np.mean([p.iterations for p in self.packets]))

    @property
    def mean_decode_seconds(self) -> float:
        """Average wall-clock decode time per packet (this machine)."""
        self._require_packets("mean_decode_seconds")
        return float(np.mean([p.decode_seconds for p in self.packets]))

    def whole_signal_prd(self) -> float:
        """PRD over the concatenated stream (DC-centered)."""
        if self.original_adu is None or self.reconstructed_adu is None:
            raise ValueError("stream was run without keep_signals=True")
        offset = 1 << (self.config.adc_bits - 1)
        return prd(
            self.original_adu - offset, self.reconstructed_adu - offset
        )


class EcgMonitorSystem:
    """A matched CS encoder/decoder pair operating on ECG records."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        codebook: Codebook | None = None,
        precision: str = "float64",
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        self.encoder = CSEncoder(self.config, codebook=codebook)
        self.decoder = CSDecoder(
            self.config, codebook=self.encoder.codebook, precision=precision
        )

    # ------------------------------------------------------------------
    def calibrate(self, record: Record, channel: int = 0, windows: int = 30) -> None:
        """Train the Huffman codebook on the first windows of a record."""
        samples = self._prepare_samples(record, channel)
        available = len(samples) // self.config.n
        use = min(windows, available)
        windows_adu = [
            samples[i * self.config.n : (i + 1) * self.config.n]
            for i in range(use)
        ]
        codebook = self.encoder.train_codebook_on(windows_adu)
        self.decoder.codebook = codebook
        self.encoder.reset()
        self.decoder.reset()

    # ------------------------------------------------------------------
    def _prepare_samples(self, record: Record, channel: int) -> np.ndarray:
        """Resample to the node rate and digitize one channel."""
        if abs(record.fs_hz - self.config.sample_rate_hz) > 1e-9:
            record = resample_record(record, float(self.config.sample_rate_hz))
        return record.adc.digitize(record.channel(channel))

    def stream(
        self,
        record: Record,
        channel: int = 0,
        max_packets: int | None = None,
        keep_signals: bool = False,
        batch_size: int | None = None,
    ) -> StreamResult:
        """Stream one record channel through the full system.

        ``batch_size=None`` (or 1) runs the serial reference loop —
        one packet encoded and decoded at a time, exactly the paper's
        real-time pipeline.  ``batch_size=B`` hands the whole record to
        the batched engine (:mod:`repro.core.batch`): vectorized
        sensing, batched differencing and ``B`` windows per
        batched-FISTA solve, with bit-identical packets and matching
        metrics.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_packets is not None and max_packets < 1:
            raise ValueError(
                f"max_packets={max_packets} requests no windows; "
                "need at least 1 packet to stream"
            )
        if batch_size is not None and batch_size > 1:
            from .batch import stream_batched

            return stream_batched(
                self,
                record,
                channel=channel,
                max_packets=max_packets,
                keep_signals=keep_signals,
                batch_size=batch_size,
            )
        samples = self._prepare_samples(record, channel)
        n = self.config.n
        num_windows = len(samples) // n
        if max_packets is not None:
            num_windows = min(num_windows, max_packets)
        if num_windows == 0:
            raise ValueError(
                f"record too short: {len(samples)} samples < one window of {n}"
            )

        self.encoder.reset()
        self.decoder.reset()
        offset = self.encoder.dc_offset

        result = StreamResult(record=record.name, channel=channel, config=self.config)
        reconstructed: list[np.ndarray] = []
        originals: list[np.ndarray] = []

        for index in range(num_windows):
            window = samples[index * n : (index + 1) * n]
            packet = self.encoder.encode(window)
            decoded = self.decoder.decode(packet)
            result.packets.append(packet_result(window, packet, decoded, offset))
            if keep_signals:
                originals.append(window.astype(np.float64))
                reconstructed.append(decoded.samples_adu)

        if keep_signals:
            result.original_adu = np.concatenate(originals)
            result.reconstructed_adu = np.concatenate(reconstructed)
        return result

    # ------------------------------------------------------------------
    def roundtrip_window(self, samples_adu: np.ndarray) -> tuple[EncodedPacket, np.ndarray]:
        """Encode and decode a single window (quickstart helper)."""
        self.encoder.reset()
        self.decoder.reset()
        packet = self.encoder.encode(np.asarray(samples_adu))
        decoded = self.decoder.decode(packet)
        return packet, decoded.samples_adu
