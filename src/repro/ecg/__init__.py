"""Physiological ECG substrate.

The paper evaluates on the MIT-BIH Arrhythmia Database (48 half-hour
two-channel records, 360 Hz, 11-bit over 10 mV).  PhysioNet is not
reachable from this workspace, so this package synthesizes a
corpus with the same interface and the same signal properties that CS
compression exploits (wavelet-domain sparsity, quasi-periodicity,
realistic noise and rhythm disturbances):

- :mod:`repro.ecg.synthesis` — the ECGSYN dynamical model (McSharry,
  Clifford, Tarassenko & Smith 2003) with its bimodal-spectrum RR
  process, integrated with fixed-step RK4;
- :mod:`repro.ecg.rhythms` — a per-beat Gaussian-template engine with
  rhythm presets (normal sinus, PVCs, bigeminy, APCs, atrial
  fibrillation, paced) used to build arrhythmia records quickly;
- :mod:`repro.ecg.noise` — baseline wander, muscle artifact, mains hum
  and electrode-motion transients;
- :mod:`repro.ecg.records` / :mod:`repro.ecg.database` — MIT-BIH-style
  records (names, annotations, 11-bit ADC) and the 48-record corpus;
- :mod:`repro.ecg.resample` — the 360 -> 256 Hz polyphase resampler the
  paper applies before feeding the Shimmer;
- :mod:`repro.ecg.qrs` — a light Pan–Tompkins QRS detector used for
  validation and diagnostic-quality checks.
"""

from .synthesis import EcgSynParameters, WaveParameters, ecgsyn, rr_process
from .rhythms import (
    Beat,
    BeatTemplate,
    RhythmModel,
    NormalSinus,
    OccasionalPvc,
    Bigeminy,
    OccasionalApc,
    AtrialFibrillation,
    Paced,
    render_beats,
)
from .noise import NoiseModel, NoiseRecipe
from .records import Annotation, Record, AdcSpec
from .database import SyntheticMitBih, RECORD_NAMES
from .resample import resample_record, resample_signal
from .qrs import detect_qrs
from .holter import HolterPlan, HolterPlanner

__all__ = [
    "EcgSynParameters",
    "WaveParameters",
    "ecgsyn",
    "rr_process",
    "Beat",
    "BeatTemplate",
    "RhythmModel",
    "NormalSinus",
    "OccasionalPvc",
    "Bigeminy",
    "OccasionalApc",
    "AtrialFibrillation",
    "Paced",
    "render_beats",
    "NoiseModel",
    "NoiseRecipe",
    "Annotation",
    "Record",
    "AdcSpec",
    "SyntheticMitBih",
    "RECORD_NAMES",
    "resample_record",
    "resample_signal",
    "detect_qrs",
    "HolterPlan",
    "HolterPlanner",
]
