"""The 48-record synthetic MIT-BIH-like corpus.

Record names match the real MIT-BIH Arrhythmia Database.  Each name maps
deterministically to a rhythm preset, a morphology scale, and a noise
recipe, so ``SyntheticMitBih().load("100")`` always produces the same
two-channel, 360 Hz, 11-bit record.  Generated records are cached in
memory; duration is configurable (the real corpus is 30 minutes per
record — full length is available, but the evaluation sweeps default to
shorter excerpts for tractable runtimes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import check_positive, derive_seed, rng_from
from .noise import NoiseModel, NoiseRecipe
from .records import AdcSpec, Annotation, Record
from .rhythms import (
    AtrialFibrillation,
    Bigeminy,
    NormalSinus,
    OccasionalApc,
    OccasionalPvc,
    Paced,
    RhythmModel,
    render_beats,
)

#: The 48 record names of the MIT-BIH Arrhythmia Database.
RECORD_NAMES: tuple[str, ...] = (
    "100", "101", "102", "103", "104", "105", "106", "107",
    "108", "109", "111", "112", "113", "114", "115", "116",
    "117", "118", "119", "121", "122", "123", "124", "200",
    "201", "202", "203", "205", "207", "208", "209", "210",
    "212", "213", "214", "215", "217", "219", "220", "221",
    "222", "223", "228", "230", "231", "232", "233", "234",
)


@dataclass(frozen=True)
class RecordProfile:
    """Generation profile of one record."""

    rhythm: RhythmModel
    noise: NoiseRecipe
    amplitude_scale: float = 1.0


def _profile_for(name: str) -> RecordProfile:
    """Deterministic rhythm/noise assignment per record name.

    The assignment loosely follows the character of the real records
    (102/104/107/217 are paced; 106/119/200/203/208/221/228/233 are
    PVC-rich; 201/202/210/219/222 contain atrial fibrillation; 209/220/
    222/232 contain APCs), with per-record parameter variation derived
    from the name.
    """
    rng = rng_from(derive_seed(2011, "profile", name))
    hr = float(rng.uniform(58.0, 92.0))
    paced = {"102", "104", "107", "217"}
    pvc_rich = {"106", "119", "200", "203", "208", "221", "228", "233"}
    bigeminy = {"119", "106"}
    afib = {"201", "202", "210", "219", "222"}
    apc = {"209", "220", "232", "223"}

    rhythm: RhythmModel
    if name in paced:
        rhythm = Paced(rate_bpm=float(rng.uniform(68.0, 75.0)))
    elif name in bigeminy:
        rhythm = Bigeminy(mean_hr_bpm=hr)
    elif name in pvc_rich:
        rhythm = OccasionalPvc(
            mean_hr_bpm=hr, pvc_probability=float(rng.uniform(0.05, 0.15))
        )
    elif name in afib:
        rhythm = AtrialFibrillation(mean_hr_bpm=float(rng.uniform(80.0, 110.0)))
    elif name in apc:
        rhythm = OccasionalApc(
            mean_hr_bpm=hr, apc_probability=float(rng.uniform(0.04, 0.10))
        )
    else:
        rhythm = NormalSinus(
            mean_hr_bpm=hr, hrv_fraction=float(rng.uniform(0.02, 0.06))
        )

    # Noisier records get motion artifacts (105/108 are famously noisy).
    noisy = {"105", "108", "203", "228"}
    noise = NoiseRecipe(
        baseline_wander_mv=float(rng.uniform(0.04, 0.12)),
        muscle_mv=float(rng.uniform(0.008, 0.03)),
        powerline_mv=float(rng.uniform(0.0, 0.015)),
        powerline_hz=60.0,
        electrode_motion_mv=0.25 if name in noisy else 0.0,
        motion_events_per_minute=1.0 if name in noisy else 0.0,
    )
    scale = float(rng.uniform(0.85, 1.15))
    return RecordProfile(rhythm=rhythm, noise=noise, amplitude_scale=scale)


class SyntheticMitBih:
    """Deterministic, in-memory synthetic MIT-BIH corpus.

    Parameters
    ----------
    duration_s:
        Length of generated records (default 60 s; the real database has
        1800 s records and any value up to that is valid).
    fs_hz:
        Record sampling rate (360 Hz like MIT-BIH).
    seed:
        Global corpus seed; record streams derive from it by name.
    """

    def __init__(
        self,
        duration_s: float = 60.0,
        fs_hz: float = 360.0,
        seed: int = 2011,
    ) -> None:
        check_positive(duration_s, "duration_s")
        check_positive(fs_hz, "fs_hz")
        self.duration_s = float(duration_s)
        self.fs_hz = float(fs_hz)
        self.seed = int(seed)
        self._cache: dict[str, Record] = {}

    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """All 48 record names."""
        return RECORD_NAMES

    def subset(self, count: int, stride: int = 5) -> tuple[str, ...]:
        """A deterministic spread of ``count`` record names.

        Strided selection covers the corpus's rhythm diversity without
        loading all 48 records (used by the evaluation sweeps).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        picked = [RECORD_NAMES[(i * stride) % len(RECORD_NAMES)] for i in range(count)]
        # de-duplicate preserving order
        seen: dict[str, None] = {}
        for name in picked:
            seen.setdefault(name)
        names = list(seen)
        index = 0
        while len(names) < count and index < len(RECORD_NAMES):
            if RECORD_NAMES[index] not in seen:
                names.append(RECORD_NAMES[index])
                seen.setdefault(RECORD_NAMES[index])
            index += 1
        return tuple(names[:count])

    # ------------------------------------------------------------------
    def load(self, name: str) -> Record:
        """Generate (or fetch from cache) one record."""
        if name not in RECORD_NAMES:
            raise KeyError(
                f"unknown record {name!r}; valid names are the 48 MIT-BIH names"
            )
        cached = self._cache.get(name)
        if cached is not None:
            return cached

        profile = _profile_for(name)
        record_seed = derive_seed(self.seed, "record", name)
        beats = profile.rhythm.generate_beats(self.duration_s, record_seed)

        channels = []
        for lead in (0, 1):
            signal = render_beats(
                beats,
                self.duration_s,
                self.fs_hz,
                lead=lead,
                amplitude_scale=profile.amplitude_scale,
            )
            f_wave = profile.rhythm.fibrillatory_wave(
                self.duration_s, self.fs_hz, record_seed
            )
            if f_wave is not None:
                signal = signal + (f_wave if lead == 0 else 0.7 * f_wave)
            noise = NoiseModel(
                profile.noise, seed=derive_seed(record_seed, "noise", lead)
            )
            signal = signal + noise.render(len(signal), self.fs_hz)
            channels.append(signal)

        annotations = [
            Annotation(sample=int(round(b.r_time_s * self.fs_hz)), symbol=b.label)
            for b in beats
            if 0 <= int(round(b.r_time_s * self.fs_hz)) < int(self.duration_s * self.fs_hz)
        ]
        record = Record(
            name=name,
            fs_hz=self.fs_hz,
            signals_mv=np.vstack(channels),
            annotations=annotations,
            adc=AdcSpec(bits=11, range_mv=10.0),
            rhythm=profile.rhythm.name,
        )
        self._cache[name] = record
        return record

    def load_many(self, names: tuple[str, ...] | list[str]) -> list[Record]:
        """Load several records."""
        return [self.load(name) for name in names]

    def clear_cache(self) -> None:
        """Drop all cached records (frees memory in long sweeps)."""
        self._cache.clear()
