"""Holter session planning: multi-day monitoring budgets.

The paper's introduction motivates CS with 1-5 day Holter recordings.
:class:`HolterPlanner` turns the calibrated platform models into
deployment answers: how long does a battery last, how much data does a
session produce, does the session fit the node's SD card, and what
does compression buy — for any record mix and compression ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..config import SystemConfig
from ..errors import ConfigurationError
from ..platforms.shimmer import ShimmerNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.multichannel import MultiChannelResult
    from ..core.system import StreamResult


@dataclass(frozen=True)
class HolterPlan:
    """Projected budget of one monitoring session."""

    duration_hours: float
    mean_packet_bits: float
    node_power_mw: float
    battery_hours: float
    data_volume_mb: float
    lifetime_extension_percent: float

    @property
    def battery_limited(self) -> bool:
        """Whether the battery dies before the planned duration."""
        return self.battery_hours < self.duration_hours

    @property
    def battery_days(self) -> float:
        """Battery endurance in days."""
        return self.battery_hours / 24.0


@dataclass
class HolterPlanner:
    """Plan ambulatory sessions from the calibrated node model."""

    config: SystemConfig = field(default_factory=SystemConfig)
    node: ShimmerNode = field(default_factory=ShimmerNode)
    #: micro-SD capacity of the Shimmer (paper: up to 2 GB)
    sd_card_mb: float = 2048.0

    def plan(
        self, duration_hours: float, mean_packet_bits: float
    ) -> HolterPlan:
        """Project one session at a measured mean packet size."""
        if duration_hours <= 0:
            raise ConfigurationError(
                f"duration_hours must be positive, got {duration_hours}"
            )
        if mean_packet_bits < 0:
            raise ConfigurationError(
                f"mean_packet_bits must be >= 0, got {mean_packet_bits}"
            )
        power = self.node.compressed_power(self.config, mean_packet_bits)
        packets = duration_hours * 3600.0 / self.config.packet_seconds
        data_mb = packets * mean_packet_bits / 8.0 / 1e6
        return HolterPlan(
            duration_hours=duration_hours,
            mean_packet_bits=mean_packet_bits,
            node_power_mw=power.total_mw,
            battery_hours=self.node.lifetime_hours(power),
            data_volume_mb=data_mb,
            lifetime_extension_percent=self.node.lifetime_extension_percent(
                self.config, mean_packet_bits
            ),
        )

    def plan_from_stream(
        self,
        stream: "StreamResult | MultiChannelResult",
        duration_hours: float,
    ) -> HolterPlan:
        """Project a session from a *measured* stream's packet sizes.

        Accepts the outcome of either the serial or the batched decode
        engine (they produce bit-identical packets) and of single- or
        multi-lead streaming; for a multi-lead result the radio carries
        every lead, so the mean on-air bits per packet period is the sum
        over leads of each lead's mean packet size.
        """
        per_lead = getattr(stream, "per_channel", None)
        if per_lead is None:
            per_lead = [stream]
        if not per_lead or any(result.num_packets == 0 for result in per_lead):
            raise ConfigurationError(
                "cannot plan from a stream with zero packets"
            )
        mean_bits = sum(
            sum(p.packet_bits for p in result.packets) / result.num_packets
            for result in per_lead
        )
        return self.plan(duration_hours, mean_bits)

    def plan_uncompressed(self, duration_hours: float) -> HolterPlan:
        """The baseline: stream raw samples for the whole session."""
        raw_bits_per_packet = float(self.config.original_packet_bits)
        if duration_hours <= 0:
            raise ConfigurationError(
                f"duration_hours must be positive, got {duration_hours}"
            )
        power = self.node.streaming_power(self.config)
        packets = duration_hours * 3600.0 / self.config.packet_seconds
        return HolterPlan(
            duration_hours=duration_hours,
            mean_packet_bits=raw_bits_per_packet,
            node_power_mw=power.total_mw,
            battery_hours=self.node.lifetime_hours(power),
            data_volume_mb=packets * raw_bits_per_packet / 8.0 / 1e6,
            lifetime_extension_percent=0.0,
        )

    def fits_sd_card(self, plan: HolterPlan) -> bool:
        """Whether the session's data volume fits local storage."""
        return plan.data_volume_mb <= self.sd_card_mb

    def max_session_days(self, mean_packet_bits: float) -> float:
        """Longest battery-limited session at a given packet size."""
        plan = self.plan(24.0, mean_packet_bits)
        return plan.battery_hours / 24.0
