"""Ambulatory ECG noise models.

MIT-BIH records are ambulatory recordings; their characteristic
disturbances are what make ECG compression non-trivial.  Four standard
components are modeled (amplitudes in millivolts):

- **baseline wander** — respiration/electrode drift below ~0.5 Hz,
  synthesized as a few random low-frequency sinusoids;
- **muscle artifact (EMG)** — wideband noise, high-pass shaped;
- **powerline interference** — 50/60 Hz plus a weaker harmonic;
- **electrode motion** — sparse transient bumps, the hardest artifact.

Each component is deterministic given the seed, and a
:class:`NoiseRecipe` bundles per-record amplitudes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..utils import check_positive, rng_from


@dataclass(frozen=True)
class NoiseRecipe:
    """Per-record noise amplitudes (all in mV; zero disables a component)."""

    baseline_wander_mv: float = 0.08
    muscle_mv: float = 0.02
    powerline_mv: float = 0.01
    powerline_hz: float = 60.0
    electrode_motion_mv: float = 0.0
    motion_events_per_minute: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "baseline_wander_mv",
            "muscle_mv",
            "powerline_mv",
            "electrode_motion_mv",
            "motion_events_per_minute",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        check_positive(self.powerline_hz, "powerline_hz")


class NoiseModel:
    """Render the four noise components for a record."""

    def __init__(self, recipe: NoiseRecipe, seed: int = 0) -> None:
        self.recipe = recipe
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def baseline_wander(self, n: int, fs_hz: float) -> np.ndarray:
        """Sum of 3 slow sinusoids with random frequency/phase."""
        if self.recipe.baseline_wander_mv == 0:
            return np.zeros(n)
        rng = rng_from(self.seed, "baseline")
        t = np.arange(n) / fs_hz
        wander = np.zeros(n)
        for weight, band in ((1.0, (0.05, 0.15)), (0.6, (0.15, 0.30)), (0.3, (0.30, 0.45))):
            frequency = rng.uniform(*band)
            phase = rng.uniform(0.0, 2.0 * math.pi)
            wander += weight * np.sin(2.0 * math.pi * frequency * t + phase)
        wander /= np.max(np.abs(wander)) if np.max(np.abs(wander)) > 0 else 1.0
        return self.recipe.baseline_wander_mv * wander

    def muscle_artifact(self, n: int, fs_hz: float) -> np.ndarray:
        """High-pass-shaped white noise (first difference of white noise)."""
        if self.recipe.muscle_mv == 0:
            return np.zeros(n)
        rng = rng_from(self.seed, "muscle")
        white = rng.standard_normal(n + 1)
        shaped = np.diff(white)  # emphasizes high frequencies
        shaped /= np.std(shaped)
        return self.recipe.muscle_mv * shaped

    def powerline(self, n: int, fs_hz: float) -> np.ndarray:
        """Mains interference: fundamental plus a weak 2nd harmonic."""
        if self.recipe.powerline_mv == 0:
            return np.zeros(n)
        rng = rng_from(self.seed, "powerline")
        t = np.arange(n) / fs_hz
        phase = rng.uniform(0.0, 2.0 * math.pi)
        fundamental = np.sin(2.0 * math.pi * self.recipe.powerline_hz * t + phase)
        harmonic = 0.3 * np.sin(
            2.0 * math.pi * 2.0 * self.recipe.powerline_hz * t + 2.0 * phase
        )
        return self.recipe.powerline_mv * (fundamental + harmonic)

    def electrode_motion(self, n: int, fs_hz: float) -> np.ndarray:
        """Sparse, asymmetric transient bumps (electrode pops)."""
        if self.recipe.electrode_motion_mv == 0:
            return np.zeros(n)
        rng = rng_from(self.seed, "motion")
        duration_min = n / fs_hz / 60.0
        expected = self.recipe.motion_events_per_minute * duration_min
        count = int(rng.poisson(max(expected, 0.0)))
        signal = np.zeros(n)
        t = np.arange(n) / fs_hz
        for _ in range(count):
            center = rng.uniform(0.0, n / fs_hz)
            rise = rng.uniform(0.05, 0.2)
            decay = rng.uniform(0.3, 1.2)
            amplitude = self.recipe.electrode_motion_mv * rng.uniform(0.5, 1.5)
            sign = 1.0 if rng.uniform() < 0.5 else -1.0
            dt = t - center
            # exponent clipped at 0 on each side so np.where never
            # evaluates exp on a large positive argument
            bump = np.where(
                dt < 0,
                np.exp(np.minimum(dt, 0.0) / rise),
                np.exp(-np.maximum(dt, 0.0) / decay),
            )
            signal += sign * amplitude * bump
        return signal

    # ------------------------------------------------------------------
    def render(self, n: int, fs_hz: float) -> np.ndarray:
        """All components summed, length ``n`` at ``fs_hz``."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        check_positive(fs_hz, "fs_hz")
        return (
            self.baseline_wander(n, fs_hz)
            + self.muscle_artifact(n, fs_hz)
            + self.powerline(n, fs_hz)
            + self.electrode_motion(n, fs_hz)
        )
