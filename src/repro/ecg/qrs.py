"""Lightweight Pan–Tompkins-style QRS detector.

Used for validation (synthetic records must contain the scheduled
beats) and for diagnostic-quality assessment of reconstructed signals
(a clinically useful reconstruction preserves R-peak locations).

Pipeline: 5–15 Hz Butterworth band-pass -> derivative -> squaring ->
150 ms moving-window integration -> adaptive-threshold peak picking
with a 200 ms refractory period and local R-peak refinement on the
band-passed signal.
"""

from __future__ import annotations

import numpy as np
import scipy.signal

from ..utils import check_positive


def detect_qrs(
    signal_mv: np.ndarray,
    fs_hz: float,
    refractory_s: float = 0.2,
    threshold_fraction: float = 0.35,
) -> np.ndarray:
    """Return R-peak sample indices of a single-lead ECG."""
    x = np.asarray(signal_mv, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {x.shape}")
    check_positive(fs_hz, "fs_hz")
    if not 0 < threshold_fraction < 1:
        raise ValueError(
            f"threshold_fraction must be in (0,1), got {threshold_fraction}"
        )
    if len(x) < int(fs_hz):
        raise ValueError("signal must be at least 1 second long")

    nyquist = fs_hz / 2.0
    low = min(5.0 / nyquist, 0.95)
    high = min(15.0 / nyquist, 0.99)
    b, a = scipy.signal.butter(2, [low, high], btype="band")
    bandpassed = scipy.signal.filtfilt(b, a, x)

    derivative = np.gradient(bandpassed)
    squared = derivative**2
    window = max(1, int(round(0.150 * fs_hz)))
    integrated = np.convolve(squared, np.ones(window) / window, mode="same")

    threshold = threshold_fraction * float(np.percentile(integrated, 99))
    refractory = int(round(refractory_s * fs_hz))

    peaks: list[int] = []
    above = integrated > threshold
    i = 0
    n = len(integrated)
    while i < n:
        if above[i]:
            j = i
            while j < n and above[j]:
                j += 1
            # refine: maximum |bandpassed| inside the crossing region,
            # extended by half the integration window
            lo = max(0, i - window // 2)
            hi = min(n, j + window // 2)
            peak = lo + int(np.argmax(np.abs(bandpassed[lo:hi])))
            if not peaks or peak - peaks[-1] >= refractory:
                peaks.append(peak)
            elif np.abs(bandpassed[peak]) > np.abs(bandpassed[peaks[-1]]):
                peaks[-1] = peak
            i = j
        else:
            i += 1
    return np.asarray(peaks, dtype=np.int64)


def beat_match_rate(
    reference: np.ndarray,
    detected: np.ndarray,
    fs_hz: float,
    tolerance_s: float = 0.075,
) -> float:
    """Fraction of reference beats matched by a detection within tolerance."""
    reference = np.asarray(reference, dtype=np.int64)
    detected = np.asarray(detected, dtype=np.int64)
    if len(reference) == 0:
        return 1.0 if len(detected) == 0 else 0.0
    if len(detected) == 0:
        return 0.0
    tolerance = tolerance_s * fs_hz
    matched = 0
    for r in reference:
        nearest = detected[np.argmin(np.abs(detected - r))]
        if abs(int(nearest) - int(r)) <= tolerance:
            matched += 1
    return matched / len(reference)
