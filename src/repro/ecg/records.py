"""MIT-BIH-style record containers and the 11-bit ADC model.

MIT-BIH records are digitized at 360 Hz with 11-bit resolution over a
10 mV range (200 adu/mV gain, 1024 adu baseline offset).  :class:`Record`
stores physical-unit signals (mV) together with beat annotations, and
:class:`AdcSpec` converts between millivolts and the integer sample
values the encoder ingests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..utils import check_positive


@dataclass(frozen=True)
class AdcSpec:
    """Uniform quantizer specification of the recording front end."""

    bits: int = 11
    range_mv: float = 10.0
    #: adu value representing 0 mV (MIT-BIH uses mid-range, 1024).
    zero_offset: int = 1024

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 24:
            raise ValueError(f"bits must be in [1, 24], got {self.bits}")
        check_positive(self.range_mv, "range_mv")

    @property
    def levels(self) -> int:
        """Number of quantization levels (``2**bits``)."""
        return 1 << self.bits

    @property
    def gain_adu_per_mv(self) -> float:
        """Analog gain: adu per millivolt."""
        return self.levels / self.range_mv

    def digitize(self, millivolts: np.ndarray) -> np.ndarray:
        """mV -> integer adu with saturation at the converter rails."""
        adu = np.round(
            np.asarray(millivolts, dtype=np.float64) * self.gain_adu_per_mv
        ).astype(np.int64) + self.zero_offset
        return np.clip(adu, 0, self.levels - 1)

    def to_millivolts(self, adu: np.ndarray) -> np.ndarray:
        """Integer adu -> mV."""
        return (
            np.asarray(adu, dtype=np.float64) - self.zero_offset
        ) / self.gain_adu_per_mv


@dataclass(frozen=True)
class Annotation:
    """One annotated beat: sample index (at the record rate) and symbol."""

    sample: int
    symbol: str

    def __post_init__(self) -> None:
        if self.sample < 0:
            raise ValueError(f"sample must be >= 0, got {self.sample}")
        if not self.symbol:
            raise ValueError("symbol must be non-empty")


@dataclass
class Record:
    """A two-channel ECG record in physical units with annotations."""

    name: str
    fs_hz: float
    signals_mv: np.ndarray  # shape (channels, samples)
    annotations: list[Annotation] = field(default_factory=list)
    adc: AdcSpec = field(default_factory=AdcSpec)
    rhythm: str = "unknown"

    def __post_init__(self) -> None:
        check_positive(self.fs_hz, "fs_hz")
        signals = np.asarray(self.signals_mv, dtype=np.float64)
        if signals.ndim != 2:
            raise ValueError(
                f"signals_mv must be 2-D (channels, samples), got {signals.shape}"
            )
        self.signals_mv = signals

    @property
    def num_channels(self) -> int:
        """Number of leads (2 for MIT-BIH)."""
        return self.signals_mv.shape[0]

    @property
    def num_samples(self) -> int:
        """Samples per channel."""
        return self.signals_mv.shape[1]

    @property
    def duration_s(self) -> float:
        """Record duration in seconds."""
        return self.num_samples / self.fs_hz

    def channel(self, index: int) -> np.ndarray:
        """One lead in millivolts."""
        if not 0 <= index < self.num_channels:
            raise IndexError(f"channel {index} out of range")
        return self.signals_mv[index]

    def digitized(self, channel: int = 0) -> np.ndarray:
        """One lead as integer adu through the record's ADC."""
        return self.adc.digitize(self.channel(channel))

    def beat_samples(self, symbols: tuple[str, ...] | None = None) -> np.ndarray:
        """Annotation sample indices, optionally filtered by symbol."""
        if symbols is None:
            picked = [a.sample for a in self.annotations]
        else:
            wanted = set(symbols)
            picked = [a.sample for a in self.annotations if a.symbol in wanted]
        return np.asarray(picked, dtype=np.int64)
