"""Sampling-rate conversion: the paper's 360 Hz -> 256 Hz front end.

The MIT-BIH records (360 Hz) are "re-sampled at 256 Hz" before being
fed to the Shimmer over its serial port (Section IV-A1).  The conversion
360 -> 256 is the rational ratio 32/45, implemented as a polyphase
up-by-32 / FIR low-pass / down-by-45 chain via
:func:`scipy.signal.resample_poly` (Kaiser-windowed anti-aliasing FIR).
"""

from __future__ import annotations

import math

import numpy as np
import scipy.signal

from ..utils import check_positive
from .records import Record


def rational_ratio(fs_in: float, fs_out: float) -> tuple[int, int]:
    """Reduced ``(up, down)`` integers for a rate conversion."""
    check_positive(fs_in, "fs_in")
    check_positive(fs_out, "fs_out")
    # Work on a milli-hertz grid so non-integer rates are representable.
    up = int(round(fs_out * 1000))
    down = int(round(fs_in * 1000))
    divisor = math.gcd(up, down)
    return up // divisor, down // divisor


def resample_signal(
    signal: np.ndarray, fs_in: float, fs_out: float
) -> np.ndarray:
    """Resample a 1-D signal between arbitrary rational rates."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {signal.shape}")
    if signal.size < 2:
        raise ValueError("signal must have at least 2 samples")
    up, down = rational_ratio(fs_in, fs_out)
    if up == down:
        return signal.copy()
    return scipy.signal.resample_poly(signal, up, down)


def resample_record(record: Record, fs_out: float = 256.0) -> Record:
    """Resample all channels of a record; annotations are re-indexed."""
    check_positive(fs_out, "fs_out")
    channels = [
        resample_signal(record.channel(i), record.fs_hz, fs_out)
        for i in range(record.num_channels)
    ]
    ratio = fs_out / record.fs_hz
    annotations = [
        type(a)(sample=int(round(a.sample * ratio)), symbol=a.symbol)
        for a in record.annotations
        if int(round(a.sample * ratio)) < len(channels[0])
    ]
    return Record(
        name=record.name,
        fs_hz=fs_out,
        signals_mv=np.vstack(channels),
        annotations=annotations,
        adc=record.adc,
        rhythm=record.rhythm,
    )
