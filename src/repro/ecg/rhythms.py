"""Per-beat template engine and rhythm presets.

The MIT-BIH records contain arrhythmias (PVCs, APCs, bigeminy, atrial
fibrillation, paced rhythms).  To synthesize them deterministically and
quickly, each beat is rendered as a sum of Gaussian waves (P, Q, R, S, T)
anchored to the R-wave time, with per-beat-type morphology and rhythm
models that emit the beat schedule (R times, RR intervals, beat labels).

Wave timing follows physiology: P and QRS offsets are fixed relative to
R, while the T wave follows a Bazett-like sqrt(RR) scaling of the QT
interval.  Two simultaneous leads are produced from two morphology
tables (a lead-II-like and a V1-like projection).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..utils import check_positive, rng_from


@dataclass(frozen=True)
class GaussianWave:
    """One wave of a beat template, anchored to the R peak.

    ``offset_s`` is the wave-center offset from R (negative = before);
    waves marked ``scales_with_rr`` (the T wave) move as ``sqrt(RR)``.
    """

    amplitude_mv: float
    offset_s: float
    sigma_s: float
    scales_with_rr: bool = False

    def __post_init__(self) -> None:
        check_positive(self.sigma_s, "sigma_s")


@dataclass(frozen=True)
class BeatTemplate:
    """Morphology of one beat type on one lead."""

    label: str
    waves: tuple[GaussianWave, ...]

    def render_into(
        self,
        signal: np.ndarray,
        fs_hz: float,
        r_time_s: float,
        rr_s: float,
    ) -> None:
        """Add this beat to ``signal`` (in place), windowed for speed."""
        n = len(signal)
        rr_scale = math.sqrt(max(rr_s, 0.2))
        for wave in self.waves:
            offset = wave.offset_s * (rr_scale if wave.scales_with_rr else 1.0)
            center = r_time_s + offset
            half_window = 5.0 * wave.sigma_s
            start = max(0, int((center - half_window) * fs_hz))
            stop = min(n, int((center + half_window) * fs_hz) + 1)
            if stop <= start:
                continue
            t = np.arange(start, stop) / fs_hz
            signal[start:stop] += wave.amplitude_mv * np.exp(
                -((t - center) ** 2) / (2.0 * wave.sigma_s**2)
            )


def _normal_lead2() -> BeatTemplate:
    return BeatTemplate(
        label="N",
        waves=(
            GaussianWave(0.15, -0.17, 0.028),  # P
            GaussianWave(-0.12, -0.035, 0.010),  # Q
            GaussianWave(1.10, 0.0, 0.011),  # R
            GaussianWave(-0.28, 0.035, 0.011),  # S
            GaussianWave(0.32, 0.30, 0.055, scales_with_rr=True),  # T
        ),
    )


def _normal_v1() -> BeatTemplate:
    return BeatTemplate(
        label="N",
        waves=(
            GaussianWave(0.06, -0.17, 0.028),  # P (small, biphasic-ish)
            GaussianWave(0.25, -0.012, 0.010),  # r
            GaussianWave(-0.85, 0.020, 0.013),  # S (deep, rS pattern)
            GaussianWave(0.10, 0.30, 0.055, scales_with_rr=True),  # T
        ),
    )


def _pvc_lead2() -> BeatTemplate:
    return BeatTemplate(
        label="V",
        waves=(
            # no P wave; wide bizarre QRS; discordant (inverted) T
            GaussianWave(1.45, 0.0, 0.030),
            GaussianWave(-0.55, 0.075, 0.032),
            GaussianWave(-0.45, 0.34, 0.075, scales_with_rr=True),
        ),
    )


def _pvc_v1() -> BeatTemplate:
    return BeatTemplate(
        label="V",
        waves=(
            GaussianWave(-1.20, 0.0, 0.032),
            GaussianWave(0.40, 0.080, 0.035),
            GaussianWave(0.35, 0.34, 0.075, scales_with_rr=True),
        ),
    )


def _apc_lead2() -> BeatTemplate:
    return BeatTemplate(
        label="A",
        waves=(
            GaussianWave(0.10, -0.15, 0.022),  # earlier, smaller P
            GaussianWave(-0.12, -0.035, 0.010),
            GaussianWave(1.05, 0.0, 0.011),
            GaussianWave(-0.28, 0.035, 0.011),
            GaussianWave(0.30, 0.30, 0.055, scales_with_rr=True),
        ),
    )


def _apc_v1() -> BeatTemplate:
    return BeatTemplate(
        label="A",
        waves=(
            GaussianWave(0.04, -0.15, 0.022),
            GaussianWave(0.24, -0.012, 0.010),
            GaussianWave(-0.82, 0.020, 0.013),
            GaussianWave(0.10, 0.30, 0.055, scales_with_rr=True),
        ),
    )


def _af_lead2() -> BeatTemplate:
    return BeatTemplate(
        label="N",
        waves=(
            # conducted beat in AF: narrow QRS, no P wave
            GaussianWave(-0.12, -0.035, 0.010),
            GaussianWave(1.05, 0.0, 0.011),
            GaussianWave(-0.26, 0.035, 0.011),
            GaussianWave(0.28, 0.30, 0.055, scales_with_rr=True),
        ),
    )


def _af_v1() -> BeatTemplate:
    return BeatTemplate(
        label="N",
        waves=(
            GaussianWave(0.24, -0.012, 0.010),
            GaussianWave(-0.80, 0.020, 0.013),
            GaussianWave(0.10, 0.30, 0.055, scales_with_rr=True),
        ),
    )


def _paced_lead2() -> BeatTemplate:
    return BeatTemplate(
        label="/",
        waves=(
            GaussianWave(0.80, -0.045, 0.004),  # pacing spike
            GaussianWave(1.00, 0.0, 0.028),  # wide paced QRS
            GaussianWave(-0.40, 0.08, 0.030),
            GaussianWave(-0.35, 0.34, 0.070, scales_with_rr=True),
        ),
    )


def _paced_v1() -> BeatTemplate:
    return BeatTemplate(
        label="/",
        waves=(
            GaussianWave(0.60, -0.045, 0.004),
            GaussianWave(-0.95, 0.0, 0.030),
            GaussianWave(0.35, 0.08, 0.032),
            GaussianWave(0.30, 0.34, 0.070, scales_with_rr=True),
        ),
    )


#: Beat-type -> per-lead templates (lead II-like, V1-like).
TEMPLATES: dict[str, tuple[BeatTemplate, BeatTemplate]] = {
    "N": (_normal_lead2(), _normal_v1()),
    "V": (_pvc_lead2(), _pvc_v1()),
    "A": (_apc_lead2(), _apc_v1()),
    "N_af": (_af_lead2(), _af_v1()),
    "/": (_paced_lead2(), _paced_v1()),
}


@dataclass(frozen=True)
class Beat:
    """One scheduled beat: R-peak time, its RR interval and type label."""

    r_time_s: float
    rr_s: float
    label: str
    template_key: str = ""

    def key(self) -> str:
        """Template lookup key (defaults to the label)."""
        return self.template_key or self.label


class RhythmModel:
    """Base class: a rhythm emits the beat schedule for a record."""

    name = "abstract"

    def generate_beats(self, duration_s: float, seed: int) -> list[Beat]:
        """Return beats with ``0 <= r_time_s < duration_s``."""
        raise NotImplementedError

    def fibrillatory_wave(
        self, duration_s: float, fs_hz: float, seed: int
    ) -> np.ndarray | None:
        """Optional continuous atrial activity added to lead signals."""
        return None


@dataclass
class NormalSinus(RhythmModel):
    """Normal sinus rhythm with mild respiratory sinus arrhythmia."""

    mean_hr_bpm: float = 72.0
    hrv_fraction: float = 0.04
    name: str = "normal-sinus"

    def generate_beats(self, duration_s: float, seed: int) -> list[Beat]:
        check_positive(duration_s, "duration_s")
        rng = rng_from(seed, self.name)
        mean_rr = 60.0 / self.mean_hr_bpm
        beats: list[Beat] = []
        t = float(rng.uniform(0.1, 0.5))
        phase = rng.uniform(0.0, 2.0 * math.pi)
        while t < duration_s:
            respiratory = 1.0 + self.hrv_fraction * math.sin(
                2.0 * math.pi * 0.25 * t + phase
            )
            rr = mean_rr * respiratory * (1.0 + 0.01 * rng.standard_normal())
            rr = float(np.clip(rr, 0.3, 2.0))
            beats.append(Beat(r_time_s=t, rr_s=rr, label="N"))
            t += rr
        return beats


@dataclass
class OccasionalPvc(RhythmModel):
    """Sinus rhythm with random PVCs at a given per-beat probability."""

    mean_hr_bpm: float = 75.0
    pvc_probability: float = 0.08
    coupling_fraction: float = 0.55
    name: str = "occasional-pvc"

    def generate_beats(self, duration_s: float, seed: int) -> list[Beat]:
        rng = rng_from(seed, self.name)
        mean_rr = 60.0 / self.mean_hr_bpm
        beats: list[Beat] = []
        t = float(rng.uniform(0.1, 0.5))
        pending_compensation = False
        while t < duration_s:
            if pending_compensation:
                rr = 2.0 * mean_rr * (1.0 - self.coupling_fraction) * (
                    1.0 + 0.02 * rng.standard_normal()
                )
                label = "N"
                pending_compensation = False
            elif rng.uniform() < self.pvc_probability:
                rr = mean_rr * self.coupling_fraction * (
                    1.0 + 0.03 * rng.standard_normal()
                )
                label = "V"
                pending_compensation = True
            else:
                rr = mean_rr * (1.0 + 0.03 * rng.standard_normal())
                label = "N"
            rr = float(np.clip(rr, 0.25, 2.5))
            beats.append(Beat(r_time_s=t, rr_s=rr, label=label))
            t += rr
        return beats


@dataclass
class Bigeminy(RhythmModel):
    """Ventricular bigeminy: every other beat is a PVC."""

    mean_hr_bpm: float = 70.0
    coupling_fraction: float = 0.55
    name: str = "bigeminy"

    def generate_beats(self, duration_s: float, seed: int) -> list[Beat]:
        rng = rng_from(seed, self.name)
        mean_rr = 60.0 / self.mean_hr_bpm
        beats: list[Beat] = []
        t = float(rng.uniform(0.1, 0.5))
        is_pvc = False
        while t < duration_s:
            if is_pvc:
                rr = mean_rr * (2.0 - self.coupling_fraction) * (
                    1.0 + 0.02 * rng.standard_normal()
                )
                label = "V"
            else:
                rr = mean_rr * self.coupling_fraction * (
                    1.0 + 0.02 * rng.standard_normal()
                )
                label = "N"
            rr = float(np.clip(rr, 0.25, 2.5))
            beats.append(Beat(r_time_s=t, rr_s=rr, label=label))
            t += rr
            is_pvc = not is_pvc
        return beats


@dataclass
class OccasionalApc(RhythmModel):
    """Sinus rhythm with premature atrial contractions."""

    mean_hr_bpm: float = 68.0
    apc_probability: float = 0.06
    prematurity: float = 0.75
    name: str = "occasional-apc"

    def generate_beats(self, duration_s: float, seed: int) -> list[Beat]:
        rng = rng_from(seed, self.name)
        mean_rr = 60.0 / self.mean_hr_bpm
        beats: list[Beat] = []
        t = float(rng.uniform(0.1, 0.5))
        while t < duration_s:
            if rng.uniform() < self.apc_probability:
                rr = mean_rr * self.prematurity * (
                    1.0 + 0.03 * rng.standard_normal()
                )
                label = "A"
            else:
                rr = mean_rr * (1.0 + 0.03 * rng.standard_normal())
                label = "N"
            rr = float(np.clip(rr, 0.3, 2.0))
            beats.append(Beat(r_time_s=t, rr_s=rr, label=label))
            t += rr
        return beats


@dataclass
class AtrialFibrillation(RhythmModel):
    """AF: irregularly irregular RR, no P waves, fibrillatory baseline."""

    mean_hr_bpm: float = 95.0
    rr_spread: float = 0.22
    f_wave_amplitude_mv: float = 0.06
    f_wave_hz: float = 6.5
    name: str = "atrial-fibrillation"

    def generate_beats(self, duration_s: float, seed: int) -> list[Beat]:
        rng = rng_from(seed, self.name)
        mean_rr = 60.0 / self.mean_hr_bpm
        beats: list[Beat] = []
        t = float(rng.uniform(0.1, 0.4))
        while t < duration_s:
            # lognormal-like irregular ventricular response
            rr = mean_rr * float(
                np.exp(self.rr_spread * rng.standard_normal())
            )
            rr = float(np.clip(rr, 0.3, 2.2))
            beats.append(
                Beat(r_time_s=t, rr_s=rr, label="N", template_key="N_af")
            )
            t += rr
        return beats

    def fibrillatory_wave(
        self, duration_s: float, fs_hz: float, seed: int
    ) -> np.ndarray:
        rng = rng_from(seed, self.name, "f-wave")
        n = int(round(duration_s * fs_hz))
        t = np.arange(n) / fs_hz
        # frequency-modulated atrial activity
        fm = np.cumsum(
            2.0 * math.pi
            * (self.f_wave_hz + 0.5 * rng.standard_normal(n) / math.sqrt(fs_hz))
        ) / fs_hz
        am = 1.0 + 0.3 * np.sin(2.0 * math.pi * 0.15 * t + rng.uniform(0, 6.28))
        return self.f_wave_amplitude_mv * am * np.sin(fm)


@dataclass
class Paced(RhythmModel):
    """Fixed-rate ventricular pacing with sharp pacing spikes."""

    rate_bpm: float = 72.0
    jitter_fraction: float = 0.005
    name: str = "paced"

    def generate_beats(self, duration_s: float, seed: int) -> list[Beat]:
        rng = rng_from(seed, self.name)
        rr = 60.0 / self.rate_bpm
        beats: list[Beat] = []
        t = float(rng.uniform(0.1, 0.4))
        while t < duration_s:
            jitter = 1.0 + self.jitter_fraction * rng.standard_normal()
            interval = float(np.clip(rr * jitter, 0.3, 2.0))
            beats.append(Beat(r_time_s=t, rr_s=interval, label="/"))
            t += interval
        return beats


def render_beats(
    beats: list[Beat],
    duration_s: float,
    fs_hz: float,
    lead: int,
    amplitude_scale: float = 1.0,
) -> np.ndarray:
    """Render a beat schedule into a continuous single-lead signal (mV)."""
    check_positive(duration_s, "duration_s")
    check_positive(fs_hz, "fs_hz")
    if lead not in (0, 1):
        raise ValueError(f"lead must be 0 or 1, got {lead}")
    n = int(round(duration_s * fs_hz))
    signal = np.zeros(n)
    for beat in beats:
        templates = TEMPLATES.get(beat.key())
        if templates is None:
            raise KeyError(f"no template for beat type {beat.key()!r}")
        templates[lead].render_into(signal, fs_hz, beat.r_time_s, beat.rr_s)
    if amplitude_scale != 1.0:
        signal *= amplitude_scale
    return signal
