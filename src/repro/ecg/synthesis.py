"""ECGSYN: the McSharry–Clifford dynamical ECG model.

The model traces a trajectory around the unit circle in the ``(x, y)``
plane; angular velocity is set by an RR-interval process with the
standard bimodal (Mayer wave + respiratory) spectrum, and the ``z``
coordinate is pushed up and down by five Gaussian events (P, Q, R, S, T)
attached to fixed angles of the cycle:

    dx/dt = gamma * x - omega * y
    dy/dt = gamma * y + omega * x
    dz/dt = -sum_i a_i dtheta_i exp(-dtheta_i^2 / (2 b_i^2)) - (z - z0)

with ``gamma = 1 - sqrt(x^2+y^2)`` and ``dtheta_i = (theta - theta_i)``
wrapped to ``(-pi, pi]``.  Integration uses fixed-step RK4 (deterministic
and fast enough at 512 Hz internal rate).

This is the reference generator for morphologically faithful *normal
sinus* ECG; arrhythmia records come from the faster per-beat template
engine in :mod:`repro.ecg.rhythms`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..utils import check_positive, rng_from


@dataclass(frozen=True)
class WaveParameters:
    """One Gaussian event on the limit cycle (angle, amplitude, width)."""

    theta: float
    amplitude: float
    width: float

    def __post_init__(self) -> None:
        check_positive(self.width, "width")


#: Default PQRST parameters from McSharry et al. (2003), Table 1.
DEFAULT_WAVES: tuple[WaveParameters, ...] = (
    WaveParameters(theta=-math.pi / 3.0, amplitude=1.2, width=0.25),  # P
    WaveParameters(theta=-math.pi / 12.0, amplitude=-5.0, width=0.1),  # Q
    WaveParameters(theta=0.0, amplitude=30.0, width=0.1),  # R
    WaveParameters(theta=math.pi / 12.0, amplitude=-7.5, width=0.1),  # S
    WaveParameters(theta=math.pi / 2.0, amplitude=0.75, width=0.4),  # T
)


@dataclass(frozen=True)
class EcgSynParameters:
    """Full parameter set of the ECGSYN generator."""

    mean_hr_bpm: float = 60.0
    std_hr_bpm: float = 1.0
    lf_hf_ratio: float = 0.5
    lf_hz: float = 0.1
    hf_hz: float = 0.25
    lf_width_hz: float = 0.01
    hf_width_hz: float = 0.01
    waves: tuple[WaveParameters, ...] = field(default=DEFAULT_WAVES)
    internal_rate_hz: float = 512.0
    target_r_amplitude_mv: float = 1.1

    def __post_init__(self) -> None:
        check_positive(self.mean_hr_bpm, "mean_hr_bpm")
        if self.std_hr_bpm < 0:
            raise ValueError(f"std_hr_bpm must be >= 0, got {self.std_hr_bpm}")
        check_positive(self.lf_hz, "lf_hz")
        check_positive(self.hf_hz, "hf_hz")
        check_positive(self.internal_rate_hz, "internal_rate_hz")
        check_positive(self.target_r_amplitude_mv, "target_r_amplitude_mv")


def rr_process(
    parameters: EcgSynParameters,
    duration_s: float,
    seed: int = 0,
    resolution_hz: float = 8.0,
) -> np.ndarray:
    """RR tachogram with the bimodal LF/HF spectrum of ECGSYN.

    Returns RR interval values (seconds) sampled at ``resolution_hz``.
    The series is produced by shaping white noise with the square root
    of the target power spectrum and applying random phases, then scaled
    to the requested mean/std heart rate.
    """
    check_positive(duration_s, "duration_s")
    check_positive(resolution_hz, "resolution_hz")
    samples = max(16, int(round(duration_s * resolution_hz)))
    frequencies = np.fft.rfftfreq(samples, d=1.0 / resolution_hz)

    def gaussian_band(center: float, width: float, power: float) -> np.ndarray:
        return power / math.sqrt(2.0 * math.pi * width**2) * np.exp(
            -((frequencies - center) ** 2) / (2.0 * width**2)
        )

    sigma2_lf = parameters.lf_hf_ratio
    sigma2_hf = 1.0
    spectrum = gaussian_band(
        parameters.lf_hz, parameters.lf_width_hz, sigma2_lf
    ) + gaussian_band(parameters.hf_hz, parameters.hf_width_hz, sigma2_hf)

    rng = rng_from(seed, "rr-process", samples)
    phases = rng.uniform(0.0, 2.0 * math.pi, size=len(frequencies))
    amplitude = np.sqrt(spectrum)
    half_complex = amplitude * np.exp(1j * phases)
    half_complex[0] = 0.0
    if samples % 2 == 0:
        half_complex[-1] = np.abs(half_complex[-1])
    series = np.fft.irfft(half_complex, n=samples)

    std = float(np.std(series))
    if std > 0:
        series = series / std

    mean_rr = 60.0 / parameters.mean_hr_bpm
    # delta-method mapping of HR std to RR std around the mean
    std_rr = parameters.std_hr_bpm * mean_rr / parameters.mean_hr_bpm
    rr = mean_rr + std_rr * series
    return np.clip(rr, 0.2, 3.0)


def ecgsyn(
    duration_s: float,
    parameters: EcgSynParameters | None = None,
    fs_hz: float = 360.0,
    seed: int = 0,
) -> np.ndarray:
    """Generate ``duration_s`` seconds of single-lead ECG in millivolts.

    The trajectory is integrated by RK4 at ``parameters.internal_rate_hz``
    and then decimated/interpolated to ``fs_hz``.  Output amplitude is
    normalized so the R peak reaches ``target_r_amplitude_mv``.
    """
    if parameters is None:
        parameters = EcgSynParameters()
    check_positive(duration_s, "duration_s")
    check_positive(fs_hz, "fs_hz")

    dt = 1.0 / parameters.internal_rate_hz
    steps = int(round(duration_s * parameters.internal_rate_hz))
    if steps < 2:
        raise ValueError("duration too short for the internal rate")

    rr_resolution = 8.0
    rr = rr_process(parameters, duration_s + 2.0, seed=seed, resolution_hz=rr_resolution)
    rr_times = np.arange(len(rr)) / rr_resolution

    thetas = np.array([w.theta for w in parameters.waves])
    amplitudes = np.array([w.amplitude for w in parameters.waves])
    widths = np.array([w.width for w in parameters.waves])

    def derivative(state: np.ndarray, omega: float) -> np.ndarray:
        x, y, z = state
        gamma = 1.0 - math.sqrt(x * x + y * y)
        dx = gamma * x - omega * y
        dy = gamma * y + omega * x
        theta = math.atan2(y, x)
        dtheta = np.mod(theta - thetas + math.pi, 2.0 * math.pi) - math.pi
        dz = -float(
            np.sum(amplitudes * dtheta * np.exp(-(dtheta**2) / (2.0 * widths**2)))
        ) - 0.5 * z
        return np.array([dx, dy, dz])

    state = np.array([-1.0, 0.0, 0.0])
    trace = np.empty(steps)
    time_s = 0.0
    rr_index = 0
    for step in range(steps):
        # piecewise-constant omega from the RR series (held over ~125 ms)
        while rr_index + 1 < len(rr_times) and rr_times[rr_index + 1] <= time_s:
            rr_index += 1
        omega = 2.0 * math.pi / float(rr[rr_index])

        k1 = derivative(state, omega)
        k2 = derivative(state + 0.5 * dt * k1, omega)
        k3 = derivative(state + 0.5 * dt * k2, omega)
        k4 = derivative(state + dt * k3, omega)
        state = state + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        trace[step] = state[2]
        time_s += dt

    # resample to the requested rate by linear interpolation (the signal
    # was produced well above fs_hz, so aliasing is negligible)
    t_internal = np.arange(steps) * dt
    t_out = np.arange(int(round(duration_s * fs_hz))) / fs_hz
    signal = np.interp(t_out, t_internal, trace)

    signal = signal - np.median(signal)
    peak = float(np.max(np.abs(signal)))
    if peak > 0:
        signal = signal * (parameters.target_r_amplitude_mv / peak)
    return signal
