"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
package layout: configuration, coding (bitstream/Huffman), sensing,
solver, platform-model and real-time-simulation errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """A :class:`~repro.config.SystemConfig` (or related parameter set) is invalid."""


class CodingError(ReproError):
    """Base class for lossless-coding errors."""


class BitstreamError(CodingError):
    """Reading past the end of a bitstream or writing malformed fields."""


class CodebookError(CodingError):
    """A Huffman codebook is malformed, incomplete or violates its length limit."""


class DecodingError(CodingError):
    """A compressed payload cannot be decoded (corruption, truncation...)."""


class SensingError(ReproError, ValueError):
    """A sensing matrix is requested with invalid or unsatisfiable parameters."""


class SolverError(ReproError):
    """A reconstruction solver failed (bad operator, invalid parameters)."""


class ConvergenceWarning(RuntimeWarning):
    """A solver exhausted its iteration budget before meeting its tolerance."""


class PlatformModelError(ReproError, ValueError):
    """A platform cost/energy model received inconsistent parameters."""


class MemoryBudgetError(PlatformModelError):
    """A firmware image does not fit the target's RAM/flash budget."""


class RealTimeError(ReproError):
    """Base class for discrete-event real-time simulation errors."""


class BufferOverrunError(RealTimeError):
    """A producer overwrote data the consumer has not read yet."""


class BufferUnderrunError(RealTimeError):
    """A consumer requested data the producer has not written yet."""


class PacketFormatError(ReproError):
    """A serialized packet does not follow the on-air format."""


class ProtocolError(ReproError):
    """A gateway link violates the ingest wire protocol (bad frame,
    truncated stream, unsupported handshake...)."""


class TelemetryError(ReproError, ValueError):
    """A telemetry metric, snapshot or sink is used inconsistently
    (mismatched histogram buckets, malformed ring record, ...)."""
