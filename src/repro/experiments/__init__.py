"""Experiment drivers: one module per paper figure/claim.

Each driver is a plain function returning structured rows (dicts), so
the same code serves the pytest benchmarks, the examples, and the
EXPERIMENTS.md generation.  All drivers accept sizing knobs (records,
packets per record) so the test-suite can run them on tiny workloads.
"""

from .sweeps import SweepOutcome, run_cr_sweep, sweep_database
from .fig2 import run_fig2
from .fig6 import run_fig6
from .fig7 import run_fig7
from .fig8 import run_fig8
from .encoder_budget import run_encoder_budget
from .ablation_simd import run_simd_ablation
from .ablation_sensing import run_sensing_ablation
from .ablation_wavelet import run_wavelet_ablation, run_level_ablation
from .ablation_quantizer import run_quantizer_ablation
from .ablation_alternatives import (
    run_entropy_coder_ablation,
    run_sensing_structure_ablation,
)
from .reporting import render_table

__all__ = [
    "run_wavelet_ablation",
    "run_level_ablation",
    "run_quantizer_ablation",
    "run_entropy_coder_ablation",
    "run_sensing_structure_ablation",
    "SweepOutcome",
    "run_cr_sweep",
    "sweep_database",
    "run_fig2",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_encoder_budget",
    "run_simd_ablation",
    "run_sensing_ablation",
    "render_table",
]
