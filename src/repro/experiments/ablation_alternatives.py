"""Extension ablation: alternative entropy coders and sensing structures.

Two "what if" designs the paper's team could have shipped instead:

- **Rice coding** instead of the trained Huffman codebook — zero flash
  for tables (saves the 1.5 kB) at a small bit-rate cost;
- **LFSR-circulant sensing** instead of sparse binary — one stored row
  (66 B) instead of per-column index regeneration, at some recovery
  cost under aggressive undersampling.

Both are compared end to end at the paper's operating point.
"""

from __future__ import annotations

import numpy as np

from ..coding import RiceCoder
from ..config import SystemConfig
from ..core import CSEncoder
from ..ecg import SyntheticMitBih
from ..ecg.resample import resample_record
from ..metrics import prd as prd_metric
from ..sensing import LfsrCirculantMatrix, SparseBinaryMatrix
from ..solvers import fista, lambda_from_fraction
from ..solvers.lipschitz import lipschitz_constant
from ..wavelet import WaveletTransform
from .sweeps import sweep_database


def run_entropy_coder_ablation(
    record_name: str = "100",
    packets: int = 10,
    database: SyntheticMitBih | None = None,
) -> dict[str, float]:
    """Bits per difference packet: trained Huffman vs adaptive Rice."""
    database = database if database is not None else sweep_database()
    config = SystemConfig()
    record = resample_record(database.load(record_name), 256.0)
    samples = record.adc.digitize(record.channel(0))
    windows = [
        samples[i * config.n : (i + 1) * config.n]
        for i in range(min(packets + 1, len(samples) // config.n))
    ]

    encoder = CSEncoder(config)
    encoder.reset()
    encoder.encode(windows[0])  # keyframe primes the reference
    rice = RiceCoder()
    huffman_bits = 0
    rice_bits = 0
    count = 0
    for window in windows[1:]:
        y_q = encoder.measure(window)
        _, diff = encoder.codec.encode(y_q)
        values = [int(v) for v in diff]
        frequencies = [0] * encoder.codebook.num_symbols
        for value in values:
            frequencies[encoder.codebook.symbol_for(value)] += 1
        huffman_bits += int(encoder.codebook.code.expected_bits(frequencies))
        rice_bits += rice.encoded_bits(values)
        count += 1
    return {
        "packets": float(count),
        "huffman_bits_per_packet": huffman_bits / count,
        "rice_bits_per_packet": rice_bits / count,
        "rice_overhead_percent": (rice_bits / huffman_bits - 1.0) * 100.0,
        "huffman_flash_bytes": 1536.0,
        "rice_flash_bytes": 0.0,
    }


def run_sensing_structure_ablation(
    record_name: str = "100",
    packets: int = 6,
    nominal_crs: tuple[float, ...] = (50.0, 75.0),
    database: SyntheticMitBih | None = None,
) -> list[dict[str, float]]:
    """Recovery PRD of sparse binary vs LFSR-circulant sensing."""
    database = database if database is not None else sweep_database()
    base = SystemConfig()
    record = resample_record(database.load(record_name), 256.0)
    samples = record.adc.digitize(record.channel(0))
    transform = WaveletTransform(base.n, base.wavelet, base.levels)
    psi = transform.synthesis_matrix()

    rows: list[dict[str, float]] = []
    for nominal in nominal_crs:
        config = base.with_target_cr(nominal)
        matrices = {
            "sparse-binary": SparseBinaryMatrix(
                config.m, config.n, d=config.d, seed=config.seed
            ),
            "lfsr-circulant": LfsrCirculantMatrix(
                config.m, config.n, seed=config.seed
            ),
        }
        for name, phi in matrices.items():
            system = phi.matrix() @ psi
            lipschitz = lipschitz_constant(system)
            prds = []
            for index in range(min(packets, len(samples) // config.n)):
                x = samples[index * config.n : (index + 1) * config.n].astype(
                    np.float64
                ) - 1024
                y = phi.measure(x)
                lam = lambda_from_fraction(system, y, config.lam)
                result = fista(
                    system, y, lam,
                    max_iterations=config.max_iterations,
                    tolerance=config.tolerance,
                    lipschitz=lipschitz,
                )
                prds.append(
                    prd_metric(x, transform.inverse(result.coefficients))
                )
            rows.append(
                {
                    "matrix": name,
                    "nominal_cr": nominal,
                    "prd_percent": float(np.mean(prds)),
                    "storage_bits": float(phi.storage_bits()),
                }
            )
    return rows
