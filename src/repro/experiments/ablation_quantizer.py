"""Design-choice ablation: the measurement-quantizer shift.

The shift trades rate for distortion: a larger shift shrinks the
difference symbols (better compression, codebook safety) but injects
more quantization noise into the FISTA data-fidelity term.  This
ablation sweeps the shift at the paper's operating point, reporting
measured CR, PRD and the saturation rate of the difference coder — the
evidence behind the shift = 4 default.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import SystemConfig
from ..core import CSDecoder, CSEncoder
from ..core.quantizer import MeasurementQuantizer
from ..ecg import SyntheticMitBih
from ..ecg.resample import resample_record
from ..metrics import prd as prd_metric
from .sweeps import sweep_database


def run_quantizer_ablation(
    shifts: tuple[int, ...] = (0, 2, 3, 4, 5, 6),
    record_name: str = "100",
    packets: int = 10,
    database: SyntheticMitBih | None = None,
) -> list[dict[str, float]]:
    """Sweep the quantizer shift; returns one row per shift value."""
    database = database if database is not None else sweep_database()
    config = SystemConfig()
    record = resample_record(database.load(record_name), 256.0)
    samples = record.adc.digitize(record.channel(0))
    windows = [
        samples[i * config.n : (i + 1) * config.n]
        for i in range(min(packets, len(samples) // config.n))
    ]

    rows: list[dict[str, float]] = []
    for shift in shifts:
        encoder = CSEncoder(config)
        encoder.quantizer = MeasurementQuantizer(shift=shift, d=config.d)
        decoder = CSDecoder(config, codebook=encoder.codebook)
        decoder.quantizer = dataclasses.replace(
            decoder.quantizer, shift=shift
        )
        encoder.reset()
        decoder.reset()
        prds = []
        bits = 0
        for window in windows:
            packet = encoder.encode(window)
            bits += packet.total_bits
            decoded = decoder.decode(packet)
            original = window.astype(np.float64) - 1024
            prds.append(prd_metric(original, decoded.samples_adu - 1024))
        original_bits = config.original_packet_bits * len(windows)
        rows.append(
            {
                "shift": float(shift),
                "step_adu": float(1 << shift),
                "measured_cr": (original_bits - bits) / original_bits * 100.0,
                "prd_percent": float(np.mean(prds)),
                "saturation_percent": 100.0 * encoder.stats.saturation_fraction,
            }
        )
    return rows
