"""Section IV-A d-choice ablation: why d = 12.

Sweeps the sparse binary column weight d over recovery quality (SNR via
the full system) and MSP430 sensing time.  The paper: "d = 12 was
identified as the minimum value that [gives] the optimal trade-off
between execution time (... 82 ms) and recovery/reconstruction error."
Smaller d is proportionally faster but loses SNR; larger d costs time
with diminishing SNR returns.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import SystemConfig
from ..core import EcgMonitorSystem
from ..ecg import SyntheticMitBih
from ..platforms.msp430 import Msp430Model
from ..sensing import SparseBinaryMatrix, mutual_coherence
from .sweeps import sweep_database


def run_sensing_ablation(
    d_values: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 16, 24),
    nominal_cr: float = 50.0,
    records: tuple[str, ...] | None = None,
    packets_per_record: int = 8,
    database: SyntheticMitBih | None = None,
) -> list[dict[str, float]]:
    """SNR / time / storage trade-off over the column weight d."""
    database = database if database is not None else sweep_database()
    if records is None:
        records = database.subset(3)
    mcu = Msp430Model()
    calibration = database.load("100")

    rows: list[dict[str, float]] = []
    for d in d_values:
        config = replace(SystemConfig().with_target_cr(nominal_cr), d=d)
        system = EcgMonitorSystem(config)
        system.calibrate(calibration)
        snrs: list[float] = []
        for name in records:
            stream = system.stream(
                database.load(name), max_packets=packets_per_record
            )
            snrs.append(stream.mean_snr_db)
        matrix = SparseBinaryMatrix(config.m, config.n, d=d, seed=config.seed)
        rows.append(
            {
                "d": float(d),
                "snr_db": sum(snrs) / len(snrs),
                "sensing_time_ms": mcu.sensing_time_s(config) * 1e3,
                "coherence": mutual_coherence(matrix.matrix()),
                "additions_per_packet": float(matrix.additions_per_packet()),
            }
        )
    return rows
