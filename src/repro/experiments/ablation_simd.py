"""Figures 3-5 + Section V: the SIMD optimization ablation.

Reproduces the paper's low-level optimization story quantitatively:

- Figure 3: the three leftover-element strategies, ranked by modeled
  cycles (padding fastest, scalar epilogue slowest), with a functional
  equivalence check;
- Figure 4: if-conversion of the soft-threshold sign logic (branchy vs
  masked), cycles and numerical identity of the three prox variants;
- Figure 5: inner- vs outer-loop vectorization instruction counts for
  the paper's illustration (I=4, m=8, L=4) and for the real filter-bank
  shapes, plus the fused-vector variant for I < L;
- Section V: per-kernel scalar-vs-NEON cycle table for one FISTA
  iteration, the end-to-end speedup (paper: 2.43x) and the real-time
  iteration caps (paper: 800 vs 2000).
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..platforms.cortexa8 import AccessPattern, CortexA8Model, DecodePipeline
from ..platforms.kernels import (
    dwt_counts,
    idwt_counts,
    momentum_counts,
    prox_counts,
    sparse_matvec_float_counts,
)
from ..platforms.neon import (
    LeftoverStrategy,
    if_conversion_cycles,
    leftover_strategy_cycles,
    loop_nest_instruction_counts,
    simulate_leftover_strategies,
)
from ..solvers.prox import (
    soft_threshold,
    soft_threshold_branchy,
    soft_threshold_if_converted,
)
from ..utils import rng_from


def fig3_rows(
    sizes: tuple[int, ...] = (511, 513, 515, 1023)
) -> list[dict[str, object]]:
    """Leftover-strategy cycle comparison over awkward array sizes."""
    rows: list[dict[str, object]] = []
    for size in sizes:
        cycles = {
            strategy: leftover_strategy_cycles(size, strategy)
            for strategy in LeftoverStrategy
        }
        ranked = sorted(cycles, key=lambda s: cycles[s])
        rows.append(
            {
                "array_size": size,
                "padding_cycles": cycles[LeftoverStrategy.ARRAY_PADDING],
                "lane_cycles": cycles[LeftoverStrategy.LANE_BY_LANE],
                "scalar_cycles": cycles[LeftoverStrategy.SCALAR_EPILOGUE],
                "fastest": ranked[0].value,
            }
        )
    return rows


def fig3_equivalence(size: int = 515, seed: int = 3) -> float:
    """Max output deviation across leftover strategies (must be 0)."""
    rng = rng_from(seed, "fig3")
    a = rng.standard_normal(size).astype(np.float32)
    b = rng.standard_normal(size).astype(np.float32)
    c = rng.standard_normal(size).astype(np.float32)
    outputs = simulate_leftover_strategies(a, b, c)
    reference = outputs[LeftoverStrategy.ARRAY_PADDING]
    return max(
        float(np.max(np.abs(values - reference))) for values in outputs.values()
    )


def fig4_rows(n: int = 512) -> dict[str, float]:
    """If-conversion cycles + numerical identity of the prox variants."""
    rng = rng_from(7, "fig4")
    u = rng.standard_normal(n)
    threshold = 0.3
    base = soft_threshold(u, threshold)
    branchy = soft_threshold_branchy(u, threshold)
    masked = soft_threshold_if_converted(u, threshold)
    return {
        "branchy_cycles": if_conversion_cycles(n, vectorized=False),
        "vectorized_cycles": if_conversion_cycles(n, vectorized=True),
        "speedup": if_conversion_cycles(n, False) / if_conversion_cycles(n, True),
        "max_deviation": max(
            float(np.max(np.abs(branchy - base))),
            float(np.max(np.abs(masked - base))),
        ),
    }


def fig5_rows() -> list[dict[str, object]]:
    """Inner/outer/fused instruction counts (paper example + real shapes)."""
    rows: list[dict[str, object]] = []
    # the paper's illustration: I=4, m=8, L=4
    for outer, taps, label in ((4, 8, "paper-example"), (256, 8, "filter-bank"), (2, 8, "l1-small-I")):
        counts = loop_nest_instruction_counts(outer, taps, fused=True)
        rows.append(
            {
                "case": label,
                "outer_I": outer,
                "taps_m": taps,
                "outer_vector_macs": counts["outer"].vector_macs,
                "inner_vector_macs": counts["inner"].vector_macs,
                "inner_extra_adds": counts["inner"].extra_adds,
                "fused_macs": counts["fused"].vector_macs,
                "outer_wins": counts["outer"].cycles() <= counts["inner"].cycles(),
            }
        )
    return rows


def iteration_kernel_rows(
    config: SystemConfig | None = None,
) -> list[dict[str, object]]:
    """Per-kernel scalar vs NEON cycles of one FISTA iteration."""
    config = config if config is not None else SystemConfig()
    cpu = CortexA8Model()
    kernels = [
        ("idwt", idwt_counts(config), AccessPattern.STREAMING, False),
        ("dwt", dwt_counts(config), AccessPattern.STREAMING, False),
        ("sparse Phi v", sparse_matvec_float_counts(config), AccessPattern.GATHER, False),
        ("sparse Phi^T r", sparse_matvec_float_counts(config), AccessPattern.GATHER, False),
        ("prox (Fig 4)", prox_counts(config), AccessPattern.STREAMING, True),
        ("momentum", momentum_counts(config), AccessPattern.STREAMING, False),
    ]
    rows: list[dict[str, object]] = []
    for name, counts, pattern, branchy in kernels:
        scalar = cpu.kernel_cycles(counts, DecodePipeline.SCALAR_VFP, pattern, branchy)
        neon = cpu.kernel_cycles(counts, DecodePipeline.NEON_OPTIMIZED, pattern, branchy)
        rows.append(
            {
                "kernel": name,
                "scalar_cycles": scalar,
                "neon_cycles": neon,
                "speedup": scalar / neon if neon else float("inf"),
            }
        )
    return rows


def run_simd_ablation(config: SystemConfig | None = None) -> dict[str, object]:
    """The full ablation in one structure."""
    config = config if config is not None else SystemConfig()
    cpu = CortexA8Model()
    return {
        "fig3": fig3_rows(),
        "fig3_max_deviation": fig3_equivalence(),
        "fig4": fig4_rows(config.n),
        "fig5": fig5_rows(),
        "iteration_kernels": iteration_kernel_rows(config),
        "speedup_at_1000_iters": cpu.speedup(config, 1000.0),
        "max_iterations_scalar": cpu.max_realtime_iterations(
            config, DecodePipeline.SCALAR_VFP
        ),
        "max_iterations_neon": cpu.max_realtime_iterations(
            config, DecodePipeline.NEON_OPTIMIZED
        ),
    }
