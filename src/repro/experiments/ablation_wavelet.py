"""Design-choice ablation: the sparsifying basis Psi.

The paper fixes an orthonormal wavelet basis but does not name it; db4
at 5 levels is this reproduction's default.  This ablation justifies
the choice: SNR across wavelet families (Haar, Daubechies, symlets) and
decomposition depths at the paper's operating point, together with each
basis's k-term sparsity capture on raw ECG.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..core import EcgMonitorSystem
from ..ecg import SyntheticMitBih
from ..ecg.resample import resample_record
from ..wavelet import WaveletTransform, get_wavelet
from .sweeps import sweep_database


def run_wavelet_ablation(
    wavelets: tuple[str, ...] = ("haar", "db2", "db4", "db6", "db8", "sym4", "sym8"),
    records: tuple[str, ...] = ("100", "119"),
    packets_per_record: int = 5,
    database: SyntheticMitBih | None = None,
) -> list[dict[str, float]]:
    """SNR and sparsity capture per wavelet family at the default CR."""
    database = database if database is not None else sweep_database()
    calibration = database.load("100")

    # sparsity probe: energy captured by the 50 largest coefficients
    probe_record = resample_record(database.load("100"), 256.0)
    probe = probe_record.adc.digitize(probe_record.channel(0))[:512].astype(
        np.float64
    )
    probe -= probe.mean()

    rows: list[dict[str, float]] = []
    for name in wavelets:
        config = SystemConfig(wavelet=name, levels=None)
        transform = WaveletTransform(config.n, name, config.levels)
        system = EcgMonitorSystem(config)
        system.calibrate(calibration)
        snrs = []
        for record_name in records:
            stream = system.stream(
                database.load(record_name), max_packets=packets_per_record
            )
            snrs.append(stream.mean_snr_db)
        rows.append(
            {
                "wavelet": name,
                "filter_length": float(get_wavelet(name).length),
                "snr_db": float(np.mean(snrs)),
                "sparsity_50_capture": transform.sparsity_profile(probe, 50),
            }
        )
    return rows


def run_level_ablation(
    levels: tuple[int, ...] = (2, 3, 4, 5, 6),
    records: tuple[str, ...] = ("100",),
    packets_per_record: int = 5,
    database: SyntheticMitBih | None = None,
) -> list[dict[str, float]]:
    """SNR across decomposition depths for the default db4 basis."""
    database = database if database is not None else sweep_database()
    calibration = database.load("100")
    rows: list[dict[str, float]] = []
    for depth in levels:
        config = SystemConfig(levels=depth)
        system = EcgMonitorSystem(config)
        system.calibrate(calibration)
        snrs = []
        for record_name in records:
            stream = system.stream(
                database.load(record_name), max_packets=packets_per_record
            )
            snrs.append(stream.mean_snr_db)
        rows.append({"levels": float(depth), "snr_db": float(np.mean(snrs))})
    return rows
