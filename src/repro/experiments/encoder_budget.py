"""Section IV-A / V node-side claims: the encoder budget table.

Collects every quantitative statement the paper makes about the mote:

- sensing time of the three Phi implementation approaches, with the
  real-time verdict (approach 1 rejected as too slow; approach 3 runs
  in 82 ms);
- memory feasibility (6.5 kB RAM / 7.5 kB flash for the adopted design;
  the stored-Gaussian variant blows the 48 kB flash);
- encoder CPU usage (< 5 %);
- the node lifetime extension against uncompressed streaming
  (12.9 % at CR = 50 %), swept over CR.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..core import EcgMonitorSystem
from ..ecg import SyntheticMitBih
from ..platforms.memory import encoder_memory_map
from ..platforms.msp430 import Msp430Model, SensingApproach
from ..platforms.shimmer import ShimmerNode
from .sweeps import sweep_database


def approach_rows(config: SystemConfig | None = None) -> list[dict[str, object]]:
    """Sensing-approach comparison (time + memory feasibility)."""
    config = config if config is not None else SystemConfig()
    mcu = Msp430Model()
    rows: list[dict[str, object]] = []
    for approach in SensingApproach:
        memory = encoder_memory_map(
            config,
            store_gaussian_matrix=approach is SensingApproach.STORED_GAUSSIAN,
        )
        rows.append(
            {
                "approach": approach.value,
                "sensing_time_s": mcu.approach_time_s(config, approach),
                "realtime": mcu.is_real_time(config, approach),
                "flash_bytes": memory.flash_bytes(),
                "fits_memory": memory.fits(),
            }
        )
    return rows


def lifetime_rows(
    nominal_crs: tuple[float, ...] = (30.0, 40.0, 50.0, 60.0, 70.0),
    record_name: str = "100",
    packets: int = 15,
    database: SyntheticMitBih | None = None,
) -> list[dict[str, float]]:
    """Lifetime extension vs CR using measured packet sizes."""
    database = database if database is not None else sweep_database()
    node = ShimmerNode()
    record = database.load(record_name)
    rows: list[dict[str, float]] = []
    for nominal in nominal_crs:
        config = SystemConfig().with_target_cr(nominal)
        system = EcgMonitorSystem(config)
        system.calibrate(record)
        stream = system.stream(record, max_packets=packets)
        mean_bits = sum(p.packet_bits for p in stream.packets) / stream.num_packets
        rows.append(
            {
                "nominal_cr": nominal,
                "measured_cr": stream.compression_ratio_percent,
                "mean_packet_bits": mean_bits,
                "extension_percent": node.lifetime_extension_percent(
                    config, mean_bits
                ),
                "node_cpu_percent": node.cpu_usage_percent(config),
            }
        )
    # the paper's reference point: CR exactly 50 % of the original bits
    config = SystemConfig()
    rows.append(
        {
            "nominal_cr": 50.0,
            "measured_cr": 50.0,
            "mean_packet_bits": config.original_packet_bits * 0.5,
            "extension_percent": node.lifetime_extension_percent(
                config, config.original_packet_bits * 0.5
            ),
            "node_cpu_percent": node.cpu_usage_percent(config),
        }
    )
    return rows


def run_encoder_budget(
    database: SyntheticMitBih | None = None,
) -> dict[str, object]:
    """All node-side claims in one structure."""
    config = SystemConfig()
    mcu = Msp430Model()
    memory = encoder_memory_map(config)
    return {
        "sensing_time_ms": mcu.sensing_time_s(config) * 1e3,
        "encode_time_ms": mcu.encode_packet_time_s(config) * 1e3,
        "node_cpu_percent": 100.0 * mcu.cpu_usage_fraction(config),
        "ram_bytes": memory.ram_bytes(),
        "flash_bytes": memory.flash_bytes(),
        "huffman_flash_bytes": 1536,
        "approaches": approach_rows(config),
        "lifetime": lifetime_rows(database=database),
        "calibration": mcu.calibration_report(config),
    }
