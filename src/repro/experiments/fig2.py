"""Figure 2: sparse binary CS (MSP430 path) vs Gaussian CS (Matlab path).

The paper's benchmark of its sensing-matrix substitution: average output
SNR against compression ratio for

- **sparse binary sensing, d = 12**, run through the *integer* encoder
  path exactly as on the mote (16-bit samples, shift quantizer,
  differencing, Huffman) and decoded with FISTA; and
- **optimal Gaussian sensing** computed in float64 end to end (the
  Matlab reference: ``y = Phi x`` with no quantization or coding).

Both are plotted against the nominal (measurement-count) CR so the
x-axis compares like with like; the sparse rows also report the
*measured* CR after entropy coding, which is strictly better.  The
paper's conclusion — "no meaningful performance difference" — holds
when the SNR gap stays within a couple of dB.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..ecg import SyntheticMitBih
from ..metrics import prd as prd_metric
from ..metrics import snr_from_prd
from ..sensing import GaussianMatrix
from ..solvers import fista, lambda_from_fraction
from ..solvers.lipschitz import lipschitz_constant
from ..wavelet import WaveletTransform
from .sweeps import run_cr_sweep, sweep_database


def _gaussian_reference_snr(
    config: SystemConfig,
    database: SyntheticMitBih,
    records: tuple[str, ...],
    packets_per_record: int,
) -> float:
    """Average SNR of float64 Gaussian sensing at one operating point."""
    transform = WaveletTransform(config.n, config.wavelet, config.levels)
    phi = GaussianMatrix(config.m, config.n, seed=config.seed)
    system = phi.matrix() @ transform.synthesis_matrix()
    lipschitz = lipschitz_constant(system)
    offset = 1 << (config.adc_bits - 1)

    snrs: list[float] = []
    for name in records:
        record = database.load(name)
        from ..ecg.resample import resample_record

        resampled = resample_record(record, float(config.sample_rate_hz))
        samples = resampled.adc.digitize(resampled.channel(0)).astype(np.float64)
        windows = min(packets_per_record, len(samples) // config.n)
        for index in range(windows):
            x = samples[index * config.n : (index + 1) * config.n] - offset
            y = phi.matrix() @ x
            lam = lambda_from_fraction(system, y, config.lam)
            result = fista(
                system,
                y,
                lam,
                max_iterations=config.max_iterations,
                tolerance=config.tolerance,
                lipschitz=lipschitz,
            )
            reconstruction = transform.inverse(result.coefficients)
            snrs.append(snr_from_prd(prd_metric(x, reconstruction)))
    return float(np.mean(snrs))


def run_fig2(
    nominal_crs: tuple[float, ...] = (50.0, 55.0, 60.0, 65.0, 70.0, 75.0, 80.0),
    records: tuple[str, ...] | None = None,
    packets_per_record: int = 10,
    database: SyntheticMitBih | None = None,
) -> list[dict[str, float]]:
    """Reproduce Figure 2; returns one row per nominal CR."""
    database = database if database is not None else sweep_database()
    if records is None:
        records = database.subset(5)

    sparse_outcomes = run_cr_sweep(
        nominal_crs=nominal_crs,
        records=records,
        packets_per_record=packets_per_record,
        database=database,
    )
    rows: list[dict[str, float]] = []
    for outcome in sparse_outcomes:
        gaussian_snr = _gaussian_reference_snr(
            outcome.config, database, records, packets_per_record
        )
        summary = outcome.summary()
        rows.append(
            {
                "nominal_cr": outcome.nominal_cr,
                "sparse_measured_cr": outcome.measured_cr,
                "sparse_snr_db": summary["snr_db"],
                "gaussian_snr_db": gaussian_snr,
                "snr_gap_db": gaussian_snr - summary["snr_db"],
            }
        )
    return rows
