"""Figure 6: 32-bit iPhone decoder vs 64-bit Matlab decoder.

Runs the identical full pipeline twice, once with a float64 FISTA
(the Matlab reference) and once with float32 (the iPhone build), and
reports average PRD against the measured CR.  The paper's claim is that
the two curves coincide — single precision costs nothing.
"""

from __future__ import annotations

from ..ecg import SyntheticMitBih
from .sweeps import run_cr_sweep, sweep_database


def run_fig6(
    nominal_crs: tuple[float, ...] = (30.0, 40.0, 50.0, 60.0, 70.0, 80.0),
    records: tuple[str, ...] | None = None,
    packets_per_record: int = 10,
    database: SyntheticMitBih | None = None,
) -> list[dict[str, float]]:
    """Reproduce Figure 6; returns one row per nominal CR."""
    database = database if database is not None else sweep_database()
    if records is None:
        records = database.subset(5)

    rows: list[dict[str, float]] = []
    by_precision = {}
    for precision in ("float64", "float32"):
        by_precision[precision] = run_cr_sweep(
            nominal_crs=nominal_crs,
            records=records,
            packets_per_record=packets_per_record,
            precision=precision,
            database=database,
        )
    for outcome64, outcome32 in zip(
        by_precision["float64"], by_precision["float32"]
    ):
        summary64 = outcome64.summary()
        summary32 = outcome32.summary()
        rows.append(
            {
                "nominal_cr": outcome64.nominal_cr,
                "measured_cr": outcome64.measured_cr,
                "prd64_percent": summary64["prd_percent"],
                "prd32_percent": summary32["prd_percent"],
                "prd_gap_percent": abs(
                    summary64["prd_percent"] - summary32["prd_percent"]
                ),
            }
        )
    return rows
