"""Figure 7: FISTA iterations and iPhone decode time per packet vs CR.

Iteration counts come from the actual float32 solver runs on the
database; execution time is those counts priced by the calibrated
Cortex-A8 NEON model (0.5 ms/iteration at the paper's operating point).
The paper reports ~600 iterations / 0.34 s at CR 30 rising to ~900 /
0.46 s at CR 70; the monotone rise is the reproduced shape.
"""

from __future__ import annotations

from ..ecg import SyntheticMitBih
from ..platforms.cortexa8 import DecodePipeline
from ..platforms.iphone import IPhoneModel
from .sweeps import run_cr_sweep, sweep_database


def run_fig7(
    nominal_crs: tuple[float, ...] = (30.0, 40.0, 50.0, 60.0, 70.0),
    records: tuple[str, ...] | None = None,
    packets_per_record: int = 10,
    database: SyntheticMitBih | None = None,
    phone: IPhoneModel | None = None,
) -> list[dict[str, float]]:
    """Reproduce Figure 7; returns one row per nominal CR."""
    database = database if database is not None else sweep_database()
    if records is None:
        records = database.subset(5)
    phone = phone if phone is not None else IPhoneModel()

    outcomes = run_cr_sweep(
        nominal_crs=nominal_crs,
        records=records,
        packets_per_record=packets_per_record,
        precision="float32",
        database=database,
    )
    rows: list[dict[str, float]] = []
    for outcome in outcomes:
        summary = outcome.summary()
        iterations = summary["iterations"]
        modeled = phone.decode_time_s(
            outcome.config, iterations, DecodePipeline.NEON_OPTIMIZED
        )
        rows.append(
            {
                "nominal_cr": outcome.nominal_cr,
                "measured_cr": outcome.measured_cr,
                "iterations": iterations,
                "iphone_time_s": modeled,
                "python_time_s": summary["decode_seconds"],
                "realtime": modeled <= phone.decode_budget_s,
            }
        )
    return rows
