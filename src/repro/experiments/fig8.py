"""Figure 8 / Section V: full real-time pipeline at the CR-50 point.

Streams a record through the actual encoder/decoder to obtain measured
per-packet bit counts and FISTA iteration counts, then feeds those into
the discrete-event pipeline simulation with the calibrated platform
models.  Reproduced claims:

- node CPU < 5 %,
- coordinator CPU ~= 17.7 % at CR = 50 % (and < 30 % generally),
- no buffer under/overruns and no decode deadline misses (real time).
"""

from __future__ import annotations

from ..config import SystemConfig
from ..core import EcgMonitorSystem
from ..ecg import SyntheticMitBih
from ..platforms.cortexa8 import DecodePipeline
from ..realtime import MonitorPipeline, PipelineConfig, PipelineReport
from .sweeps import sweep_database


def run_fig8(
    nominal_cr: float = 50.0,
    record_name: str = "100",
    packets: int = 20,
    duration_s: float = 240.0,
    database: SyntheticMitBih | None = None,
    decode_pipeline: DecodePipeline = DecodePipeline.NEON_OPTIMIZED,
) -> tuple[PipelineReport, dict[str, float]]:
    """Run the coupled numeric + discrete-event simulation.

    Returns the pipeline report and a summary row with the headline
    claims.
    """
    database = database if database is not None else sweep_database()
    config = SystemConfig().with_target_cr(nominal_cr)
    system = EcgMonitorSystem(config, precision="float32")
    record = database.load(record_name)
    system.calibrate(record)
    stream = system.stream(record, max_packets=packets)

    pipeline_config = PipelineConfig(
        system=config,
        packet_bits=[p.packet_bits for p in stream.packets],
        packet_iterations=[p.iterations for p in stream.packets],
        duration_s=duration_s,
        decode_pipeline=decode_pipeline,
    )
    report = MonitorPipeline(pipeline_config).run()
    summary = {
        "nominal_cr": nominal_cr,
        "measured_cr": stream.compression_ratio_percent,
        "node_cpu_percent": report.node_cpu_percent,
        "phone_cpu_percent": report.phone_cpu_percent,
        "mean_iterations": stream.mean_iterations,
        "mean_prd_percent": stream.mean_prd_percent,
        "underruns": report.underruns,
        "deadline_misses": report.decode_deadline_misses,
        "realtime": report.is_realtime(),
    }
    return report, summary
