"""Plain-text table rendering shared by benchmarks and EXPERIMENTS.md."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render dict rows as an aligned text table (markdown-compatible)."""
    if not rows:
        raise ValueError("rows must be non-empty")
    if columns is None:
        columns = list(rows[0].keys())
    cells = [
        [_format_cell(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), max(len(row[i]) for row in cells))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "-|-".join("-" * w for w in widths)
    lines.append(header)
    lines.append(rule)
    for row in cells:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
