"""Compression-ratio sweep machinery shared by the figure drivers.

A sweep fixes a set of nominal compression ratios (which set ``M``),
trains one offline codebook per operating point on a calibration record
(the paper's codebook is likewise generated offline), then streams a
record subset through the full system and averages the per-packet
metrics "over all data" as the paper's figures do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemConfig
from ..core import EcgMonitorSystem
from ..ecg import SyntheticMitBih
from ..metrics import SweepPoint, aggregate_points


def sweep_database(duration_s: float = 64.0, seed: int = 2011) -> SyntheticMitBih:
    """The corpus used by all sweeps (64 s records by default)."""
    return SyntheticMitBih(duration_s=duration_s, seed=seed)


@dataclass
class SweepOutcome:
    """All observations of one operating point (one nominal CR)."""

    nominal_cr: float
    config: SystemConfig
    points: list[SweepPoint] = field(default_factory=list)
    measured_cr: float = 0.0

    def summary(self) -> dict[str, float]:
        """Figure-level averages for this operating point."""
        aggregate = aggregate_points(self.points)
        aggregate["nominal_cr"] = self.nominal_cr
        aggregate["measured_cr"] = self.measured_cr
        return aggregate


def run_cr_sweep(
    nominal_crs: tuple[float, ...] = (30.0, 40.0, 50.0, 60.0, 70.0),
    records: tuple[str, ...] | None = None,
    packets_per_record: int = 12,
    precision: str = "float64",
    database: SyntheticMitBih | None = None,
    calibration_record: str = "100",
    base_config: SystemConfig | None = None,
) -> list[SweepOutcome]:
    """Run the full system across CRs and records.

    Returns one :class:`SweepOutcome` per nominal CR with per-packet
    points and the measured (entropy-coded) CR.
    """
    database = database if database is not None else sweep_database()
    if records is None:
        records = database.subset(6)
    base = base_config if base_config is not None else SystemConfig()

    outcomes: list[SweepOutcome] = []
    for nominal in nominal_crs:
        config = base.with_target_cr(nominal)
        system = EcgMonitorSystem(config, precision=precision)
        system.calibrate(database.load(calibration_record))
        outcome = SweepOutcome(nominal_cr=float(nominal), config=config)

        total_bits = 0
        total_original = 0
        for name in records:
            record = database.load(name)
            stream = system.stream(record, max_packets=packets_per_record)
            total_bits += sum(p.packet_bits for p in stream.packets)
            total_original += config.original_packet_bits * stream.num_packets
            for packet in stream.packets:
                outcome.points.append(
                    SweepPoint(
                        record=name,
                        cr_percent=stream.compression_ratio_percent,
                        prd_percent=packet.prd_percent,
                        snr_db=packet.snr_db,
                        iterations=packet.iterations,
                        decode_seconds=packet.decode_seconds,
                    )
                )
        outcome.measured_cr = (
            (total_original - total_bits) / total_original * 100.0
            if total_original
            else 0.0
        )
        outcomes.append(outcome)
    return outcomes
