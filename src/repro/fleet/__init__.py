"""Fleet decode: operator-keyed cross-stream batching, sharded workers.

The paper's phone-side decoder is the system bottleneck, and the
batched engine of :mod:`repro.core.batch` only amortizes it *within*
one lead of one record.  A telecardiology coordinator faces the
opposite shape: many concurrent node streams — every lead of a
multi-lead monitor, many records, a fleet of wearables — where
throughput per core, not per-stream latency, is the budget.  This
package pools those sources into shared solves.

Architecture
============

**Operator-group keying.**  A batched FISTA solve iterates one dense
operator ``A = Phi Psi^-1`` over an ``(m, B)`` block, so only streams
with the *same* sensing matrix and wavelet basis can share a batch.
:func:`~repro.fleet.scheduler.operator_key` captures that identity
(``n``, ``m``, ``d``, seed, wavelet, levels, precision): per-lead
sensing seeds put each lead of a
:class:`~repro.core.multichannel.MultiChannelMonitor` in its own group,
while a fleet of nodes shipping the paper's shared fixed matrix
collapses into one.  Per group, the engine keeps exactly one operator,
one Lipschitz estimate, one contiguous transpose and one iteration
workspace; batches are filled to the target width *across* the group's
streams, so ragged per-stream tails merge into full-width solves.
Per-stream state that cannot be shared — Huffman codebook, closed-loop
difference reference, lambda fraction, dc offset — stays with each
stream's :class:`~repro.core.decoder.PacketPayloadDecoder`, and decoded
windows are routed back to their originating
:class:`~repro.core.system.StreamResult` in order.

**No-matrix-pickling workers.**  With ``workers >= 2``, the work is
partitioned across a ``multiprocessing`` pool in one of two layouts.
With two or more operator groups, whole groups are sharded: a group
task serializes only primitives — each stream's scalar config fields,
its (kilobyte-scale) codebook and its packets as wire bytes, the same
integer payloads the radio carries.  With exactly one group (the
paper's fleet: every node ships the same fixed matrix), sharding
whole groups would serialize on one process's BLAS, so the engine
shards *within* the group instead: stages 1-2 run in the parent and
the pooled column stream is split into batch-aligned contiguous
slices, one per worker (:func:`~repro.fleet.engine.split_batches` /
:func:`~repro.fleet.engine.solve_measurement_block`).  In both
layouts workers rebuild the dense operator from the seed once per
operator group and cache it for the life of the process, so no matrix
is ever pickled in either direction; only decoded sample/iteration
arrays come back.  The single-process fallback applies when
``workers in (None, 0, 1)``, when the only group's windows fit a
single batch (nothing to shard), or when the platform cannot start a
pool — the latter two emit one ``RuntimeWarning`` naming the reason.

Equivalence contract: packets are produced by the unchanged integer
encoder (bit-identical to the serial reference), and every pooled
column follows the serial FISTA iterate sequence via the batched
solver's per-column convergence masking — reconstructions match the
serial path to solver floating-point noise regardless of how batches
span streams.  ``tests/fleet/test_fleet.py`` pins this the same way
``tests/core/test_batch.py`` pins the single-stream engine.
"""

from .engine import (
    FleetDecoder,
    StreamTask,
    decode_fleet,
    solve_measurement_block,
    split_batches,
)
from .scheduler import (
    GroupSchedule,
    build_schedules,
    operator_key,
    solve_key,
)

__all__ = [
    "FleetDecoder",
    "StreamTask",
    "decode_fleet",
    "solve_measurement_block",
    "split_batches",
    "GroupSchedule",
    "build_schedules",
    "operator_key",
    "solve_key",
]
