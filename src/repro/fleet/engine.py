"""The fleet decode engine: pooled solves, optional process sharding.

:class:`FleetDecoder` drives many record streams through the shared
pipeline:

- **encode phase** (always in the parent): every task's record is
  windowed and batch-encoded by its own
  :class:`~repro.core.system.EcgMonitorSystem` — integer-exact, so the
  packets are bit-identical to the serial reference by construction;
- **schedule phase**: streams are grouped by
  :func:`~repro.fleet.scheduler.solve_key` and each group's windows are
  pooled into cross-stream batches;
- **decode phase**: per group, stages 1-2 run per stream (stateful,
  cheap), then the pooled measurement columns go through one
  :class:`~repro.solvers.batched.BatchedFista` per group — in-process,
  or sharded across a ``multiprocessing`` pool when ``workers > 1``;
- **route phase** (parent): decoded windows scatter back to their
  originating :class:`~repro.core.system.StreamResult` in order.

Sharding picks one of two layouts:

- **group sharding** (``>= 2`` operator groups): whole groups are
  partitioned across the pool.  Workers never receive a matrix: a group
  task carries each stream's scalar :class:`~repro.config.SystemConfig`
  fields, its (small) Huffman codebook and its packets as wire bytes;
  the worker rebuilds ``A = Phi Psi^-1`` from the seed once per
  operator group and caches it for the life of the process.
- **column sharding** (one operator group — the paper's fleet, where
  every node ships the same fixed matrix): the parent runs stages 1-2
  and splits the group's pooled *column* stream into batch-aligned
  slices, one per worker, so the single shared operator no longer
  serializes on one process's BLAS.  Workers receive only the float
  measurement columns (kilobytes per batch) and, as above, rebuild the
  operator from the seed.

Both layouts reproduce the in-process batch boundaries exactly, so the
decoded output is bit-identical to the single-process pooled path.  If
sharding was requested but cannot apply (nothing to split, or the
platform cannot start a pool), the engine decodes in-process and emits
one :class:`RuntimeWarning` naming the reason.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.batch import DEFAULT_BATCH_SIZE, encode_record_windows
from ..core.decoder import PacketPayloadDecoder
from ..core.packets import EncodedPacket
from ..core.system import StreamResult, window_metrics
from ..errors import ConfigurationError
from ..solvers import BatchedFista
from ..telemetry import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from .scheduler import GroupSchedule, build_schedules, solve_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SystemConfig
    from ..core.system import EcgMonitorSystem
    from ..ecg.records import Record
    from ..wavelet import WaveletTransform


@dataclass
class StreamTask:
    """One record channel to decode as part of a fleet run."""

    system: "EcgMonitorSystem"
    record: "Record"
    channel: int = 0
    max_packets: int | None = None
    keep_signals: bool = False


@dataclass
class _EncodedStream:
    """Parent-side state of one stream after the encode phase."""

    task: StreamTask
    windows: np.ndarray
    packets: list[EncodedPacket]
    config: "SystemConfig"
    precision: str
    dc_offset: int


@dataclass
class _StreamDecode:
    """Decode-phase output for one stream (plain arrays only, so the
    sharded path can ship it across a process boundary)."""

    samples_adu: np.ndarray  # (B, n) float64, dc offset applied
    iterations: np.ndarray  # (B,) int64
    decode_seconds: np.ndarray  # (B,) float64


def _pool_group_columns(
    payload_decoders: Sequence[PacketPayloadDecoder],
    packet_lists: Sequence[Sequence[EncodedPacket]],
    lam_fractions: Sequence[float],
    counts: Sequence[int],
    dtype: type,
) -> tuple[np.ndarray, np.ndarray, list[float]]:
    """Stages 1-2 for one group: pooled block + per-column fractions.

    Shared by every decode layout (in-process, group-sharded workers,
    column-sharded parent): streams concatenate in local group order,
    matching :class:`~repro.fleet.scheduler.GroupSchedule`'s column
    layout.  Also returns each stream's per-window payload-decode time
    share for the ``decode_seconds`` accounting.
    """
    payload_share: list[float] = []
    blocks: list[np.ndarray] = []
    for decoder, packets in zip(payload_decoders, packet_lists):
        started = time.perf_counter()
        decoder.reset()
        blocks.append(decoder.measurement_block(list(packets), dtype))
        payload_share.append(
            (time.perf_counter() - started) / max(len(packets), 1)
        )
    pooled = np.concatenate(blocks, axis=1)
    fractions = np.repeat(
        np.asarray(lam_fractions, dtype=np.float64), np.asarray(counts)
    )
    return pooled, fractions, payload_share


def _allocate_stream_outputs(
    counts: Sequence[int], payload_share: Sequence[float], n: int
) -> list[_StreamDecode]:
    """Per-stream result buffers, decode_seconds seeded with the
    stream's payload-decode share."""
    return [
        _StreamDecode(
            samples_adu=np.empty((count, n), dtype=np.float64),
            iterations=np.zeros(count, dtype=np.int64),
            decode_seconds=np.full(count, share, dtype=np.float64),
        )
        for count, share in zip(counts, payload_share)
    ]


def _scatter_columns(
    outputs: list[_StreamDecode],
    schedule: GroupSchedule,
    start: int,
    stop: int,
    signals: np.ndarray,
    iterations: np.ndarray,
    seconds: np.ndarray,
    dc_offsets: Sequence[int],
) -> None:
    """Route pooled columns ``[start, stop)`` back to their streams.

    ``signals``/``iterations``/``seconds`` are indexed relative to the
    slice; the single routing implementation is what keeps every
    layout's output identical by construction.
    """
    stream_of = schedule.stream_of[start:stop]
    index_of = schedule.index_of[start:stop]
    for local in np.unique(stream_of):
        mask = stream_of == local
        rows = index_of[mask]
        out = outputs[local]
        out.samples_adu[rows] = (
            np.asarray(signals[:, mask], dtype=np.float64).T
            + dc_offsets[local]
        )
        out.iterations[rows] = iterations[mask]
        out.decode_seconds[rows] += seconds[mask]


def _decode_group(
    solver: BatchedFista,
    transform: "WaveletTransform",
    schedule: GroupSchedule,
    payload_decoders: Sequence[PacketPayloadDecoder],
    packet_lists: Sequence[Sequence[EncodedPacket]],
    lam_fractions: Sequence[float],
    dc_offsets: Sequence[int],
    max_iterations: int,
    tolerance: float,
    precision: str,
) -> list[_StreamDecode]:
    """Decode one operator group's pooled windows.

    Shared by the in-process path and the group-sharded workers;
    inputs are ordered like ``schedule.stream_ids`` (local group
    order).  The ``"hybrid"`` backend solves through the structured
    pipeline (float32 fast path + sparse residual gate + float64
    polish), which owns synthesis; the dense backends synthesize via
    the batched inverse transform as before.
    """
    dtype = np.float32 if precision == "float32" else np.float64
    pooled, fractions, payload_share = _pool_group_columns(
        payload_decoders, packet_lists, lam_fractions, schedule.counts, dtype
    )
    outputs = _allocate_stream_outputs(
        schedule.counts, payload_share, transform.n
    )

    for start, stop in schedule.batches():
        batch_started = time.perf_counter()
        block = pooled[:, start:stop]
        if precision == "hybrid":
            result = solver.solve_structured(
                block,
                fractions[start:stop],
                max_iterations=max_iterations,
                tolerance=tolerance,
            )
            signals = result.signals
        else:
            lams = solver.lambdas(block, fractions[start:stop])
            result = solver.solve(
                block,
                lams,
                max_iterations=max_iterations,
                tolerance=tolerance,
            )
            signals = transform.inverse_batch(result.coefficients)
        batch_share = (time.perf_counter() - batch_started) / (stop - start)
        _scatter_columns(
            outputs,
            schedule,
            start,
            stop,
            signals,
            result.iterations,
            np.full(stop - start, batch_share),
            dc_offsets,
        )
    return outputs


# ----------------------------------------------------------------------
# Sharded execution: operator groups across a multiprocessing pool.
# ----------------------------------------------------------------------

#: per-worker cache of rebuilt operator resources, keyed by operator
#: identity — a worker serving many groups (or repeated runs under a
#: long-lived pool) pays the dense build + Lipschitz estimate once
_WORKER_RESOURCES: dict[tuple, tuple[BatchedFista, Any]] = {}


def _group_resources(
    config: "SystemConfig", precision: str
) -> tuple[BatchedFista, "WaveletTransform"]:
    """Build (or fetch) one operator group's solver + synthesis pair."""
    from ..sensing import SparseBinaryMatrix
    from ..wavelet import WaveletTransform
    from .scheduler import operator_key

    key = operator_key(config, precision)
    cached = _WORKER_RESOURCES.get(key)
    if cached is not None:
        return cached
    matrix = SparseBinaryMatrix(
        config.m, config.n, d=config.d, seed=config.seed
    )
    transform = WaveletTransform(config.n, config.wavelet, config.levels)
    if precision == "hybrid":
        from ..solvers import StructuredOperator

        structure = StructuredOperator(matrix, transform.synthesis_matrix())
        solver = BatchedFista(
            structure.dense64,
            lipschitz=structure.lipschitz,
            structure=structure,
        )
    else:
        dtype = np.float32 if precision == "float32" else np.float64
        dense = (matrix.sparse() @ transform.synthesis_matrix()).astype(dtype)
        solver = BatchedFista(dense)
    resources = (solver, transform)
    _WORKER_RESOURCES[key] = resources
    return resources


def _worker_telemetry_delta(
    registry: MetricsRegistry, started: float, windows: int
) -> dict:
    """One pool task's telemetry delta, ready to cross the boundary.

    Workers record into a registry created *for the task* and ship its
    snapshot home as a plain dict; the parent absorbs each delta once,
    so fan-in over any completion order aggregates exactly (the merge
    algebra of :class:`~repro.telemetry.MetricsSnapshot`).
    """
    import os

    worker = str(os.getpid())
    registry.inc("fleet_worker_tasks", worker=worker)
    registry.inc("fleet_worker_windows", windows, worker=worker)
    registry.observe(
        "fleet_worker_task_seconds",
        time.perf_counter() - started,
        worker=worker,
    )
    return registry.snapshot().to_dict()


def _worker_decode_group(group_task: dict) -> dict:
    """Pool worker: decode one operator group from pickled primitives.

    The task dict carries, per stream: the scalar config fields, the
    Huffman codebook, the lambda fraction, the dc offset and the
    packets as wire bytes.  No arrays or operators cross the boundary
    in either direction except the decoded results and the worker's
    telemetry delta.
    """
    from ..config import SystemConfig

    started = time.perf_counter()
    precision = group_task["precision"]
    streams = group_task["streams"]
    configs = [SystemConfig(**s["config"]) for s in streams]
    solver, transform = _group_resources(configs[0], precision)

    payload_decoders = [
        PacketPayloadDecoder(config, codebook=s["codebook"])
        for config, s in zip(configs, streams)
    ]
    packet_lists = [
        [EncodedPacket.from_bytes(wire) for wire in s["packets"]]
        for s in streams
    ]
    schedule = GroupSchedule.build(
        group_task["stream_ids"],
        [len(packets) for packets in packet_lists],
        group_task["batch_size"],
    )
    outputs = _decode_group(
        solver,
        transform,
        schedule,
        payload_decoders,
        packet_lists,
        [s["lam"] for s in streams],
        [s["dc_offset"] for s in streams],
        group_task["max_iterations"],
        group_task["tolerance"],
        precision,
    )
    registry = MetricsRegistry()
    return {
        "streams": [
            {
                "samples_adu": out.samples_adu,
                "iterations": out.iterations,
                "decode_seconds": out.decode_seconds,
            }
            for out in outputs
        ],
        "telemetry": _worker_telemetry_delta(
            registry, started, schedule.total_windows
        ),
    }


def solve_measurement_block(task: dict) -> dict:
    """Reconstruct a slice of one group's pooled measurement columns.

    The unit of *column sharding*: the caller has already run stages
    1-2 (entropy decode, redundancy re-insertion, dequantization) and
    ships a ``(m, B)`` float block plus per-column lambda fractions;
    this function rebuilds the group's operator from the config seed
    (cached per process via :func:`_group_resources`), slices the block
    into ``batch_size``-wide solves and returns the synthesized signals.

    Because the caller hands it batch-aligned slices, the solve widths
    reproduce the in-process :func:`_decode_group` boundaries exactly,
    making the output bit-identical to the single-process pooled path.
    Also the decode backend of the live ingest gateway
    (:mod:`repro.ingest`), which flushes one batch at a time — there,
    ``B <= batch_size`` and the loop body runs once per flush.

    Task keys: ``config`` (scalar :class:`~repro.config.SystemConfig`
    fields), ``precision``, ``block``, ``fractions``, ``batch_size``,
    ``max_iterations``, ``tolerance``.  Returns ``signals`` (``(n, B)``
    float64, no dc offset), ``iterations`` (``(B,)``), ``seconds``
    (``(B,)`` — each column's share of its batch's wall clock) and
    ``telemetry`` — this call's metrics delta (recorded into a
    registry created per call, so the caller can absorb every result's
    delta exactly once, whatever order a pool completes them in).
    """
    from ..config import SystemConfig

    task_started = time.perf_counter()
    registry = MetricsRegistry()
    config = SystemConfig(**task["config"])
    solver, transform = _group_resources(config, task["precision"])
    block = task["block"]
    fractions = task["fractions"]
    batch_size = task["batch_size"]
    total = block.shape[1]
    signals = np.empty((transform.n, total), dtype=np.float64)
    iterations = np.zeros(total, dtype=np.int64)
    seconds = np.zeros(total, dtype=np.float64)
    for start in range(0, total, batch_size):
        stop = min(start + batch_size, total)
        started = time.perf_counter()
        if task["precision"] == "hybrid":
            result = solver.solve_structured(
                block[:, start:stop],
                fractions[start:stop],
                max_iterations=task["max_iterations"],
                tolerance=task["tolerance"],
            )
            batch_signals = result.signals
            registry.inc("fleet_hybrid_windows", stop - start)
            registry.inc(
                "fleet_polish_windows",
                int(np.count_nonzero(result.polished)),
            )
        else:
            lams = solver.lambdas(
                block[:, start:stop], fractions[start:stop]
            )
            result = solver.solve(
                block[:, start:stop],
                lams,
                max_iterations=task["max_iterations"],
                tolerance=task["tolerance"],
            )
            batch_signals = transform.inverse_batch(result.coefficients)
        elapsed = time.perf_counter() - started
        share = elapsed / (stop - start)
        signals[:, start:stop] = np.asarray(batch_signals, dtype=np.float64)
        iterations[start:stop] = result.iterations
        seconds[start:stop] = share
        registry.observe("fleet_solve_seconds", elapsed)
        registry.observe(
            "fleet_solve_width", stop - start, buckets=DEFAULT_SIZE_BUCKETS
        )
    return {
        "signals": signals,
        "iterations": iterations,
        "seconds": seconds,
        "telemetry": _worker_telemetry_delta(registry, task_started, total),
    }


def split_batches(num_batches: int, workers: int) -> list[tuple[int, int]]:
    """Partition ``num_batches`` solves into contiguous per-worker runs.

    Returns ``(first_batch, last_batch_exclusive)`` index pairs, one
    per non-empty worker, balanced to within one batch.  Keeping the
    split at *batch* granularity is what preserves bit-identity: every
    solve keeps the exact column composition of the unsharded schedule.
    """
    if num_batches < 1 or workers < 1:
        raise ConfigurationError(
            f"need num_batches >= 1 and workers >= 1, got "
            f"{num_batches}/{workers}"
        )
    workers = min(workers, num_batches)
    base, excess = divmod(num_batches, workers)
    spans = []
    start = 0
    for index in range(workers):
        stop = start + base + (1 if index < excess else 0)
        spans.append((start, stop))
        start = stop
    return spans


class FleetDecoder:
    """Pooled decode of many streams with operator-keyed batching.

    Parameters
    ----------
    batch_size:
        Target solve width; batches are filled *across* a group's
        streams, so ragged per-stream tails merge.
    workers:
        ``None``, ``0`` or ``1`` decodes in-process; ``>= 2`` shards
        the work across a ``multiprocessing`` pool of that many
        processes — whole operator groups when there are two or more,
        batch-aligned column slices *within* the group when the whole
        fleet shares one operator.  A request for ``workers >= 2``
        still decodes in-process when there is nothing to split (a
        single group whose windows fit one batch) or when the platform
        cannot start a pool; either fallback emits one
        :class:`RuntimeWarning` naming the reason.
    """

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        workers: int | None = None,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if workers is not None and workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {workers}"
            )
        self.batch_size = batch_size
        self.workers = workers
        #: the telemetry plane this decoder publishes to: run/group
        #: counters from the parent, solve histograms absorbed from
        #: each worker task's returned delta snapshot
        self.telemetry = (
            telemetry if telemetry is not None else MetricsRegistry()
        )
        #: groups scheduled, worker processes actually used and the
        #: sharding layout of the most recent :meth:`run` (1 worker =
        #: in-process) — the engine owns the fallback decision, so
        #: callers report from here instead of re-deriving it
        self.last_num_groups = 0
        self.last_effective_workers = 1
        self.last_shard_mode = "in-process"
        self.last_fallback_reason: str | None = None

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[StreamTask]) -> list[StreamResult]:
        """Decode every task; results match the task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        encoded = [self._encode(task) for task in tasks]
        keys = [
            solve_key(stream.config, stream.precision) for stream in encoded
        ]
        schedules = build_schedules(
            keys, [len(stream.packets) for stream in encoded], self.batch_size
        )
        self.last_num_groups = len(schedules)
        mode, effective = self._plan_sharding(schedules)

        decodes: list[_StreamDecode] | None = None
        if mode == "groups":
            decodes = self._run_sharded(encoded, schedules, effective)
        elif mode == "columns":
            decodes = self._run_column_sharded(encoded, schedules[0], effective)
        if decodes is None:
            # either planned in-process, or the pool could not start
            # (the platform fallback — _pool_map already warned)
            mode, effective = "in-process", 1
            decodes = self._run_inprocess(encoded, schedules)
        self.last_shard_mode = mode
        self.last_effective_workers = effective
        self.telemetry.inc("fleet_runs", mode=mode)
        self.telemetry.inc(
            "fleet_windows_decoded",
            sum(len(stream.packets) for stream in encoded),
        )
        self.telemetry.set_gauge("fleet_groups", len(schedules))
        self.telemetry.set_gauge("fleet_effective_workers", effective)
        for index, schedule in enumerate(schedules):
            self.telemetry.inc(
                "fleet_group_windows",
                schedule.total_windows,
                group=f"g{index}",
            )
        return [
            self._assemble(stream, decode)
            for stream, decode in zip(encoded, decodes)
        ]

    def _plan_sharding(
        self, schedules: list[GroupSchedule]
    ) -> tuple[str, int]:
        """Choose the sharding layout for this run's schedules.

        Returns ``(mode, effective_workers)`` with mode one of
        ``"in-process"``, ``"groups"`` (partition whole operator
        groups) or ``"columns"`` (split the single group's pooled
        column stream).  When sharding was requested but nothing can be
        split, emits the mandated single-line warning naming the
        reason and plans in-process.
        """
        requested = self.workers or 1
        self.last_fallback_reason = None
        if requested < 2:
            return "in-process", 1
        if len(schedules) >= 2:
            return "groups", min(requested, len(schedules))
        if schedules[0].num_batches >= 2:
            return "columns", min(requested, schedules[0].num_batches)
        self.last_fallback_reason = (
            f"workers={requested} requested but the single operator "
            f"group's {schedules[0].total_windows} window(s) fit one "
            f"batch (batch_size={self.batch_size}); nothing to shard"
        )
        warnings.warn(
            f"fleet decode falling back to a single process: "
            f"{self.last_fallback_reason}",
            RuntimeWarning,
            stacklevel=3,
        )
        return "in-process", 1

    def _pool_map(self, fn, tasks: list, workers: int) -> list | None:
        """Map tasks over a fresh pool; ``None`` if no pool can start.

        A platform without working ``multiprocessing`` primitives (no
        fork/spawn, no POSIX semaphores) raises at pool construction —
        that is the *platform* fallback: warn once with the underlying
        error and let :meth:`run` decode in-process instead.
        """
        import multiprocessing

        try:
            pool = multiprocessing.Pool(processes=workers)
        except (ImportError, OSError, ValueError) as exc:
            self.last_fallback_reason = (
                f"multiprocessing pool unavailable on this platform ({exc})"
            )
            warnings.warn(
                f"fleet decode falling back to a single process: "
                f"{self.last_fallback_reason}",
                RuntimeWarning,
                stacklevel=4,
            )
            return None
        with pool:
            return pool.map(fn, tasks, chunksize=1)

    # ------------------------------------------------------------------
    def _encode(self, task: StreamTask) -> _EncodedStream:
        if task.system.decoder.warm_start:
            raise ConfigurationError(
                "fleet decode does not support warm_start decoders: "
                "pooled batches span streams, so the per-stream "
                "previous-solution chain cannot be reproduced; disable "
                "warm_start or use stream(batch_size=...) per stream"
            )
        windows, packets = encode_record_windows(
            task.system,
            task.record,
            channel=task.channel,
            max_packets=task.max_packets,
        )
        return _EncodedStream(
            task=task,
            windows=windows,
            packets=packets,
            config=task.system.config,
            precision=task.system.decoder.precision,
            dc_offset=task.system.encoder.dc_offset,
        )

    def _run_inprocess(
        self,
        encoded: list[_EncodedStream],
        schedules: list[GroupSchedule],
    ) -> list[_StreamDecode]:
        """Single-process pooled decode, reusing each lead decoder's
        already-materialized operator and Lipschitz constant."""
        decodes: list[_StreamDecode | None] = [None] * len(encoded)
        for schedule in schedules:
            members = [encoded[s] for s in schedule.stream_ids]
            lead = members[0].task.system.decoder
            outputs = _decode_group(
                lead.batched_solver(),
                lead.transform,
                schedule,
                [m.task.system.decoder.payload for m in members],
                [m.packets for m in members],
                [m.config.lam for m in members],
                [m.dc_offset for m in members],
                members[0].config.max_iterations,
                members[0].config.tolerance,
                members[0].precision,
            )
            for stream_id, out in zip(schedule.stream_ids, outputs):
                decodes[stream_id] = out
        assert all(decode is not None for decode in decodes)
        return decodes  # type: ignore[return-value]

    def _run_sharded(
        self,
        encoded: list[_EncodedStream],
        schedules: list[GroupSchedule],
        workers: int,
    ) -> list[_StreamDecode] | None:
        """Partition operator groups across a multiprocessing pool.

        Only reached with >= 2 shardable groups — :meth:`run` plans
        the column or in-process layout otherwise, before any packet
        is serialized.  Returns ``None`` when no pool can start.
        """
        group_tasks = []
        for schedule in schedules:
            members = [encoded[s] for s in schedule.stream_ids]
            group_tasks.append(
                {
                    "stream_ids": schedule.stream_ids,
                    "batch_size": self.batch_size,
                    "precision": members[0].precision,
                    "max_iterations": members[0].config.max_iterations,
                    "tolerance": members[0].config.tolerance,
                    "streams": [
                        {
                            "config": dataclasses.asdict(m.config),
                            "codebook": m.task.system.decoder.codebook,
                            "lam": m.config.lam,
                            "dc_offset": m.dc_offset,
                            "packets": [p.to_bytes() for p in m.packets],
                        }
                        for m in members
                    ],
                }
            )

        group_outputs = self._pool_map(
            _worker_decode_group, group_tasks, workers
        )
        if group_outputs is None:
            return None

        decodes: list[_StreamDecode | None] = [None] * len(encoded)
        for schedule, group_out in zip(schedules, group_outputs):
            self.telemetry.absorb(group_out["telemetry"])
            for stream_id, out in zip(
                schedule.stream_ids, group_out["streams"]
            ):
                decodes[stream_id] = _StreamDecode(
                    samples_adu=out["samples_adu"],
                    iterations=out["iterations"],
                    decode_seconds=out["decode_seconds"],
                )
        assert all(decode is not None for decode in decodes)
        return decodes  # type: ignore[return-value]

    def _run_column_sharded(
        self,
        encoded: list[_EncodedStream],
        schedule: GroupSchedule,
        workers: int,
    ) -> list[_StreamDecode] | None:
        """Split one group's pooled column stream across the pool.

        The intra-group layout for the paper's fleet shape: every node
        ships the same fixed matrix, so there is exactly one operator
        group and group sharding would serialize on one process's
        BLAS.  Stages 1-2 (stateful, cheap) run in the parent; the
        pooled ``(m, B)`` measurement block is then cut into
        batch-aligned contiguous column slices (:func:`split_batches`),
        one per worker, each solved by :func:`solve_measurement_block`
        with the worker's seed-rebuilt operator.  Per-batch column
        composition is identical to the in-process path, so the decoded
        output is bit-identical.  Returns ``None`` when no pool can
        start.
        """
        members = [encoded[s] for s in schedule.stream_ids]
        dtype = (
            np.float32 if members[0].precision == "float32" else np.float64
        )
        pooled, fractions, payload_share = _pool_group_columns(
            [m.task.system.decoder.payload for m in members],
            [m.packets for m in members],
            [m.config.lam for m in members],
            schedule.counts,
            dtype,
        )

        spans = list(schedule.batches())
        column_tasks = []
        slice_bounds = []
        for first, last in split_batches(len(spans), workers):
            col_start, col_stop = spans[first][0], spans[last - 1][1]
            slice_bounds.append((col_start, col_stop))
            column_tasks.append(
                {
                    "config": dataclasses.asdict(members[0].config),
                    "precision": members[0].precision,
                    "block": pooled[:, col_start:col_stop],
                    "fractions": fractions[col_start:col_stop],
                    "batch_size": self.batch_size,
                    "max_iterations": members[0].config.max_iterations,
                    "tolerance": members[0].config.tolerance,
                }
            )

        slice_outputs = self._pool_map(
            solve_measurement_block, column_tasks, len(column_tasks)  # repro-lint: disable=RL009 — column sharding intentionally ships pooled measurement columns (stages 1-2 already ran per-member in the parent); workers still rebuild the operator from the config seed
        )
        if slice_outputs is None:
            return None

        n = members[0].config.n
        outputs = _allocate_stream_outputs(
            schedule.counts, payload_share, n
        )
        dc_offsets = [m.dc_offset for m in members]
        for (col_start, col_stop), out in zip(slice_bounds, slice_outputs):
            self.telemetry.absorb(out["telemetry"])
            _scatter_columns(
                outputs,
                schedule,
                col_start,
                col_stop,
                out["signals"],
                out["iterations"],
                out["seconds"],
                dc_offsets,
            )

        decodes: list[_StreamDecode | None] = [None] * len(encoded)
        for stream_id, out in zip(schedule.stream_ids, outputs):
            decodes[stream_id] = out
        assert all(decode is not None for decode in decodes)
        return decodes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _assemble(
        self, stream: _EncodedStream, decode: _StreamDecode
    ) -> StreamResult:
        task = stream.task
        result = StreamResult(
            record=task.record.name,
            channel=task.channel,
            config=stream.config,
        )
        for index, packet in enumerate(stream.packets):
            result.packets.append(
                window_metrics(
                    stream.windows[index],
                    packet,
                    decode.samples_adu[index],
                    int(decode.iterations[index]),
                    float(decode.decode_seconds[index]),
                    stream.dc_offset,
                )
            )
        if task.keep_signals:
            result.original_adu = stream.windows.astype(np.float64).reshape(-1)
            result.reconstructed_adu = decode.samples_adu.reshape(-1)
        return result


def decode_fleet(
    tasks: Sequence[StreamTask],
    batch_size: int = DEFAULT_BATCH_SIZE,
    workers: int | None = None,
) -> list[StreamResult]:
    """Convenience wrapper: one-shot fleet decode of many streams."""
    return FleetDecoder(batch_size=batch_size, workers=workers).run(tasks)
