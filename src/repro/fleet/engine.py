"""The fleet decode engine: pooled solves, optional process sharding.

:class:`FleetDecoder` drives many record streams through the shared
pipeline:

- **encode phase** (always in the parent): every task's record is
  windowed and batch-encoded by its own
  :class:`~repro.core.system.EcgMonitorSystem` — integer-exact, so the
  packets are bit-identical to the serial reference by construction;
- **schedule phase**: streams are grouped by
  :func:`~repro.fleet.scheduler.solve_key` and each group's windows are
  pooled into cross-stream batches;
- **decode phase**: per group, stages 1-2 run per stream (stateful,
  cheap), then the pooled measurement columns go through one
  :class:`~repro.solvers.batched.BatchedFista` per group — in-process,
  or sharded across a ``multiprocessing`` pool when ``workers > 1``;
- **route phase** (parent): decoded windows scatter back to their
  originating :class:`~repro.core.system.StreamResult` in order.

Workers never receive a matrix: a group task carries each stream's
scalar :class:`~repro.config.SystemConfig` fields, its (small) Huffman
codebook and its packets as wire bytes; the worker rebuilds
``A = Phi Psi^-1`` from the seed once per operator group and caches it
for the life of the process.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.batch import DEFAULT_BATCH_SIZE, encode_record_windows
from ..core.decoder import PacketPayloadDecoder
from ..core.packets import EncodedPacket
from ..core.system import StreamResult, window_metrics
from ..errors import ConfigurationError
from ..solvers import BatchedFista
from .scheduler import GroupSchedule, build_schedules, solve_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SystemConfig
    from ..core.system import EcgMonitorSystem
    from ..ecg.records import Record
    from ..wavelet import WaveletTransform


@dataclass
class StreamTask:
    """One record channel to decode as part of a fleet run."""

    system: "EcgMonitorSystem"
    record: "Record"
    channel: int = 0
    max_packets: int | None = None
    keep_signals: bool = False


@dataclass
class _EncodedStream:
    """Parent-side state of one stream after the encode phase."""

    task: StreamTask
    windows: np.ndarray
    packets: list[EncodedPacket]
    config: "SystemConfig"
    precision: str
    dc_offset: int


@dataclass
class _StreamDecode:
    """Decode-phase output for one stream (plain arrays only, so the
    sharded path can ship it across a process boundary)."""

    samples_adu: np.ndarray  # (B, n) float64, dc offset applied
    iterations: np.ndarray  # (B,) int64
    decode_seconds: np.ndarray  # (B,) float64


def _decode_group(
    solver: BatchedFista,
    transform: "WaveletTransform",
    schedule: GroupSchedule,
    payload_decoders: Sequence[PacketPayloadDecoder],
    packet_lists: Sequence[Sequence[EncodedPacket]],
    lam_fractions: Sequence[float],
    dc_offsets: Sequence[int],
    max_iterations: int,
    tolerance: float,
    dtype: type,
) -> list[_StreamDecode]:
    """Decode one operator group's pooled windows.

    Shared by the in-process path and the sharded workers; inputs are
    ordered like ``schedule.stream_ids`` (local group order).
    """
    n = transform.n
    payload_share: list[float] = []
    blocks: list[np.ndarray] = []
    for decoder, packets in zip(payload_decoders, packet_lists):
        started = time.perf_counter()
        decoder.reset()
        blocks.append(decoder.measurement_block(list(packets), dtype))
        payload_share.append(
            (time.perf_counter() - started) / max(len(packets), 1)
        )
    pooled = np.concatenate(blocks, axis=1)
    fractions = np.repeat(
        np.asarray(lam_fractions, dtype=np.float64), schedule.counts
    )

    outputs = [
        _StreamDecode(
            samples_adu=np.empty((count, n), dtype=np.float64),
            iterations=np.zeros(count, dtype=np.int64),
            decode_seconds=np.full(count, share, dtype=np.float64),
        )
        for count, share in zip(schedule.counts, payload_share)
    ]

    for start, stop in schedule.batches():
        batch_started = time.perf_counter()
        block = pooled[:, start:stop]
        lams = solver.lambdas(block, fractions[start:stop])
        result = solver.solve(
            block,
            lams,
            max_iterations=max_iterations,
            tolerance=tolerance,
        )
        signals = transform.inverse_batch(result.coefficients)
        batch_share = (time.perf_counter() - batch_started) / (stop - start)

        stream_of = schedule.stream_of[start:stop]
        index_of = schedule.index_of[start:stop]
        for local in np.unique(stream_of):
            mask = stream_of == local
            rows = index_of[mask]
            out = outputs[local]
            out.samples_adu[rows] = (
                np.asarray(signals[:, mask], dtype=np.float64).T
                + dc_offsets[local]
            )
            out.iterations[rows] = result.iterations[mask]
            out.decode_seconds[rows] += batch_share
    return outputs


# ----------------------------------------------------------------------
# Sharded execution: operator groups across a multiprocessing pool.
# ----------------------------------------------------------------------

#: per-worker cache of rebuilt operator resources, keyed by operator
#: identity — a worker serving many groups (or repeated runs under a
#: long-lived pool) pays the dense build + Lipschitz estimate once
_WORKER_RESOURCES: dict[tuple, tuple[BatchedFista, Any]] = {}


def _group_resources(
    config: "SystemConfig", precision: str
) -> tuple[BatchedFista, "WaveletTransform"]:
    """Build (or fetch) one operator group's solver + synthesis pair."""
    from ..sensing import SparseBinaryMatrix
    from ..wavelet import WaveletTransform
    from .scheduler import operator_key

    key = operator_key(config, precision)
    cached = _WORKER_RESOURCES.get(key)
    if cached is not None:
        return cached
    matrix = SparseBinaryMatrix(
        config.m, config.n, d=config.d, seed=config.seed
    )
    transform = WaveletTransform(config.n, config.wavelet, config.levels)
    dtype = np.float32 if precision == "float32" else np.float64
    dense = (matrix.sparse() @ transform.synthesis_matrix()).astype(dtype)
    resources = (BatchedFista(dense), transform)
    _WORKER_RESOURCES[key] = resources
    return resources


def _worker_decode_group(group_task: dict) -> list[dict]:
    """Pool worker: decode one operator group from pickled primitives.

    The task dict carries, per stream: the scalar config fields, the
    Huffman codebook, the lambda fraction, the dc offset and the
    packets as wire bytes.  No arrays or operators cross the boundary
    in either direction except the decoded results.
    """
    from ..config import SystemConfig

    precision = group_task["precision"]
    dtype = np.float32 if precision == "float32" else np.float64
    streams = group_task["streams"]
    configs = [SystemConfig(**s["config"]) for s in streams]
    solver, transform = _group_resources(configs[0], precision)

    payload_decoders = [
        PacketPayloadDecoder(config, codebook=s["codebook"])
        for config, s in zip(configs, streams)
    ]
    packet_lists = [
        [EncodedPacket.from_bytes(wire) for wire in s["packets"]]
        for s in streams
    ]
    schedule = GroupSchedule.build(
        group_task["stream_ids"],
        [len(packets) for packets in packet_lists],
        group_task["batch_size"],
    )
    outputs = _decode_group(
        solver,
        transform,
        schedule,
        payload_decoders,
        packet_lists,
        [s["lam"] for s in streams],
        [s["dc_offset"] for s in streams],
        group_task["max_iterations"],
        group_task["tolerance"],
        dtype,
    )
    return [
        {
            "samples_adu": out.samples_adu,
            "iterations": out.iterations,
            "decode_seconds": out.decode_seconds,
        }
        for out in outputs
    ]


class FleetDecoder:
    """Pooled decode of many streams with operator-keyed batching.

    Parameters
    ----------
    batch_size:
        Target solve width; batches are filled *across* a group's
        streams, so ragged per-stream tails merge.
    workers:
        ``None``, ``0`` or ``1`` decodes in-process (the fallback);
        ``>= 2`` shards operator groups across a ``multiprocessing``
        pool of that many workers.
    """

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        workers: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if workers is not None and workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {workers}"
            )
        self.batch_size = batch_size
        self.workers = workers
        #: groups scheduled and worker processes actually used by the
        #: most recent :meth:`run` (1 = in-process) — the engine owns
        #: the fallback decision, so callers report from here instead
        #: of re-deriving it
        self.last_num_groups = 0
        self.last_effective_workers = 1

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[StreamTask]) -> list[StreamResult]:
        """Decode every task; results match the task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        encoded = [self._encode(task) for task in tasks]
        keys = [
            solve_key(stream.config, stream.precision) for stream in encoded
        ]
        schedules = build_schedules(
            keys, [len(stream.packets) for stream in encoded], self.batch_size
        )
        self.last_num_groups = len(schedules)
        self.last_effective_workers = min(
            self.workers or 1, len(schedules)
        )
        if self.last_effective_workers > 1:
            decodes = self._run_sharded(encoded, schedules)
        else:
            decodes = self._run_inprocess(encoded, schedules)
        return [
            self._assemble(stream, decode)
            for stream, decode in zip(encoded, decodes)
        ]

    # ------------------------------------------------------------------
    def _encode(self, task: StreamTask) -> _EncodedStream:
        if task.system.decoder.warm_start:
            raise ConfigurationError(
                "fleet decode does not support warm_start decoders: "
                "pooled batches span streams, so the per-stream "
                "previous-solution chain cannot be reproduced; disable "
                "warm_start or use stream(batch_size=...) per stream"
            )
        windows, packets = encode_record_windows(
            task.system,
            task.record,
            channel=task.channel,
            max_packets=task.max_packets,
        )
        return _EncodedStream(
            task=task,
            windows=windows,
            packets=packets,
            config=task.system.config,
            precision=task.system.decoder.precision,
            dc_offset=task.system.encoder.dc_offset,
        )

    def _run_inprocess(
        self,
        encoded: list[_EncodedStream],
        schedules: list[GroupSchedule],
    ) -> list[_StreamDecode]:
        """Single-process pooled decode, reusing each lead decoder's
        already-materialized operator and Lipschitz constant."""
        decodes: list[_StreamDecode | None] = [None] * len(encoded)
        for schedule in schedules:
            members = [encoded[s] for s in schedule.stream_ids]
            lead = members[0].task.system.decoder
            if lead._batched_solver is None:
                lead._batched_solver = BatchedFista(
                    lead.system_matrix, lipschitz=lead.lipschitz
                )
            dtype = (
                np.float32 if members[0].precision == "float32" else np.float64
            )
            outputs = _decode_group(
                lead._batched_solver,
                lead.transform,
                schedule,
                [m.task.system.decoder.payload for m in members],
                [m.packets for m in members],
                [m.config.lam for m in members],
                [m.dc_offset for m in members],
                members[0].config.max_iterations,
                members[0].config.tolerance,
                dtype,
            )
            for stream_id, out in zip(schedule.stream_ids, outputs):
                decodes[stream_id] = out
        assert all(decode is not None for decode in decodes)
        return decodes  # type: ignore[return-value]

    def _run_sharded(
        self,
        encoded: list[_EncodedStream],
        schedules: list[GroupSchedule],
    ) -> list[_StreamDecode]:
        """Partition operator groups across a multiprocessing pool.

        Only reached with >= 2 shardable groups — :meth:`run` falls
        back to the in-process path otherwise, before any packet is
        serialized.
        """
        import multiprocessing

        workers = min(self.workers or 1, len(schedules))
        group_tasks = []
        for schedule in schedules:
            members = [encoded[s] for s in schedule.stream_ids]
            group_tasks.append(
                {
                    "stream_ids": schedule.stream_ids,
                    "batch_size": self.batch_size,
                    "precision": members[0].precision,
                    "max_iterations": members[0].config.max_iterations,
                    "tolerance": members[0].config.tolerance,
                    "streams": [
                        {
                            "config": dataclasses.asdict(m.config),
                            "codebook": m.task.system.decoder.codebook,
                            "lam": m.config.lam,
                            "dc_offset": m.dc_offset,
                            "packets": [p.to_bytes() for p in m.packets],
                        }
                        for m in members
                    ],
                }
            )

        with multiprocessing.Pool(processes=workers) as pool:
            group_outputs = pool.map(
                _worker_decode_group, group_tasks, chunksize=1
            )

        decodes: list[_StreamDecode | None] = [None] * len(encoded)
        for schedule, outputs in zip(schedules, group_outputs):
            for stream_id, out in zip(schedule.stream_ids, outputs):
                decodes[stream_id] = _StreamDecode(
                    samples_adu=out["samples_adu"],
                    iterations=out["iterations"],
                    decode_seconds=out["decode_seconds"],
                )
        assert all(decode is not None for decode in decodes)
        return decodes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _assemble(
        self, stream: _EncodedStream, decode: _StreamDecode
    ) -> StreamResult:
        task = stream.task
        result = StreamResult(
            record=task.record.name,
            channel=task.channel,
            config=stream.config,
        )
        for index, packet in enumerate(stream.packets):
            result.packets.append(
                window_metrics(
                    stream.windows[index],
                    packet,
                    decode.samples_adu[index],
                    int(decode.iterations[index]),
                    float(decode.decode_seconds[index]),
                    stream.dc_offset,
                )
            )
        if task.keep_signals:
            result.original_adu = stream.windows.astype(np.float64).reshape(-1)
            result.reconstructed_adu = decode.samples_adu.reshape(-1)
        return result


def decode_fleet(
    tasks: Sequence[StreamTask],
    batch_size: int = DEFAULT_BATCH_SIZE,
    workers: int | None = None,
) -> list[StreamResult]:
    """Convenience wrapper: one-shot fleet decode of many streams."""
    return FleetDecoder(batch_size=batch_size, workers=workers).run(tasks)
