"""Operator-keyed scheduling of cross-stream decode batches.

The scheduler answers two questions for the fleet engine:

1. **Which streams may share a solve?**  A batched FISTA iteration runs
   against one dense operator ``A = Phi Psi^-1``; only streams whose
   sensing matrix and wavelet basis coincide (same ``m``, ``n``, ``d``,
   seed, wavelet, levels and float precision) can stack their
   measurement columns into the same ``(m, B)`` block.
   :func:`operator_key` captures exactly that identity;
   :func:`solve_key` additionally folds in the solver's stopping
   parameters, because a shared batched loop runs every column with one
   ``max_iterations``/``tolerance`` pair.

2. **How are a group's windows packed into batches?**
   :class:`GroupSchedule` concatenates the group's streams in
   submission order (each stream's windows stay in their own order —
   the stateful entropy/differencing stages upstream require it, and
   routing back is positional) and slices the pooled column axis into
   ``batch_size``-wide solves.  Batches therefore *span stream
   boundaries*: ragged per-stream tails merge into full-width blocks,
   which is where the cross-stream throughput win over per-stream
   batching comes from.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..errors import ConfigurationError


def operator_key(config: SystemConfig, precision: str = "float64") -> tuple:
    """Identity of the dense system operator a decoder iterates against.

    Two streams with equal keys share ``A = Phi Psi^-1`` and therefore
    its Lipschitz constant and contiguous-transpose precomputations.
    Per-lead seeds (see
    :class:`~repro.core.multichannel.MultiChannelMonitor`) land each
    lead in its own group; a fleet of nodes shipping the paper's shared
    fixed matrix all land in one.
    """
    return (
        config.n,
        config.m,
        config.d,
        config.seed,
        config.wavelet,
        config.levels,
        precision,
    )


def solve_key(config: SystemConfig, precision: str = "float64") -> tuple:
    """Operator identity plus the shared solver stopping parameters."""
    return operator_key(config, precision) + (
        config.max_iterations,
        config.tolerance,
    )


@dataclass(frozen=True, eq=False)
class GroupSchedule:
    """Column routing for one operator group's pooled decode.

    ``eq=False``: the generated comparisons would reduce the routing
    arrays ambiguously; identity comparison (and hashability) is what
    the engine needs.

    Attributes
    ----------
    stream_ids:
        Task-list indices of the group's streams, in submission order.
    counts:
        Windows contributed by each stream.
    batch_size:
        Target solve width.
    stream_of / index_of:
        For pooled column ``c``: the *local* stream position (index
        into ``stream_ids``) and the window index within that stream.
    """

    stream_ids: tuple[int, ...]
    counts: tuple[int, ...]
    batch_size: int
    stream_of: np.ndarray
    index_of: np.ndarray

    @classmethod
    def build(
        cls,
        stream_ids: Sequence[int],
        counts: Sequence[int],
        batch_size: int,
    ) -> "GroupSchedule":
        """Lay out the pooled column order for one group."""
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if len(stream_ids) != len(counts) or not stream_ids:
            raise ConfigurationError(
                f"need matching non-empty stream_ids/counts, got "
                f"{len(stream_ids)}/{len(counts)}"
            )
        if any(count < 1 for count in counts):
            raise ConfigurationError(f"every stream needs >= 1 window: {counts}")
        stream_of = np.repeat(np.arange(len(counts)), counts)
        index_of = np.concatenate([np.arange(count) for count in counts])
        return cls(
            stream_ids=tuple(int(s) for s in stream_ids),
            counts=tuple(int(c) for c in counts),
            batch_size=int(batch_size),
            stream_of=stream_of,
            index_of=index_of,
        )

    @property
    def total_windows(self) -> int:
        """Pooled column count across the group's streams."""
        return int(self.stream_of.size)

    @property
    def num_batches(self) -> int:
        """Solves this schedule issues (last one may be ragged)."""
        return -(-self.total_windows // self.batch_size)

    def batches(self) -> Iterator[tuple[int, int]]:
        """Yield ``(start, stop)`` pooled-column ranges per solve."""
        for start in range(0, self.total_windows, self.batch_size):
            yield start, min(start + self.batch_size, self.total_windows)


def build_schedules(
    keys: Sequence[tuple],
    counts: Sequence[int],
    batch_size: int,
) -> list[GroupSchedule]:
    """Group streams by solve key and schedule each group's batches.

    ``keys[i]``/``counts[i]`` describe stream ``i`` of the task list;
    groups come back in order of each key's first appearance, so the
    fleet's output routing is deterministic.
    """
    if len(keys) != len(counts):
        raise ConfigurationError(
            f"keys/counts length mismatch: {len(keys)} vs {len(counts)}"
        )
    by_key: dict[tuple, list[int]] = {}
    for stream_id, key in enumerate(keys):
        by_key.setdefault(key, []).append(stream_id)
    return [
        GroupSchedule.build(
            members, [counts[s] for s in members], batch_size
        )
        for members in by_key.values()
    ]
