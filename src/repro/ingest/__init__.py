"""Live ingestion: asyncio node links feeding the fleet scheduler.

The paper's deployment loop is a body-worn encoder streaming compressed
ECG over a radio to a monitor that decodes in real time.  The offline
engines (:mod:`repro.core.batch`, :mod:`repro.fleet`) are fed whole
pre-read records; this package closes the loop with the *live* wire
path a telecardiology coordinator actually runs:

- :mod:`~repro.ingest.protocol` — the length-prefixed frame format and
  JSON handshake a node link speaks (versioned; packet frames carry
  the exact CRC-protected on-air bytes);
- :mod:`~repro.ingest.gateway` — :class:`IngestGateway`, the asyncio
  server: accepts TCP or in-process links, runs the stateful decode
  stages per stream, pools measurement columns per operator group
  (same keying as the fleet scheduler), and flushes batched solves on
  batch-full / idle-deadline / stream-end triggers with per-stream
  backpressure;
- :mod:`~repro.ingest.client` — :class:`NodeClient`, the node-side
  simulator replaying records at true (or accelerated) sample rate;
- :mod:`~repro.ingest.channel` — the lossy-radio model: a seeded
  :class:`LossyLink` impairment wrapper (drops, reorders, duplicates,
  CRC-corrupting bit flips) plus the sequence-gap recovery state
  machine (:class:`SequenceTracker`, :func:`admit_packet`, and the
  two-tier :class:`StreamRecovery` parity/NACK front-end) the gateway
  runs per session, and :func:`replay_survivors`, the offline
  reference over a recorded delivered-frame sequence;
- :mod:`~repro.ingest.federation` — :class:`FederationFrontDoor`, the
  multi-gateway scale-out tier: a seeded consistent-hash front door
  that routes each node link by its *operator key* to one of N
  supervised gateway worker processes (keeping every group's shared
  ``A`` precompute and cross-stream batching on one gateway), remaps
  only the dead worker's ring segment on failure, and rolls worker
  telemetry up through monoid snapshot deltas;
- :mod:`~repro.ingest.adaptive` — the AIMD batch controller
  (:class:`AdaptiveBatchController`): steers the gateway's effective
  batch width and flush deadline against the real-time budget from
  the telemetry plane's solve-latency signals, adding the
  budget-aware *pressure flush* to the full/deadline/drain triggers.

Every gateway event — sessions, flushes, solve and window latencies,
channel damage — publishes through one
:class:`~repro.telemetry.MetricsRegistry`; the stat dataclasses
(:class:`GatewayStats`, :class:`IngestStreamResult`) are read models
over it, and the registry feeds the persistent sinks (`serve
--metrics-file` / ``--metrics-port``).

Decoded output is bit-identical to the offline path: a flushed block
runs the same :func:`~repro.fleet.engine.solve_measurement_block` the
column-sharded fleet engine uses, on the same pooled columns — and
under loss, the delivered windows are bit-identical to an offline
decode of the same surviving packet set, with the damage bounded by
the keyframe interval and accounted per stream.
"""

from .adaptive import (
    AdaptiveBatchController,
    AdaptiveConfig,
    FixedBatchController,
    SolveTimeModel,
)
from .channel import (
    HOLD_CAP_EPOCHS,
    FrameVerdict,
    LinkStats,
    LossAccounting,
    LossyChannel,
    LossyLink,
    SequenceTracker,
    StreamRecovery,
    admit_packet,
    replay_survivors,
)
from .client import NodeClient, NodeReport, encoded_packets
from .federation import (
    SESSION_ID_STRIDE,
    FederationFrontDoor,
    FederationStats,
    serve_federation,
)
from .gateway import (
    DEFAULT_FLUSH_MS,
    GatewayStats,
    IngestGateway,
    IngestStreamResult,
    merge_stream_results,
    serve_gateway,
)
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameKind,
    Handshake,
    encode_frame,
    encode_json_frame,
    read_frame,
)

__all__ = [
    "AdaptiveBatchController",
    "AdaptiveConfig",
    "DEFAULT_FLUSH_MS",
    "FederationFrontDoor",
    "FederationStats",
    "FixedBatchController",
    "FrameKind",
    "SolveTimeModel",
    "FrameVerdict",
    "GatewayStats",
    "HOLD_CAP_EPOCHS",
    "Handshake",
    "IngestGateway",
    "IngestStreamResult",
    "LinkStats",
    "LossAccounting",
    "LossyChannel",
    "LossyLink",
    "MAX_FRAME_BYTES",
    "NodeClient",
    "NodeReport",
    "PROTOCOL_VERSION",
    "SESSION_ID_STRIDE",
    "SUPPORTED_VERSIONS",
    "SequenceTracker",
    "StreamRecovery",
    "admit_packet",
    "encode_frame",
    "encode_json_frame",
    "encoded_packets",
    "merge_stream_results",
    "read_frame",
    "replay_survivors",
    "serve_federation",
    "serve_gateway",
]
