"""Adaptive batch control: AIMD on the gateway's flush operating point.

The gateway's two knobs — target batch width and flush-on-idle
deadline — used to be fixed for the life of a ``serve``, yet the right
values depend on load: under a burst, wide solves amortize per-flush
overhead and drain the backlog fastest, while near the paper's
2-second end-to-end budget a wide in-flight solve is exactly the
head-of-line blocking that makes the *next* windows miss.  The
:class:`AdaptiveBatchController` closes that loop from the telemetry
plane's signals:

- **additive increase** — while there is a backlog deeper than the
  current width (demand) *and* the solve-latency percentile of recent
  flushes leaves headroom against the budget, widen (doubling while
  the backlog is much deeper — the slow-start analogue).  A candidate
  width is admitted only if the controller's running fit of solve
  time vs width predicts its solve still fits the headroom, so the
  loop converges on the widest batch the budget can absorb instead of
  overshooting and missing wholesale;
- **multiplicative decrease** — when a single solve consumed the shed
  fraction of the budget outright (a width that eats the budget in
  one flush head-of-line blocks everything behind it), halve the
  width and tighten the flush deadline so pending windows get out in
  smaller, faster solves;
- **pressure flush** — a latency-model rule on top of the batch-full /
  deadline / drain triggers: flush *now* if waiting any longer would,
  per the model, push the oldest pending window past the budget (and
  the window is still salvageable — a hopeless backlog is left to the
  full/deadline triggers rather than thrashing the operating point).
  This converts the budget from a hope into a scheduling constraint:
  it is what recovers the "last partial batch" a fixed gateway wastes
  waiting on a deadline the budget cannot afford.

Stability at the configured operating point is a hard design rule:
with no backlog and no budget threat, every signal is in its dead
band, the effective width and deadline stay at the configured base
values, and the gateway's flush schedule is *identical* to a
non-adaptive run — which is what lets
``benchmarks/bench_adaptive_batching.py`` pin bit-identical
steady-state output against fixed batching.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..telemetry import NULL_METER, Meter


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning constants of the AIMD loop.

    The defaults are deliberately conservative: widen slowly, shed
    hard, keep a wide dead band so steady-state traffic never
    oscillates the operating point.
    """

    #: end-to-end per-window latency budget (the paper's 2 s window)
    budget_s: float = 2.0
    #: widen only while the recent solve-latency percentile — and the
    #: model's prediction for the candidate width — stay below this
    #: fraction of the budget.  The implied convergence point is the
    #: widest batch whose solve fits the headroom.
    headroom_fraction: float = 0.5
    #: shed when one observed solve reaches this fraction of the
    #: budget (a width that eats the budget in a single flush is
    #: head-of-line blocking everything behind it)
    shed_fraction: float = 0.85
    #: additive widen step (windows per observed flush)
    widen_step: int = 4
    #: multiplicative shed factor for width and flush deadline
    shed_factor: float = 0.5
    #: hard bounds on the effective width, as factors of the base
    max_batch_factor: int = 8
    min_batch: int = 1
    #: floor of the effective flush deadline, as a factor of the base
    min_flush_factor: float = 0.1
    #: percentile of recent solve latencies steering the widen gate
    percentile: float = 95.0
    #: rolling window (in flushes / windows) the percentiles are
    #: computed over
    latency_window: int = 128
    #: safety margin subtracted from the budget in the pressure rule
    safety_s: float = 0.1

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ConfigurationError(
                f"budget_s must be positive, got {self.budget_s}"
            )
        if not 0.0 < self.headroom_fraction < self.shed_fraction <= 1.0:
            raise ConfigurationError(
                "need 0 < headroom_fraction < shed_fraction <= 1, got "
                f"{self.headroom_fraction}/{self.shed_fraction}"
            )
        if not 0.0 < self.shed_factor < 1.0:
            raise ConfigurationError(
                f"shed_factor must be in (0, 1), got {self.shed_factor}"
            )
        if self.widen_step < 1 or self.min_batch < 1:
            raise ConfigurationError(
                f"widen_step and min_batch must be >= 1, got "
                f"{self.widen_step}/{self.min_batch}"
            )
        if self.max_batch_factor < 1:
            raise ConfigurationError(
                f"max_batch_factor must be >= 1, got {self.max_batch_factor}"
            )


class SolveTimeModel:
    """Running affine fit ``solve_s ~ overhead + per_window * width``.

    Fed every observed ``(width, seconds)`` flush; the two parameters
    are recovered by least squares over a bounded window of the most
    recent flushes (older samples simply age out of the deque), so
    the model tracks the machine it runs on (BLAS width efficiency
    included) without any offline calibration.  Until two distinct
    widths have been seen the fit degenerates to a zero intercept and
    the mean per-window rate.
    """

    def __init__(self, history: int = 64) -> None:
        self._samples: deque[tuple[float, float]] = deque(maxlen=history)

    def observe(self, width: int, seconds: float) -> None:
        if width >= 1 and seconds >= 0.0:
            self._samples.append((float(width), float(seconds)))

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def parameters(self) -> tuple[float, float]:
        """``(overhead_s, per_window_s)``; zeros before any data."""
        if not self._samples:
            return 0.0, 0.0
        n = len(self._samples)
        sw = sum(w for w, _ in self._samples)
        ss = sum(s for _, s in self._samples)
        if n < 2:
            return 0.0, ss / sw
        sww = sum(w * w for w, _ in self._samples)
        sws = sum(w * s for w, s in self._samples)
        denominator = n * sww - sw * sw
        if denominator <= 1e-12:  # one distinct width so far
            return 0.0, ss / sw
        slope = (n * sws - sw * ss) / denominator
        intercept = (ss - slope * sw) / n
        # a physical solve has non-negative cost per window and per
        # flush; clamp fit noise instead of predicting negative time
        slope = max(slope, 0.0)
        intercept = max(intercept, 0.0)
        return intercept, slope

    def predict(self, width: int) -> float:
        """Expected solve seconds of a ``width``-wide flush."""
        overhead, per_window = self.parameters()
        return overhead + per_window * max(width, 0)


class AdaptiveBatchController:
    """The AIMD state machine steering one gateway's flush loop.

    Parameters
    ----------
    base_batch:
        The configured target width — the fixed-batch operating point
        the controller returns to when no signal says otherwise.
    base_flush_s:
        The configured flush-on-idle deadline, likewise the resting
        value.
    config:
        :class:`AdaptiveConfig` tuning constants.
    meter:
        Telemetry meter publishing the controller's state (effective
        width/deadline gauges, widen/shed counters) — the plane both
        feeds and observes the loop.
    """

    def __init__(
        self,
        base_batch: int,
        base_flush_s: float,
        config: AdaptiveConfig | None = None,
        meter: Meter = NULL_METER,
    ) -> None:
        if base_batch < 1:
            raise ConfigurationError(
                f"base_batch must be >= 1, got {base_batch}"
            )
        if base_flush_s <= 0:
            raise ConfigurationError(
                f"base_flush_s must be positive, got {base_flush_s}"
            )
        self.config = config or AdaptiveConfig()
        self.base_batch = base_batch
        self.base_flush_s = base_flush_s
        self.max_batch = base_batch * self.config.max_batch_factor
        self.min_flush_s = base_flush_s * self.config.min_flush_factor
        self.effective_batch = base_batch
        self.effective_flush_s = base_flush_s
        self.model = SolveTimeModel()
        self.widen_count = 0
        self.shed_count = 0
        self._recent_latency: deque[float] = deque(
            maxlen=self.config.latency_window
        )
        self._recent_solves: deque[float] = deque(
            maxlen=self.config.latency_window
        )
        self._meter = meter
        self._publish()

    # ------------------------------------------------------------------
    # signals in
    # ------------------------------------------------------------------
    def record_latency(self, latency_s: float) -> None:
        """Feed one decoded window's end-to-end latency (observed in
        telemetry and exposed through :meth:`latency_percentile`; the
        AIMD step itself steers on *solve* latency, which attributes
        to the width knob instead of to upstream queueing)."""
        self._recent_latency.append(float(latency_s))

    @staticmethod
    def _percentile(samples: deque, q: float) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        rank = q / 100.0 * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)

    def latency_percentile(self) -> float:
        """Steering percentile of recent end-to-end window latencies."""
        return self._percentile(self._recent_latency, self.config.percentile)

    def solve_percentile(self) -> float:
        """Steering percentile of recent per-flush solve latencies."""
        return self._percentile(self._recent_solves, self.config.percentile)

    def _headroom_cap(self) -> int:
        """Widest batch whose predicted solve fits the headroom."""
        overhead, per_window = self.model.parameters()
        limit = self.config.headroom_fraction * self.config.budget_s
        if per_window <= 0.0:
            return self.max_batch
        return max(
            self.config.min_batch, int((limit - overhead) / per_window)
        )

    def observe_flush(
        self,
        width: int,
        solve_seconds: float,
        backlog: int,
        reason: str,
    ) -> None:
        """One flush completed: update the model, run the AIMD step.

        ``backlog`` is the group's pending depth *after* the flush —
        the demand signal; ``reason`` is the flush trigger.  A routine
        ``"pressure"`` flush is the timing mechanism doing its job and
        does *not* shed the width (the width knob was not even binding
        on a partial flush); the shed signal is a solve that consumed
        the budget, which is attributable to the width alone.
        """
        self.model.observe(width, solve_seconds)
        self._recent_solves.append(float(solve_seconds))
        budget = self.config.budget_s
        headroom = self.config.headroom_fraction * budget
        threatened = solve_seconds >= self.config.shed_fraction * budget
        if threatened:
            previous = (self.effective_batch, self.effective_flush_s)
            self.effective_batch = max(
                self.config.min_batch,
                int(self.effective_batch * self.config.shed_factor),
            )
            self.effective_flush_s = max(
                self.min_flush_s,
                self.effective_flush_s * self.config.shed_factor,
            )
            if (self.effective_batch, self.effective_flush_s) != previous:
                self.shed_count += 1
                self._meter.inc("ingest_controller_shed")
        elif (
            backlog > self.effective_batch
            and self.solve_percentile() < headroom
        ):
            # demand and headroom: widen — doubling while the backlog
            # dwarfs the width (slow start), additively otherwise —
            # but never past the width the model says the headroom can
            # absorb in one solve
            if backlog >= 2 * self.effective_batch:
                candidate = 2 * self.effective_batch
            else:
                candidate = self.effective_batch + self.config.widen_step
            widened = min(candidate, self.max_batch, self._headroom_cap())
            if widened > self.effective_batch:
                self.effective_batch = widened
                self.widen_count += 1
                self._meter.inc("ingest_controller_widen")
            # demand also relaxes a previously-tightened deadline back
            # toward (never past) the configured base
            self.effective_flush_s = min(
                self.base_flush_s, self.effective_flush_s * 2.0
            )
        else:
            # dead band: drift the deadline home; the width holds (an
            # idle lull must not erase what load taught us, and at the
            # base point this is exactly the fixed-batch schedule)
            self.effective_flush_s = min(
                self.base_flush_s, self.effective_flush_s * 1.5
            )
        self._publish()

    # ------------------------------------------------------------------
    # decisions out
    # ------------------------------------------------------------------
    def pressure_due_at(self, oldest_t_submit: float, depth: int) -> float:
        """Loop time at which the oldest pending window must flush.

        The latest moment a flush of the currently-plausible width can
        start and still land inside the budget, per the solve-time
        model.  Infinity until the model has data — the deadline
        trigger alone governs a cold start — and infinity when no
        flush could save the window anyway (hopeless backlogs belong
        to the full/deadline triggers; thrashing the operating point
        over windows that are already lost helps nobody).
        """
        if self.model.sample_count == 0:
            return float("inf")
        width = min(max(depth, 1), self.effective_batch)
        slack = (
            self.config.budget_s
            - self.config.safety_s
            - self.model.predict(width)
        )
        if slack <= 0.0:
            return float("inf")
        return oldest_t_submit + slack

    def _publish(self) -> None:
        self._meter.set_gauge("ingest_effective_batch", self.effective_batch)
        self._meter.set_gauge(
            "ingest_effective_flush_ms", 1000.0 * self.effective_flush_s
        )

    @property
    def at_base_point(self) -> bool:
        """Whether the operating point equals the configured base."""
        return (
            self.effective_batch == self.base_batch
            and self.effective_flush_s == self.base_flush_s
        )


class FixedBatchController:
    """The null controller: the configured point, forever.

    Gives the gateway one code path for both modes — the fixed
    gateway is simply an adaptive gateway whose controller never
    moves and never raises pressure flushes.
    """

    def __init__(self, base_batch: int, base_flush_s: float) -> None:
        self.base_batch = base_batch
        self.base_flush_s = base_flush_s
        self.effective_batch = base_batch
        self.effective_flush_s = base_flush_s
        self.widen_count = 0
        self.shed_count = 0

    def record_latency(self, latency_s: float) -> None:
        pass

    def observe_flush(
        self, width: int, solve_seconds: float, backlog: int, reason: str
    ) -> None:
        pass

    def pressure_due_at(self, oldest_t_submit: float, depth: int) -> float:
        return float("inf")

    @property
    def at_base_point(self) -> bool:
        return True


__all__ = [
    "AdaptiveBatchController",
    "AdaptiveConfig",
    "FixedBatchController",
    "SolveTimeModel",
]
