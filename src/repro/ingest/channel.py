"""Lossy-channel semantics of the wire path: impairment + recovery.

The paper's node→coordinator link is a real wireless channel, so the
live path cannot assume a perfect pipe: ``PACKET`` frames may be
dropped, reordered, duplicated or bit-flipped in flight.  This module
holds *both* sides of that reality:

- :class:`LossyChannel` / :class:`LossyLink` — a seeded impairment
  injector that wraps any node-side writer (the in-process loopback or
  a real TCP ``StreamWriter``) and damages ``PACKET`` frames at
  configurable rates, recording the exact fate of every frame so a
  bench can replay the surviving packet set offline;
- :class:`SequenceTracker` + :func:`admit_packet` — the receiver-side
  sequence-gap recovery state machine the gateway runs per session:
  duplicates and stale reordered frames are dropped idempotently, a
  gap or a corrupt CRC triggers a *resync* (difference packets are
  discarded until the next keyframe re-anchors stage 2), and every
  discarded window is accounted in :class:`LossAccounting`;
- :class:`StreamRecovery` — the two-tier recovery front-end layered
  *before* :func:`admit_packet` for fec-enabled (protocol v2) streams:
  a sequence gap opens a *hold* instead of an immediate resync, the
  epoch's ``PARITY`` frame reconstructs a single missing body locally
  (tier 1, :mod:`repro.coding.fec`), a ``NACK`` solicits retransmission
  of anything parity cannot cover (tier 2), and only when both tiers
  fail does the held run drain through the untouched keyframe-resync
  path.  Every trigger is frame-driven (parity arrival, next keyframe,
  BYE, hold cap, retransmit budget), so the live gateway and the
  offline replay make identical decisions from the same frame stream;
- :func:`replay_survivors` — the offline reference: the same state
  machine applied to a recorded delivered-frame sequence, used by
  ``benchmarks/bench_lossy_channel.py`` to pin that the live gateway's
  delivered-window output is bit-identical to an offline decode of the
  same surviving packet set.

Damage is bounded by design: the encoder emits a raw keyframe every
``keyframe_interval`` packets (``SystemConfig.keyframe_interval``), so
one loss event can cost at most ``keyframe_interval`` windows — the
lost window(s) plus the unusable difference packets up to the next
keyframe.  The accounting invariant, per stream::

    windows_accepted + windows_lost + windows_resynced == windows_sent

where ``windows_accepted`` includes recovered windows — a window
reconstructed from parity or filled by a retransmission counts under
``windows_recovered_parity`` / ``windows_recovered_retransmit`` *and*
decodes like any accepted window, but is never double-counted as lost.
(``frames_duplicate``, ``frames_corrupt`` and
``frames_late_retransmit`` count *frames*, not windows: a duplicate's
window was already accepted, a corrupt frame's window surfaces through
the sequence gap it leaves behind, and a late retransmit's window was
already charged when recovery gave up on it.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..coding.fec import covered_sequences, decode_parity_body, recover_body
from ..core.decoder import PacketPayloadDecoder
from ..core.packets import EncodedPacket, PacketKind
from ..errors import ConfigurationError, PacketFormatError
from ..telemetry import NULL_METER, Meter
from .protocol import FrameKind

_SEQ_MOD = 1 << 16
_SEQ_HALF = 1 << 15
_FRAME_PREFIX = 4  # u32be length


def sequence_delta(expected: int, sequence: int) -> int:
    """Signed distance from ``expected`` to ``sequence`` mod 2^16.

    Positive: ``sequence`` is ahead (a gap of that many windows was
    lost); negative: behind (a duplicate or stale reordered frame);
    zero: exactly the expected next window.  Half-range comparison, so
    the 16-bit wraparound at 65535→0 is a delta of 1, not -65535.
    """
    return (sequence - expected + _SEQ_HALF) % _SEQ_MOD - _SEQ_HALF


class FrameVerdict(enum.Enum):
    """Outcome of one received ``PACKET`` frame under gap recovery."""

    #: in-sequence and decodable: hand the packet to stages 1-2
    ACCEPT = "accept"
    #: CRC (or framing) failure: frame discarded, stream resyncs
    CORRUPT = "corrupt"
    #: duplicate or stale reordered frame: discarded idempotently
    STALE = "stale"
    #: difference packet during resync: discarded, waiting for the
    #: next keyframe to re-anchor the difference chain
    RESYNC_SKIP = "resync_skip"
    #: a copy of a window the recovery layer already gave up on (its
    #: gap was charged and the stream resynced past it): discarded,
    #: but accounted under ``frames_late_retransmit`` instead of
    #: vanishing into the duplicate counter
    LATE_RETRANSMIT = "late_retransmit"


@dataclass
class LossAccounting:
    """Per-stream damage counters of the gap-recovery state machine."""

    #: windows that never arrived (sequence gaps, including the tail
    #: gap closed by a BYE frame that declares the sent-window count)
    windows_lost: int = 0
    #: difference packets that arrived but were discarded because the
    #: stream was resyncing (unusable until the next keyframe)
    windows_resynced: int = 0
    #: PACKET frames whose on-air bytes failed the CRC/format check
    frames_corrupt: int = 0
    #: frames dropped idempotently: true duplicates and reordered
    #: frames arriving after their window was already counted lost
    frames_duplicate: int = 0
    #: windows reconstructed locally from an epoch ``PARITY`` frame
    #: (tier-1 recovery) and then accepted — never also counted lost
    windows_recovered_parity: int = 0
    #: windows filled by a retransmitted (or late-reordered) copy while
    #: recovery was holding the gap open (tier-2) and then accepted
    windows_recovered_retransmit: int = 0
    #: retransmitted frames that arrived only after recovery gave up on
    #: their window (the gap was already charged and the stream
    #: resynced past it): dropped, but visible here instead of blending
    #: into ``frames_duplicate``
    frames_late_retransmit: int = 0

    @property
    def windows_damaged(self) -> int:
        """Total windows this stream did not decode (lost + resynced)."""
        return self.windows_lost + self.windows_resynced

    @property
    def windows_recovered(self) -> int:
        """Windows that would have been damaged but were recovered."""
        return self.windows_recovered_parity + self.windows_recovered_retransmit


class SequenceTracker:
    """Receiver-side expected-sequence state of one packet stream.

    The wire protocol guarantees a stream's first window is sequence 0
    (the node encoder resets before streaming), so the tracker starts
    expecting 0 and a lost *first* packet is accounted like any other
    gap.

    Damage events flow through the ``count_*`` methods, which keep the
    :class:`LossAccounting` view and publish the same event to the
    tracker's telemetry :class:`~repro.telemetry.Meter` (the gateway
    binds one labeled with the stream identity; the default null meter
    keeps offline replays dependency-free).
    """

    def __init__(self, meter: Meter = NULL_METER) -> None:
        self.expected = 0
        self.accounting = LossAccounting()
        self.meter = meter

    def delta(self, sequence: int) -> int:
        """Signed distance of ``sequence`` from the expected next one."""
        return sequence_delta(self.expected, sequence)

    def advance(self, sequence: int) -> None:
        """Move past ``sequence``: the next expected follows it."""
        self.expected = (sequence + 1) % _SEQ_MOD

    # -- damage accounting (view + telemetry, one call site each) ------
    def count_lost(self, windows: int) -> None:
        self.accounting.windows_lost += windows
        self.meter.inc("ingest_windows_lost", windows)

    def count_resynced(self) -> None:
        self.accounting.windows_resynced += 1
        self.meter.inc("ingest_windows_resynced")

    def count_corrupt(self) -> None:
        self.accounting.frames_corrupt += 1
        self.meter.inc("ingest_frames_corrupt")

    def count_duplicate(self) -> None:
        self.accounting.frames_duplicate += 1
        self.meter.inc("ingest_frames_duplicate")

    def count_recovered_parity(self) -> None:
        self.accounting.windows_recovered_parity += 1
        self.meter.inc("ingest_windows_recovered_parity")

    def count_recovered_retransmit(self) -> None:
        self.accounting.windows_recovered_retransmit += 1
        self.meter.inc("ingest_windows_recovered_retransmit")

    def count_late_retransmit(self) -> None:
        self.accounting.frames_late_retransmit += 1
        self.meter.inc("ingest_frames_late_retransmit")

    def close_stream(self, windows_sent: int) -> None:
        """Account the tail gap of an orderly stream end.

        A trailing loss leaves no later packet to reveal the gap, so
        the ``BYE`` frame may declare how many windows the node sent;
        any still-missing tail is charged to ``windows_lost``.
        """
        final = windows_sent % _SEQ_MOD
        gap = self.delta(final)
        if gap > 0:
            self.count_lost(gap)
            self.expected = final


def admit_packet(
    tracker: SequenceTracker,
    payload: PacketPayloadDecoder,
    body: bytes,
) -> tuple[FrameVerdict, EncodedPacket | None]:
    """Run one wire ``PACKET`` body through sequence-gap recovery.

    The single admission decision shared by the live gateway and the
    offline :func:`replay_survivors` reference — one implementation is
    what makes the two provably agree.  Updates ``tracker`` accounting
    and the payload decoder's resync state; the caller decodes the
    packet (stages 1-2) only on :attr:`FrameVerdict.ACCEPT`.
    """
    try:
        packet = EncodedPacket.from_bytes(body)
    except PacketFormatError:
        # A frame the radio damaged: the CRC catches it, the stream
        # survives.  Its sequence is unreadable, so the expected
        # counter holds still — if the corrupt frame *was* the expected
        # window, the next good frame exposes the gap and the window is
        # charged to windows_lost there.  The difference reference may
        # now be stale, so stage 2 resyncs to the next keyframe.
        tracker.count_corrupt()
        payload.resync()
        return FrameVerdict.CORRUPT, None
    delta = tracker.delta(packet.sequence)
    if delta < 0:
        tracker.count_duplicate()
        return FrameVerdict.STALE, packet
    if delta > 0:
        tracker.count_lost(delta)
        payload.resync()
    tracker.advance(packet.sequence)
    if payload.skip_to_keyframe(packet):
        tracker.count_resynced()
        return FrameVerdict.RESYNC_SKIP, packet
    return FrameVerdict.ACCEPT, packet


#: hold cap in keyframe epochs: a gap still unfilled after this many
#: epochs of held frames will never be (the node's retransmit ring has
#: rolled past it), so recovery gives up frame-deterministically
HOLD_CAP_EPOCHS = 4

#: how a held gap got filled (the tier that recovered the window)
_VIA_PARITY = "parity"
_VIA_RETRANSMIT = "retransmit"


class StreamRecovery:
    """Two-tier (parity + NACK) recovery front-end of one stream.

    Sits between the wire and :func:`admit_packet`.  With ``fec`` off
    every ``PACKET`` body flows straight through the plain admission
    path — bit-identical to a v1 stream.  With ``fec`` on, a sequence
    gap *holds* subsequent frames un-admitted (and un-charged) while
    the tiers try to close it:

    1. the epoch's ``PARITY`` frame XOR-reconstructs a single missing
       body locally (CRC-validated, zero round trips);
    2. anything parity cannot cover (>= 2 losses in one epoch, a lost
       parity, or a tail gap) is ``NACK``ed via ``on_nack`` and filled
       by the node's retransmission — a retransmit-aware fill, not a
       duplicate;
    3. when the retransmit budget is spent, the hold cap overflows, or
       the stream closes with the gap still open, the held run drains
       through the untouched :func:`admit_packet` keyframe-resync path
       (PR 4 semantics), and any later copy of a given-up window is
       classified :attr:`FrameVerdict.LATE_RETRANSMIT`.

    Every decision is frame-driven — parity arrival, next-keyframe
    arrival, ``BYE``, hold-cap, budget — never wall-clock, so the live
    gateway and the offline :func:`replay_survivors` reference reach
    identical verdicts and accounting from the same delivered-frame
    sequence.  (The gateway's post-``BYE`` read deadline only fires
    when an awaited retransmit never arrives, in which case both sides
    converge through the same :meth:`give_up`.)

    Each method returns the admission events it released, in decode
    order, as ``(verdict, packet)`` pairs; the caller decodes
    :attr:`FrameVerdict.ACCEPT` packets exactly as before.
    """

    def __init__(
        self,
        tracker: SequenceTracker,
        payload: PacketPayloadDecoder,
        *,
        fec: bool = False,
        nack_budget: int = 8,
        on_nack: Callable[[list[int]], None] | None = None,
    ) -> None:
        self.tracker = tracker
        self.payload = payload
        self.fec = bool(fec)
        self.nack_budget = int(nack_budget)
        self.on_nack = on_nack
        interval = payload.config.keyframe_interval
        self._hold_cap = HOLD_CAP_EPOCHS * interval
        self._body_window = 2 * interval
        #: held frame bodies behind an open gap, keyed by sequence
        self._pending: dict[int, bytes] = {}
        #: open-gap sequences still wanted (NACKable / parity targets)
        self._missing: set[int] = set()
        #: which tier filled a missing sequence, for accounting on drain
        self._via: dict[int, str] = {}
        #: highest sequence noted while holding (``None`` in flow state)
        self._horizon: int | None = None
        #: recently admitted bodies, retained for parity reconstruction
        self._bodies: dict[int, bytes] = {}
        self._nacked: set[int] = set()
        self._nack_spent = 0
        self._given_up: set[int] = set()
        self._declared: int | None = None

    # -- observable state ------------------------------------------------
    @property
    def holding(self) -> bool:
        """Whether a gap is open (frames held, admission deferred)."""
        return bool(self._missing or self._pending)

    @property
    def nacks_sent(self) -> int:
        """Sequences NACKed so far (counts against the budget)."""
        return self._nack_spent

    # -- frame entry points ----------------------------------------------
    def on_packet(
        self, body: bytes
    ) -> list[tuple[FrameVerdict, EncodedPacket | None]]:
        """Route one wire ``PACKET`` body through recovery."""
        if not self.fec:
            return [admit_packet(self.tracker, self.payload, body)]
        try:
            packet = EncodedPacket.from_bytes(body)
        except PacketFormatError:
            # Unlike the plain path, do NOT resync yet: the corrupted
            # window's gap surfaces at the next good frame and parity
            # or a retransmit can still recover the original body.
            self.tracker.count_corrupt()
            return [(FrameVerdict.CORRUPT, None)]
        seq = packet.sequence
        if not self.holding:
            delta = self.tracker.delta(seq)
            if delta < 0:
                return [self._stale(seq, packet)]
            if delta == 0:
                return [self._admit(body)]
            # a gap opened: hold this frame instead of charging the gap
            self._note_ahead(seq, body)
            return self._after_hold_grew(packet)
        # holding: classify against the open gap
        if seq in self._missing:
            return self._fill(seq, body, _VIA_RETRANSMIT)
        if seq in self._pending:
            self.tracker.count_duplicate()
            return [(FrameVerdict.STALE, packet)]
        if self._behind_hold(seq):
            return [self._stale(seq, packet)]
        self._note_ahead(seq, body)
        return self._after_hold_grew(packet)

    def on_parity(
        self, body: bytes
    ) -> list[tuple[FrameVerdict, EncodedPacket | None]]:
        """Route one ``PARITY`` frame body through tier-1 recovery."""
        if not self.fec:
            return []  # fec-off stream: parity is inert
        self.tracker.meter.inc("ingest_parity_frames")
        try:
            base, count, parity = decode_parity_body(body)
        except PacketFormatError:
            return []  # damaged parity: tier 2 still covers the epoch
        covered = covered_sequences(base, count)
        # Parity also *reveals* a tail gap of its epoch: a covered
        # sequence that neither arrived nor is already wanted must have
        # been dropped with no later packet to expose it yet.
        for seq in covered:
            if (
                seq not in self._pending
                and seq not in self._missing
                and not self._behind_hold(seq)
            ):
                self._note_missing(seq)
        wanted = [seq for seq in covered if seq in self._missing]
        if not wanted:
            return []
        if len(wanted) == 1:
            events = self._try_parity_recover(wanted[0], covered, parity)
            if events is not None:
                return events
        # >= 2 losses in the epoch (or reconstruction failed): tier 2
        return self._nack(wanted)

    def bye(
        self, declared: int | None
    ) -> list[tuple[FrameVerdict, EncodedPacket | None]]:
        """Orderly stream end: reveal the tail gap, NACK what remains.

        Returns admission events; afterwards the caller should keep
        reading retransmits while :attr:`holding` (bounded by its own
        deadline) and finally call :meth:`close`.  A fec-off stream
        charges the tail immediately, exactly as before.
        """
        self._declared = declared
        if not self.fec:
            if declared is not None:
                self.tracker.close_stream(declared)
            return []
        if declared is not None:
            # reveal every declared-but-unseen tail sequence as missing
            final = declared % _SEQ_MOD
            while True:
                nxt = (
                    self.tracker.expected
                    if self._horizon is None
                    else (self._horizon + 1) % _SEQ_MOD
                )
                if sequence_delta(nxt, final) <= 0:
                    break
                self._note_missing(nxt)
        if self._missing:
            return self._nack(sorted(self._missing, key=self._order))
        return []

    def close(self) -> list[tuple[FrameVerdict, EncodedPacket | None]]:
        """Final flush at link end: give up whatever is still open."""
        return self.give_up()

    # -- recovery internals ----------------------------------------------
    def give_up(self) -> list[tuple[FrameVerdict, EncodedPacket | None]]:
        """Abandon the open gap: drain held frames through the plain
        keyframe-resync path (which charges the missing windows), and
        remember the abandoned sequences so late retransmits classify
        as :attr:`FrameVerdict.LATE_RETRANSMIT`.  Idempotent."""
        if self._missing:
            self._given_up.update(self._missing)
            self._missing.clear()
        self._via.clear()
        events = self._drain() if self._pending else []
        self._horizon = None
        if self._declared is not None:
            final = self._declared % _SEQ_MOD
            gap = self.tracker.delta(final)
            if gap > 0:
                self._given_up.update(
                    (self.tracker.expected + i) % _SEQ_MOD for i in range(gap)
                )
            self.tracker.close_stream(self._declared)
        return events

    def _order(self, seq: int) -> int:
        """Ascending stream order of ``seq`` (mod-2^16 safe)."""
        return sequence_delta(self.tracker.expected, seq)

    def _behind_hold(self, seq: int) -> bool:
        """Whether ``seq`` is behind everything recovery still wants."""
        return self.tracker.delta(seq) < 0

    def _stale(
        self, seq: int, packet: EncodedPacket
    ) -> tuple[FrameVerdict, EncodedPacket]:
        if seq in self._given_up:
            self.tracker.count_late_retransmit()
            return FrameVerdict.LATE_RETRANSMIT, packet
        self.tracker.count_duplicate()
        return FrameVerdict.STALE, packet

    def _admit(
        self, body: bytes
    ) -> tuple[FrameVerdict, EncodedPacket | None]:
        """Plain admission of one body + retention for parity math."""
        verdict, packet = admit_packet(self.tracker, self.payload, body)
        if packet is not None and verdict in (
            FrameVerdict.ACCEPT,
            FrameVerdict.RESYNC_SKIP,
        ):
            self._bodies[packet.sequence] = body
            while len(self._bodies) > self._body_window:
                self._bodies.pop(next(iter(self._bodies)))
        return verdict, packet

    def _note_missing(self, seq: int) -> None:
        """Mark an unseen sequence at/ahead of the horizon as missing."""
        if self._horizon is None:
            for i in range(self.tracker.delta(seq)):
                self._missing.add((self.tracker.expected + i) % _SEQ_MOD)
            self._missing.add(seq)
            self._horizon = seq
            return
        rel = sequence_delta(self._horizon, seq)
        for i in range(1, rel + 1):
            self._missing.add((self._horizon + i) % _SEQ_MOD)
        if rel > 0:
            self._horizon = seq

    def _note_ahead(self, seq: int, body: bytes) -> None:
        """Hold an ahead-of-expected body; open/extend the gap."""
        self._note_missing(seq)
        self._missing.discard(seq)
        self._pending[seq] = body

    def _after_hold_grew(
        self, packet: EncodedPacket
    ) -> list[tuple[FrameVerdict, EncodedPacket | None]]:
        """Frame-driven triggers after a new frame joined the hold."""
        events: list[tuple[FrameVerdict, EncodedPacket | None]] = []
        if packet.kind is PacketKind.KEYFRAME and self._missing:
            # a new epoch began: any still-missing earlier window will
            # never see its parity frame again — NACK now
            events.extend(self._nack(sorted(self._missing, key=self._order)))
        if len(self._pending) >= self._hold_cap:
            events.extend(self.give_up())
        return events

    def _fill(
        self, seq: int, body: bytes, via: str
    ) -> list[tuple[FrameVerdict, EncodedPacket | None]]:
        """A wanted body arrived (retransmit, parity reconstruction, or
        a late-reordered original): close that part of the gap."""
        self._missing.discard(seq)
        self._pending[seq] = body
        self._via[seq] = via
        if self._missing:
            return []
        events = self._drain()
        self._horizon = None
        return events

    def _drain(self) -> list[tuple[FrameVerdict, EncodedPacket | None]]:
        """Admit every held body in stream order through the plain
        path.  With the gap fully filled this releases a loss-free run;
        after :meth:`give_up` the first drained frame exposes the
        remaining gap and :func:`admit_packet` charges it (PR 4)."""
        events: list[tuple[FrameVerdict, EncodedPacket | None]] = []
        for seq in sorted(self._pending, key=self._order):
            body = self._pending.pop(seq)
            verdict, packet = self._admit(body)
            via = self._via.pop(seq, None)
            if verdict is FrameVerdict.ACCEPT and via is not None:
                if via == _VIA_PARITY:
                    self.tracker.count_recovered_parity()
                else:
                    self.tracker.count_recovered_retransmit()
            events.append((verdict, packet))
        self._via.clear()
        return events

    def _try_parity_recover(
        self, missing: int, covered: list[int], parity: bytes
    ) -> list[tuple[FrameVerdict, EncodedPacket | None]] | None:
        """Tier 1: XOR-reconstruct the epoch's single missing body.

        Returns the released admission events, or ``None`` when the
        reconstruction is impossible (a peer body is unavailable) or
        fails CRC validation — the caller then falls through to NACK.
        """
        present: list[bytes] = []
        for seq in covered:
            if seq == missing:
                continue
            body = self._pending.get(seq)
            if body is None:
                body = self._bodies.get(seq)
            if body is None:
                return None  # peer body already pruned: cannot fold
            present.append(body)
        try:
            recovered = recover_body(parity, present)
            packet = EncodedPacket.from_bytes(recovered)
        except PacketFormatError:
            return None  # reconstruction invalid (e.g. damaged parity)
        if packet.sequence != missing:
            return None
        return self._fill(missing, recovered, _VIA_PARITY)

    def _nack(
        self, sequences: Iterable[int]
    ) -> list[tuple[FrameVerdict, EncodedPacket | None]]:
        """Tier 2: request retransmission, one shot per sequence,
        bounded by the budget; a blown budget abandons the gap."""
        want = [seq for seq in sequences if seq not in self._nacked]
        if not want:
            return []
        if self._nack_spent + len(want) > self.nack_budget:
            return self.give_up()
        self._nack_spent += len(want)
        self._nacked.update(want)
        self.tracker.meter.inc("ingest_nacks_sent", len(want))
        if self.on_nack is not None:
            self.on_nack(want)
        return []


def replay_survivors(
    config,
    codebook,
    delivered: list,
    dtype: type = np.float64,
    windows_sent: int | None = None,
    fec: bool = False,
    nack_budget: int = 8,
) -> tuple[list[tuple[int, np.ndarray]], LossAccounting]:
    """Offline stage-2 reference over a delivered frame sequence.

    Applies exactly the admission rules the gateway applies live (the
    same :class:`StreamRecovery` over the same :func:`admit_packet`,
    both times) and returns the accepted windows as ``(sequence,
    dequantized measurement column)`` pairs plus the accounting.

    ``delivered`` items are either raw ``PACKET`` bodies (``bytes``,
    the classic :attr:`LinkStats.delivered` view) or ``(kind, body)``
    pairs from :attr:`LinkStats.delivered_frames` — the latter is what
    carries ``PARITY`` frames into a ``fec=True`` replay.  NACK
    retransmissions need no side channel here: a retransmitted copy
    appears in the recorded stream as an ordinary delivery, and the
    machine treats any arrival of a wanted sequence as a fill.  The
    budget must match the live gateway's so both give up identically.
    """
    payload = PacketPayloadDecoder(config, codebook=codebook)
    tracker = SequenceTracker()
    recovery = StreamRecovery(
        tracker, payload, fec=fec, nack_budget=nack_budget
    )
    accepted: list[tuple[int, np.ndarray]] = []

    def _decode(events) -> None:
        for verdict, packet in events:
            if verdict is FrameVerdict.ACCEPT:
                y_q = payload.decode_payload(packet)
                accepted.append(
                    (
                        packet.sequence,
                        payload.quantizer.dequantize(y_q).astype(dtype),
                    )
                )

    for item in delivered:
        if isinstance(item, (bytes, bytearray)):
            kind, body = FrameKind.PACKET, bytes(item)
        else:
            kind, body = FrameKind(item[0]), bytes(item[1])
        if kind is FrameKind.PARITY:
            _decode(recovery.on_parity(body))
        else:
            _decode(recovery.on_packet(body))
    _decode(recovery.bye(windows_sent))
    _decode(recovery.close())
    return accepted, tracker.accounting


# ----------------------------------------------------------------------
# Impairment injection (the node→gateway radio, simulated)
# ----------------------------------------------------------------------


@dataclass
class LinkStats:
    """Ground truth of what one :class:`LossyLink` did to its frames."""

    frames_seen: int = 0
    frames_dropped: int = 0
    frames_reordered: int = 0
    frames_duplicated: int = 0
    frames_corrupted: int = 0
    frames_delivered: int = 0
    #: PARITY frames that entered the link / were dropped by it
    parity_seen: int = 0
    parity_dropped: int = 0
    #: sequence numbers of dropped frames (pre-impairment header read)
    dropped_sequences: list[int] = field(default_factory=list)
    #: sequence numbers whose delivered copy was bit-flipped
    corrupted_sequences: list[int] = field(default_factory=list)
    #: the exact post-impairment PACKET bodies, in delivery order —
    #: the surviving packet set an offline replay consumes
    delivered: list[bytes] = field(default_factory=list)
    #: post-impairment ``(frame kind, body)`` pairs in delivery order,
    #: including PARITY frames — the input of a ``fec=True``
    #: :func:`replay_survivors`
    delivered_frames: list[tuple[int, bytes]] = field(default_factory=list)
    #: per-PACKET fate in sender order (``"delivered"``/``"dropped"``/
    #: ``"corrupted"``) — the run-length view behind ``burst_events``
    fate_log: list[str] = field(default_factory=list)

    @property
    def loss_events(self) -> int:
        """Events that can each damage up to ``keyframe_interval``
        windows: outright drops plus CRC-corrupting flips."""
        return self.frames_dropped + self.frames_corrupted

    @property
    def burst_events(self) -> int:
        """Loss events with consecutive drops collapsed into one.

        A burst of k back-to-back drops costs at most ``k`` lost
        windows plus *one* resync run to the next keyframe — not k of
        them — so the tight damage bound is ``loss_events +
        burst_events * (keyframe_interval - 1)``, charging each burst
        one resync epoch instead of one per dropped frame.
        """
        bursts = 0
        in_burst = False
        for fate in self.fate_log:
            if fate in ("dropped", "corrupted"):
                if not in_burst:
                    bursts += 1
                in_burst = True
            else:
                in_burst = False
        return bursts


@dataclass(frozen=True)
class LossyChannel:
    """Configuration of a seeded lossy radio link.

    All rates are independent per-frame probabilities in ``[0, 1]``;
    only ``PACKET`` frames are impaired (``HELLO``/``BYE`` model the
    reliable control side of the link, and impairing them would test
    TCP, not the on-air packet path).

    Parameters
    ----------
    loss:
        Probability a frame is silently dropped.
    reorder:
        Probability a frame is held back and delivered after
        1..``reorder_window`` later frames (reordering within a
        window).
    duplicate:
        Probability a frame is delivered twice back to back.
    corrupt:
        Probability one random payload bit of the on-air packet bytes
        is flipped (always CRC-detectable: CRC-16 catches every
        single-bit error).
    reorder_window:
        Maximum displacement of a reordered frame, in frames.
    drop_sequences:
        Deterministically drop these sequence numbers (first pass of
        each) regardless of ``loss`` — for targeted tests such as
        "drop exactly the second keyframe".
    drop_parity_epochs:
        Deterministically drop the ``PARITY`` frame whose epoch base
        sequence is listed here (first pass of each) — for targeted
        tests such as "lose a keyframe *and* its parity".  ``PARITY``
        frames are otherwise subject to ``loss`` only: a bit-flipped
        parity is already modeled by the recovery layer rejecting it,
        and reordering it would test frame scheduling, not recovery.
    seed:
        Seed of the link's private RNG; same seed + same frame stream
        => same fates.
    """

    loss: float = 0.0
    reorder: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    reorder_window: int = 2
    drop_sequences: tuple[int, ...] = ()
    drop_parity_epochs: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss", "reorder", "duplicate", "corrupt"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {rate}"
                )
        if self.reorder_window < 1:
            raise ConfigurationError(
                f"reorder_window must be >= 1, got {self.reorder_window}"
            )

    @property
    def impairs(self) -> bool:
        """Whether this channel can damage anything at all."""
        return bool(
            self.loss or self.reorder or self.duplicate or self.corrupt
            or self.drop_sequences or self.drop_parity_epochs
        )

    def wrap(self, writer, meter: Meter = NULL_METER) -> "LossyLink":
        """A :class:`LossyLink` applying this channel to ``writer``;
        frame fates are mirrored to ``meter`` when one is given."""
        return LossyLink(writer, self, meter=meter)


class LossyLink:
    """Writer wrapper that damages ``PACKET`` frames in flight.

    Sits between a node client and any transport writer (the loopback
    stand-in or a TCP ``StreamWriter``): bytes written through it are
    reassembled into wire frames, ``PACKET`` frames roll the channel's
    dice, and everything else passes through in order (after flushing
    any held-back reordered frames, so control frames never overtake
    data they followed).
    """

    def __init__(
        self, writer, channel: LossyChannel, meter: Meter = NULL_METER
    ) -> None:
        self._writer = writer
        self.channel = channel
        self.stats = LinkStats()
        #: telemetry mirror of the frame-fate counters: every fate is
        #: published as ``link_frames{fate=...}`` alongside the
        #: :class:`LinkStats` ground-truth view
        self.meter = meter
        self._rng = np.random.default_rng(channel.seed)
        self._buffer = bytearray()
        #: reordered frames in flight: [frames_still_to_let_pass, frame]
        self._held: list[list] = []
        self._forced_drops = set(channel.drop_sequences)
        self._forced_parity_drops = set(channel.drop_parity_epochs)

    # -- writer interface ------------------------------------------------
    def write(self, data: bytes) -> None:
        self._buffer.extend(data)
        self._pump()

    async def drain(self) -> None:
        await self._writer.drain()

    def close(self) -> None:
        self._release_held()
        self._writer.close()

    def is_closing(self) -> bool:
        return self._writer.is_closing()

    async def wait_closed(self) -> None:
        await self._writer.wait_closed()

    def get_extra_info(self, name: str, default=None):
        return self._writer.get_extra_info(name, default)

    # -- framing ---------------------------------------------------------
    def _pump(self) -> None:
        """Split buffered bytes into frames and route each one."""
        while True:
            if len(self._buffer) < _FRAME_PREFIX:
                return
            length = int.from_bytes(self._buffer[:_FRAME_PREFIX], "big")
            end = _FRAME_PREFIX + length
            if len(self._buffer) < end:
                return
            frame = bytes(self._buffer[:end])
            del self._buffer[:end]
            if length >= 1 and frame[_FRAME_PREFIX] == int(FrameKind.PACKET):
                self._impair(frame)
            elif length >= 1 and frame[_FRAME_PREFIX] == int(FrameKind.PARITY):
                self._impair_parity(frame)
            else:
                # control frame: preserve order relative to the data
                # frames it followed, then pass through untouched
                self._release_held()
                self._writer.write(frame)

    # -- impairment ------------------------------------------------------
    def _sequence_of(self, frame: bytes) -> int:
        """Header peek (sync, kind, seq-hi, seq-lo) — no CRC check."""
        body = frame[_FRAME_PREFIX + 1 :]
        if len(body) >= 4:
            return (body[2] << 8) | body[3]
        return -1

    def _impair(self, frame: bytes) -> None:
        self.stats.frames_seen += 1
        self.meter.inc("link_frames", fate="seen")
        sequence = self._sequence_of(frame)
        forced = sequence in self._forced_drops
        if forced:
            self._forced_drops.discard(sequence)
        if forced or self._rng.random() < self.channel.loss:
            self.stats.frames_dropped += 1
            self.stats.dropped_sequences.append(sequence)
            self.stats.fate_log.append("dropped")
            self.meter.inc("link_frames", fate="dropped")
            self._tick_held()
            return
        if self.channel.corrupt and self._rng.random() < self.channel.corrupt:
            frame = self._flip_one_bit(frame)
            self.stats.frames_corrupted += 1
            self.stats.corrupted_sequences.append(sequence)
            self.stats.fate_log.append("corrupted")
            self.meter.inc("link_frames", fate="corrupted")
        else:
            self.stats.fate_log.append("delivered")
        if self.channel.duplicate and self._rng.random() < self.channel.duplicate:
            self.stats.frames_duplicated += 1
            self.meter.inc("link_frames", fate="duplicated")
            self._deliver(frame)
        if self.channel.reorder and self._rng.random() < self.channel.reorder:
            delay = int(self._rng.integers(1, self.channel.reorder_window + 1))
            self.stats.frames_reordered += 1
            self.meter.inc("link_frames", fate="reordered")
            self._held.append([delay, frame])
            return
        self._deliver(frame)

    def _impair_parity(self, frame: bytes) -> None:
        """PARITY frames roll only the loss dice (plus forced drops):
        the redundancy itself rides the same radio, but corrupting or
        reordering it would test the parity *parser*, not recovery."""
        self.stats.parity_seen += 1
        self.meter.inc("link_frames", fate="parity_seen")
        body = frame[_FRAME_PREFIX + 1 :]
        base = int.from_bytes(body[0:2], "big") if len(body) >= 2 else -1
        forced = base in self._forced_parity_drops
        if forced:
            self._forced_parity_drops.discard(base)
        if forced or self._rng.random() < self.channel.loss:
            self.stats.parity_dropped += 1
            self.meter.inc("link_frames", fate="parity_dropped")
            self._tick_held()
            return
        self._deliver(frame)

    def _flip_one_bit(self, frame: bytes) -> bytes:
        """Flip one random bit of the on-air packet bytes (the frame
        body), leaving the length prefix and kind byte intact so the
        framing layer still delivers the frame."""
        body_start = _FRAME_PREFIX + 1
        offset = int(self._rng.integers(body_start, len(frame)))
        bit = int(self._rng.integers(0, 8))
        mutated = bytearray(frame)
        mutated[offset] ^= 1 << bit
        return bytes(mutated)

    def _emit(self, frame: bytes) -> None:
        """Put one frame on the wire and record its delivery.  Does
        NOT age the hold queue — released held frames must not re-age
        their peers."""
        kind = frame[_FRAME_PREFIX]
        body = frame[_FRAME_PREFIX + 1 :]
        self.stats.delivered_frames.append((kind, body))
        if kind == int(FrameKind.PACKET):
            # the bytes-only view stays PACKET-only so existing
            # (fec-off) replays keep consuming it unchanged
            self.stats.frames_delivered += 1
            self.stats.delivered.append(body)
            self.meter.inc("link_frames", fate="delivered")
        else:
            self.meter.inc("link_frames", fate="parity_delivered")
        self._writer.write(frame)

    def _deliver(self, frame: bytes) -> None:
        self._emit(frame)
        self._tick_held()

    def _tick_held(self) -> None:
        """One frame went past the hold queue: age every held frame
        and release the ones whose displacement is served."""
        due = []
        for entry in self._held:
            entry[0] -= 1
            if entry[0] <= 0:
                due.append(entry)
        for entry in due:
            self._held.remove(entry)
            self._emit(entry[1])

    def _release_held(self) -> None:
        """Flush all held frames (stream end or control frame)."""
        while self._held:
            _, frame = self._held.pop(0)
            self._emit(frame)


__all__ = [
    "FrameVerdict",
    "HOLD_CAP_EPOCHS",
    "LinkStats",
    "LossAccounting",
    "LossyChannel",
    "LossyLink",
    "SequenceTracker",
    "StreamRecovery",
    "admit_packet",
    "replay_survivors",
    "sequence_delta",
]
