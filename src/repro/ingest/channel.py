"""Lossy-channel semantics of the wire path: impairment + recovery.

The paper's node→coordinator link is a real wireless channel, so the
live path cannot assume a perfect pipe: ``PACKET`` frames may be
dropped, reordered, duplicated or bit-flipped in flight.  This module
holds *both* sides of that reality:

- :class:`LossyChannel` / :class:`LossyLink` — a seeded impairment
  injector that wraps any node-side writer (the in-process loopback or
  a real TCP ``StreamWriter``) and damages ``PACKET`` frames at
  configurable rates, recording the exact fate of every frame so a
  bench can replay the surviving packet set offline;
- :class:`SequenceTracker` + :func:`admit_packet` — the receiver-side
  sequence-gap recovery state machine the gateway runs per session:
  duplicates and stale reordered frames are dropped idempotently, a
  gap or a corrupt CRC triggers a *resync* (difference packets are
  discarded until the next keyframe re-anchors stage 2), and every
  discarded window is accounted in :class:`LossAccounting`;
- :func:`replay_survivors` — the offline reference: the same state
  machine applied to a recorded delivered-frame sequence, used by
  ``benchmarks/bench_lossy_channel.py`` to pin that the live gateway's
  delivered-window output is bit-identical to an offline decode of the
  same surviving packet set.

Damage is bounded by design: the encoder emits a raw keyframe every
``keyframe_interval`` packets (``SystemConfig.keyframe_interval``), so
one loss event can cost at most ``keyframe_interval`` windows — the
lost window(s) plus the unusable difference packets up to the next
keyframe.  The accounting invariant, per stream::

    windows_accepted + windows_lost + windows_resynced == windows_sent

(``frames_duplicate`` and ``frames_corrupt`` count *frames*, not
windows: a duplicate's window was already accepted, and a corrupt
frame's window surfaces in ``windows_lost`` through the sequence gap
it leaves behind.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..core.decoder import PacketPayloadDecoder
from ..core.packets import EncodedPacket
from ..errors import ConfigurationError, PacketFormatError
from ..telemetry import NULL_METER, Meter
from .protocol import FrameKind

_SEQ_MOD = 1 << 16
_SEQ_HALF = 1 << 15
_FRAME_PREFIX = 4  # u32be length


def sequence_delta(expected: int, sequence: int) -> int:
    """Signed distance from ``expected`` to ``sequence`` mod 2^16.

    Positive: ``sequence`` is ahead (a gap of that many windows was
    lost); negative: behind (a duplicate or stale reordered frame);
    zero: exactly the expected next window.  Half-range comparison, so
    the 16-bit wraparound at 65535→0 is a delta of 1, not -65535.
    """
    return (sequence - expected + _SEQ_HALF) % _SEQ_MOD - _SEQ_HALF


class FrameVerdict(enum.Enum):
    """Outcome of one received ``PACKET`` frame under gap recovery."""

    #: in-sequence and decodable: hand the packet to stages 1-2
    ACCEPT = "accept"
    #: CRC (or framing) failure: frame discarded, stream resyncs
    CORRUPT = "corrupt"
    #: duplicate or stale reordered frame: discarded idempotently
    STALE = "stale"
    #: difference packet during resync: discarded, waiting for the
    #: next keyframe to re-anchor the difference chain
    RESYNC_SKIP = "resync_skip"


@dataclass
class LossAccounting:
    """Per-stream damage counters of the gap-recovery state machine."""

    #: windows that never arrived (sequence gaps, including the tail
    #: gap closed by a BYE frame that declares the sent-window count)
    windows_lost: int = 0
    #: difference packets that arrived but were discarded because the
    #: stream was resyncing (unusable until the next keyframe)
    windows_resynced: int = 0
    #: PACKET frames whose on-air bytes failed the CRC/format check
    frames_corrupt: int = 0
    #: frames dropped idempotently: true duplicates and reordered
    #: frames arriving after their window was already counted lost
    frames_duplicate: int = 0

    @property
    def windows_damaged(self) -> int:
        """Total windows this stream did not decode (lost + resynced)."""
        return self.windows_lost + self.windows_resynced


class SequenceTracker:
    """Receiver-side expected-sequence state of one packet stream.

    The wire protocol guarantees a stream's first window is sequence 0
    (the node encoder resets before streaming), so the tracker starts
    expecting 0 and a lost *first* packet is accounted like any other
    gap.

    Damage events flow through the ``count_*`` methods, which keep the
    :class:`LossAccounting` view and publish the same event to the
    tracker's telemetry :class:`~repro.telemetry.Meter` (the gateway
    binds one labeled with the stream identity; the default null meter
    keeps offline replays dependency-free).
    """

    def __init__(self, meter: Meter = NULL_METER) -> None:
        self.expected = 0
        self.accounting = LossAccounting()
        self.meter = meter

    def delta(self, sequence: int) -> int:
        """Signed distance of ``sequence`` from the expected next one."""
        return sequence_delta(self.expected, sequence)

    def advance(self, sequence: int) -> None:
        """Move past ``sequence``: the next expected follows it."""
        self.expected = (sequence + 1) % _SEQ_MOD

    # -- damage accounting (view + telemetry, one call site each) ------
    def count_lost(self, windows: int) -> None:
        self.accounting.windows_lost += windows
        self.meter.inc("ingest_windows_lost", windows)

    def count_resynced(self) -> None:
        self.accounting.windows_resynced += 1
        self.meter.inc("ingest_windows_resynced")

    def count_corrupt(self) -> None:
        self.accounting.frames_corrupt += 1
        self.meter.inc("ingest_frames_corrupt")

    def count_duplicate(self) -> None:
        self.accounting.frames_duplicate += 1
        self.meter.inc("ingest_frames_duplicate")

    def close_stream(self, windows_sent: int) -> None:
        """Account the tail gap of an orderly stream end.

        A trailing loss leaves no later packet to reveal the gap, so
        the ``BYE`` frame may declare how many windows the node sent;
        any still-missing tail is charged to ``windows_lost``.
        """
        final = windows_sent % _SEQ_MOD
        gap = self.delta(final)
        if gap > 0:
            self.count_lost(gap)
            self.expected = final


def admit_packet(
    tracker: SequenceTracker,
    payload: PacketPayloadDecoder,
    body: bytes,
) -> tuple[FrameVerdict, EncodedPacket | None]:
    """Run one wire ``PACKET`` body through sequence-gap recovery.

    The single admission decision shared by the live gateway and the
    offline :func:`replay_survivors` reference — one implementation is
    what makes the two provably agree.  Updates ``tracker`` accounting
    and the payload decoder's resync state; the caller decodes the
    packet (stages 1-2) only on :attr:`FrameVerdict.ACCEPT`.
    """
    try:
        packet = EncodedPacket.from_bytes(body)
    except PacketFormatError:
        # A frame the radio damaged: the CRC catches it, the stream
        # survives.  Its sequence is unreadable, so the expected
        # counter holds still — if the corrupt frame *was* the expected
        # window, the next good frame exposes the gap and the window is
        # charged to windows_lost there.  The difference reference may
        # now be stale, so stage 2 resyncs to the next keyframe.
        tracker.count_corrupt()
        payload.resync()
        return FrameVerdict.CORRUPT, None
    delta = tracker.delta(packet.sequence)
    if delta < 0:
        tracker.count_duplicate()
        return FrameVerdict.STALE, packet
    if delta > 0:
        tracker.count_lost(delta)
        payload.resync()
    tracker.advance(packet.sequence)
    if payload.skip_to_keyframe(packet):
        tracker.count_resynced()
        return FrameVerdict.RESYNC_SKIP, packet
    return FrameVerdict.ACCEPT, packet


def replay_survivors(
    config,
    codebook,
    delivered: list[bytes],
    dtype: type = np.float64,
    windows_sent: int | None = None,
) -> tuple[list[tuple[int, np.ndarray]], LossAccounting]:
    """Offline stage-2 reference over a delivered ``PACKET`` sequence.

    Applies exactly the admission rules the gateway applies live
    (:func:`admit_packet` both times) and returns the accepted windows
    as ``(sequence, dequantized measurement column)`` pairs plus the
    accounting.  ``delivered`` is the post-impairment frame-body list a
    :class:`LossyLink` recorded (:attr:`LinkStats.delivered`).
    """
    payload = PacketPayloadDecoder(config, codebook=codebook)
    tracker = SequenceTracker()
    accepted: list[tuple[int, np.ndarray]] = []
    for body in delivered:
        verdict, packet = admit_packet(tracker, payload, body)
        if verdict is FrameVerdict.ACCEPT:
            y_q = payload.decode_payload(packet)
            accepted.append(
                (packet.sequence, payload.quantizer.dequantize(y_q).astype(dtype))
            )
    if windows_sent is not None:
        tracker.close_stream(windows_sent)
    return accepted, tracker.accounting


# ----------------------------------------------------------------------
# Impairment injection (the node→gateway radio, simulated)
# ----------------------------------------------------------------------


@dataclass
class LinkStats:
    """Ground truth of what one :class:`LossyLink` did to its frames."""

    frames_seen: int = 0
    frames_dropped: int = 0
    frames_reordered: int = 0
    frames_duplicated: int = 0
    frames_corrupted: int = 0
    frames_delivered: int = 0
    #: sequence numbers of dropped frames (pre-impairment header read)
    dropped_sequences: list[int] = field(default_factory=list)
    #: sequence numbers whose delivered copy was bit-flipped
    corrupted_sequences: list[int] = field(default_factory=list)
    #: the exact post-impairment PACKET bodies, in delivery order —
    #: the surviving packet set an offline replay consumes
    delivered: list[bytes] = field(default_factory=list)

    @property
    def loss_events(self) -> int:
        """Events that can each damage up to ``keyframe_interval``
        windows: outright drops plus CRC-corrupting flips."""
        return self.frames_dropped + self.frames_corrupted


@dataclass(frozen=True)
class LossyChannel:
    """Configuration of a seeded lossy radio link.

    All rates are independent per-frame probabilities in ``[0, 1]``;
    only ``PACKET`` frames are impaired (``HELLO``/``BYE`` model the
    reliable control side of the link, and impairing them would test
    TCP, not the on-air packet path).

    Parameters
    ----------
    loss:
        Probability a frame is silently dropped.
    reorder:
        Probability a frame is held back and delivered after
        1..``reorder_window`` later frames (reordering within a
        window).
    duplicate:
        Probability a frame is delivered twice back to back.
    corrupt:
        Probability one random payload bit of the on-air packet bytes
        is flipped (always CRC-detectable: CRC-16 catches every
        single-bit error).
    reorder_window:
        Maximum displacement of a reordered frame, in frames.
    drop_sequences:
        Deterministically drop these sequence numbers (first pass of
        each) regardless of ``loss`` — for targeted tests such as
        "drop exactly the second keyframe".
    seed:
        Seed of the link's private RNG; same seed + same frame stream
        => same fates.
    """

    loss: float = 0.0
    reorder: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    reorder_window: int = 2
    drop_sequences: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss", "reorder", "duplicate", "corrupt"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {rate}"
                )
        if self.reorder_window < 1:
            raise ConfigurationError(
                f"reorder_window must be >= 1, got {self.reorder_window}"
            )

    @property
    def impairs(self) -> bool:
        """Whether this channel can damage anything at all."""
        return bool(
            self.loss or self.reorder or self.duplicate or self.corrupt
            or self.drop_sequences
        )

    def wrap(self, writer, meter: Meter = NULL_METER) -> "LossyLink":
        """A :class:`LossyLink` applying this channel to ``writer``;
        frame fates are mirrored to ``meter`` when one is given."""
        return LossyLink(writer, self, meter=meter)


class LossyLink:
    """Writer wrapper that damages ``PACKET`` frames in flight.

    Sits between a node client and any transport writer (the loopback
    stand-in or a TCP ``StreamWriter``): bytes written through it are
    reassembled into wire frames, ``PACKET`` frames roll the channel's
    dice, and everything else passes through in order (after flushing
    any held-back reordered frames, so control frames never overtake
    data they followed).
    """

    def __init__(
        self, writer, channel: LossyChannel, meter: Meter = NULL_METER
    ) -> None:
        self._writer = writer
        self.channel = channel
        self.stats = LinkStats()
        #: telemetry mirror of the frame-fate counters: every fate is
        #: published as ``link_frames{fate=...}`` alongside the
        #: :class:`LinkStats` ground-truth view
        self.meter = meter
        self._rng = np.random.default_rng(channel.seed)
        self._buffer = bytearray()
        #: reordered frames in flight: [frames_still_to_let_pass, frame]
        self._held: list[list] = []
        self._forced_drops = set(channel.drop_sequences)

    # -- writer interface ------------------------------------------------
    def write(self, data: bytes) -> None:
        self._buffer.extend(data)
        self._pump()

    async def drain(self) -> None:
        await self._writer.drain()

    def close(self) -> None:
        self._release_held()
        self._writer.close()

    def is_closing(self) -> bool:
        return self._writer.is_closing()

    async def wait_closed(self) -> None:
        await self._writer.wait_closed()

    def get_extra_info(self, name: str, default=None):
        return self._writer.get_extra_info(name, default)

    # -- framing ---------------------------------------------------------
    def _pump(self) -> None:
        """Split buffered bytes into frames and route each one."""
        while True:
            if len(self._buffer) < _FRAME_PREFIX:
                return
            length = int.from_bytes(self._buffer[:_FRAME_PREFIX], "big")
            end = _FRAME_PREFIX + length
            if len(self._buffer) < end:
                return
            frame = bytes(self._buffer[:end])
            del self._buffer[:end]
            if length >= 1 and frame[_FRAME_PREFIX] == int(FrameKind.PACKET):
                self._impair(frame)
            else:
                # control frame: preserve order relative to the data
                # frames it followed, then pass through untouched
                self._release_held()
                self._writer.write(frame)

    # -- impairment ------------------------------------------------------
    def _sequence_of(self, frame: bytes) -> int:
        """Header peek (sync, kind, seq-hi, seq-lo) — no CRC check."""
        body = frame[_FRAME_PREFIX + 1 :]
        if len(body) >= 4:
            return (body[2] << 8) | body[3]
        return -1

    def _impair(self, frame: bytes) -> None:
        self.stats.frames_seen += 1
        self.meter.inc("link_frames", fate="seen")
        sequence = self._sequence_of(frame)
        forced = sequence in self._forced_drops
        if forced:
            self._forced_drops.discard(sequence)
        if forced or self._rng.random() < self.channel.loss:
            self.stats.frames_dropped += 1
            self.stats.dropped_sequences.append(sequence)
            self.meter.inc("link_frames", fate="dropped")
            self._tick_held()
            return
        if self.channel.corrupt and self._rng.random() < self.channel.corrupt:
            frame = self._flip_one_bit(frame)
            self.stats.frames_corrupted += 1
            self.stats.corrupted_sequences.append(sequence)
            self.meter.inc("link_frames", fate="corrupted")
        if self.channel.duplicate and self._rng.random() < self.channel.duplicate:
            self.stats.frames_duplicated += 1
            self.meter.inc("link_frames", fate="duplicated")
            self._deliver(frame)
        if self.channel.reorder and self._rng.random() < self.channel.reorder:
            delay = int(self._rng.integers(1, self.channel.reorder_window + 1))
            self.stats.frames_reordered += 1
            self.meter.inc("link_frames", fate="reordered")
            self._held.append([delay, frame])
            return
        self._deliver(frame)

    def _flip_one_bit(self, frame: bytes) -> bytes:
        """Flip one random bit of the on-air packet bytes (the frame
        body), leaving the length prefix and kind byte intact so the
        framing layer still delivers the frame."""
        body_start = _FRAME_PREFIX + 1
        offset = int(self._rng.integers(body_start, len(frame)))
        bit = int(self._rng.integers(0, 8))
        mutated = bytearray(frame)
        mutated[offset] ^= 1 << bit
        return bytes(mutated)

    def _emit(self, frame: bytes) -> None:
        """Put one frame on the wire and record its delivery.  Does
        NOT age the hold queue — released held frames must not re-age
        their peers."""
        self.stats.frames_delivered += 1
        self.stats.delivered.append(frame[_FRAME_PREFIX + 1 :])
        self.meter.inc("link_frames", fate="delivered")
        self._writer.write(frame)

    def _deliver(self, frame: bytes) -> None:
        self._emit(frame)
        self._tick_held()

    def _tick_held(self) -> None:
        """One frame went past the hold queue: age every held frame
        and release the ones whose displacement is served."""
        due = []
        for entry in self._held:
            entry[0] -= 1
            if entry[0] <= 0:
                due.append(entry)
        for entry in due:
            self._held.remove(entry)
            self._emit(entry[1])

    def _release_held(self) -> None:
        """Flush all held frames (stream end or control frame)."""
        while self._held:
            _, frame = self._held.pop(0)
            self._emit(frame)


__all__ = [
    "FrameVerdict",
    "LinkStats",
    "LossAccounting",
    "LossyChannel",
    "LossyLink",
    "SequenceTracker",
    "admit_packet",
    "replay_survivors",
    "sequence_delta",
]
