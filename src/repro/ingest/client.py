"""Node-side link simulator: replay a record into a live gateway.

:class:`NodeClient` plays the role of the paper's body-worn sensor
node: it encodes a record channel with the unchanged integer encoder
(packets bit-identical to the offline path by construction), performs
the wire handshake, and streams ``PACKET`` frames — at the record's
true sample rate (one window every ``config.packet_seconds``), at an
accelerated pace, or as fast as the link accepts them.  It concurrently
consumes the gateway's ``DECODED`` acknowledgements, so a run reports
the end-to-end per-window decode latency a real monitor would observe.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from ..coding.fec import encode_parity_body
from ..core.batch import encode_record_windows
from ..core.packets import EncodedPacket, PacketKind
from ..core.system import EcgMonitorSystem
from ..ecg.records import Record
from ..errors import ProtocolError
from ..telemetry import NULL_METER, MetricsRegistry
from .channel import HOLD_CAP_EPOCHS, LossyChannel, LossyLink
from .protocol import (
    FrameKind,
    Handshake,
    decode_json_body,
    encode_frame,
    encode_json_frame,
    read_frame,
)


@dataclass
class NodeReport:
    """Outcome of one simulated node's streaming run."""

    record: str
    channel: int
    #: gateway-assigned session id (from WELCOME) — lets a caller
    #: pair this report with the gateway's IngestStreamResult exactly,
    #: even when several nodes stream the same record
    stream_id: int | None = None
    sent: int = 0
    acked: int = 0
    error: str | None = None
    #: gateway-side frame-arrival-to-reconstruction latency per window
    gateway_latencies_ms: list[float] = field(default_factory=list)
    #: per-window FISTA iterations reported in the DECODED acks
    iterations: list[int] = field(default_factory=list)
    #: gateway damage accounting as of the last DECODED ack (the
    #: node's view of its channel; the gateway's IngestStreamResult is
    #: authoritative and also covers post-last-ack damage)
    windows_lost: int = 0
    windows_resynced: int = 0
    frames_corrupt: int = 0
    frames_duplicate: int = 0
    windows_recovered: int = 0
    #: wire bytes of first-transmission PACKET frames (prefix + kind +
    #: body) — the fec-off baseline cost of the stream
    packet_bytes: int = 0
    #: wire bytes of PARITY frames (tier-1 redundancy overhead)
    parity_bytes: int = 0
    #: wire bytes of NACK-answering retransmissions (tier-2 overhead)
    retransmit_bytes: int = 0
    #: PACKET frames retransmitted in answer to NACKs (or replayed
    #: from the retransmit ring after a reconnect)
    retransmits_sent: int = 0
    #: NACKed sequences the retransmit ring no longer held
    retransmit_misses: int = 0
    #: times the link was re-dialed after a mid-stream connection
    #: loss (``run_tcp`` with ``reconnect > 0``); a front-door
    #: gateway failover shows up here instead of as a node error
    reconnects: int = 0

    @property
    def overhead_ratio(self) -> float:
        """Recovery bytes as a fraction of the baseline packet bytes."""
        if not self.packet_bytes:
            return 0.0
        return (self.parity_bytes + self.retransmit_bytes) / self.packet_bytes

    @property
    def max_gateway_latency_ms(self) -> float | None:
        """Worst per-window decode latency the gateway reported, or
        ``None`` when no window was ever acked — "no data" must not
        masquerade as a perfect 0.0 ms."""
        return max(self.gateway_latencies_ms, default=None)


class NodeClient:
    """Replay one record channel over a gateway link.

    Parameters
    ----------
    system:
        The node's calibrated encoder/decoder pair; only the encoder
        and its codebook are used (decoding happens at the gateway).
    record:
        The record to stream.
    channel:
        ECG lead to encode.
    max_packets:
        Cap on streamed windows (``None``: the whole record).
    interval_s:
        Pacing between ``PACKET`` frames.  ``None`` replays at the
        record's true rate (``config.packet_seconds`` — 2 s per window
        at the paper's operating point); ``0`` streams as fast as the
        link accepts frames (throughput benchmarking).
    lossy_channel:
        Optional :class:`~repro.ingest.channel.LossyChannel`: the
        node's frames pass through a seeded impairment link (drops,
        reorders, duplicates, bit flips) before reaching the
        transport, simulating the paper's wireless hop.  The
        :class:`~repro.ingest.channel.LossyLink` of the most recent
        run is kept in :attr:`last_link` so callers can read the
        ground-truth fate of every frame.
    fec:
        Enable the two-tier recovery layer (protocol v2): emit one
        XOR ``PARITY`` frame per keyframe epoch folded over the
        epoch's *difference* packets (keyframes are excluded — they
        are pinned in the retransmit ring for tier 2, and folding
        one would pad the parity to keyframe width, tripling its
        cost), keep a retransmit ring of recent packets with
        keyframes pinned, and answer the gateway's ``NACK`` frames
        with retransmissions — which also pass the lossy link, like
        any real retransmission would.  Off (the default), the wire
        bytes are identical to a v1 node.
    reconnect:
        Maximum times :meth:`run_tcp` re-dials after a mid-stream
        connection loss (``0``, the default, keeps the old
        fail-fast behavior).  Each retry backs off exponentially
        from ``backoff_base_s``, capped at ``backoff_cap_s``, with
        up to ``backoff_jitter`` (fractional) seeded jitter so a
        fleet of nodes orphaned by one gateway death does not
        re-dial the front door in lockstep.  A resumed session
        declares ``resume`` in its HELLO (the next sequence it will
        carry) so the receiving gateway baselines its loss
        accounting there; an fec node additionally replays from its
        retransmit ring's last pinned keyframe, giving the new
        gateway an anchor immediately (zero resync damage), while a
        plain node resyncs at the next keyframe.
    """

    def __init__(
        self,
        system: EcgMonitorSystem,
        record: Record,
        channel: int = 0,
        max_packets: int | None = None,
        interval_s: float | None = 0.0,
        lossy_channel: LossyChannel | None = None,
        telemetry: MetricsRegistry | None = None,
        fec: bool = False,
        reconnect: int = 0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        backoff_jitter: float = 0.25,
        backoff_seed: int | None = None,
    ) -> None:
        self.system = system
        self.record = record
        self.channel = channel
        self.max_packets = max_packets
        self.interval_s = (
            system.config.packet_seconds if interval_s is None else interval_s
        )
        self.lossy_channel = lossy_channel
        #: optional telemetry registry: the node's lossy link mirrors
        #: its frame fates into it, labeled with the stream identity
        self.telemetry = telemetry
        self.fec = bool(fec)
        self.last_link: LossyLink | None = None
        #: retransmit ring: sequence -> (is_keyframe, on-air body).
        #: Sized to the gateway's hold horizon so any sequence the
        #: gateway can still want is normally present; keyframes are
        #: pinned longer because losing one unanchors a whole epoch.
        self._ring: dict[int, tuple[bool, bytes]] = {}
        self._ring_cap = HOLD_CAP_EPOCHS * system.config.keyframe_interval
        self._ring_keyframes = HOLD_CAP_EPOCHS
        self.reconnect = int(reconnect)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.backoff_jitter = float(backoff_jitter)
        self._backoff_rng = random.Random(backoff_seed)
        #: packets encoded once per client, so every (re)connected
        #: session replays byte-identical frames
        self._packets: list[EncodedPacket] | None = None
        #: index of the first packet not yet sent (and drained) — the
        #: resume point after a mid-stream connection loss
        self._next_unsent = 0

    def handshake(self, resume: int = 0, resumed: bool = False) -> Handshake:
        """The HELLO this node sends (identity + codec config)."""
        return Handshake(
            record=self.record.name,
            channel=self.channel,
            config=self.system.config,
            codebook=self.system.encoder.codebook,
            precision=self.system.decoder.precision,
            fec=self.fec,
            resume=resume % (1 << 16),
            resumed=resumed or resume > 0,
        )

    def _encoded(self) -> list[EncodedPacket]:
        if self._packets is None:
            _, self._packets = encode_record_windows(
                self.system,
                self.record,
                channel=self.channel,
                max_packets=self.max_packets,
            )
        return self._packets

    def backoff_delay(self, attempt: int) -> float:
        """Delay before reconnect ``attempt`` (1-based): capped
        exponential growth plus seeded proportional jitter."""
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2 ** max(attempt - 1, 0)),
        )
        return base * (1.0 + self.backoff_jitter * self._backoff_rng.random())

    async def run(
        self,
        reader,
        writer,
        *,
        report: NodeReport | None = None,
        start_at: int = 0,
        resumed: bool = False,
    ) -> NodeReport:
        """Stream over an established duplex link; returns the report.

        ``report``/``start_at``/``resumed`` are the resumption
        interface used by :meth:`run_tcp`: a reconnected session keeps
        accumulating into the same report, starts at the first unsent
        packet (an fec node backs up to its last ring-pinned keyframe
        and replays the gap, counted as retransmissions), and declares
        the continuation in its HELLO so downstream merging knows its
        sequences extend the previous session's.

        Raises :class:`~repro.errors.ProtocolError` if the gateway
        refuses the handshake.
        """
        packets = self._encoded()
        if report is None:
            report = NodeReport(record=self.record.name, channel=self.channel)
        if self.lossy_channel is not None and self.lossy_channel.impairs:
            # the simulated radio hop: PACKET frames may be dropped /
            # reordered / duplicated / bit-flipped past this point
            meter = (
                self.telemetry.meter(
                    stream=f"{self.record.name}:{self.channel}"
                )
                if self.telemetry is not None
                else NULL_METER
            )
            self.last_link = self.lossy_channel.wrap(writer, meter=meter)
            writer = self.last_link
        else:
            self.last_link = None

        # an fec node resumes from its last ring-pinned keyframe at or
        # before the loss point: replaying that prefix hands the new
        # gateway an anchor immediately, so the re-routed stream loses
        # nothing to resync.  A plain node resumes exactly where it
        # stopped and eats at most keyframe_interval resync windows.
        replay_from = start_at
        if start_at and self.fec:
            anchor = max(
                (
                    sequence
                    for sequence, (is_key, _) in self._ring.items()
                    if is_key and sequence <= start_at
                ),
                default=None,
            )
            if anchor is not None:
                replay_from = anchor

        writer.write(
            self.handshake(
                resume=replay_from, resumed=resumed or start_at > 0
            ).to_frame()
        )
        await writer.drain()
        frame = await read_frame(reader)
        if frame is None:
            raise ProtocolError("gateway closed the link before WELCOME")
        kind, body = frame
        if kind is FrameKind.ERROR:
            raise ProtocolError(decode_json_body(body).get("error", "rejected"))
        if kind is not FrameKind.WELCOME:
            raise ProtocolError(f"expected WELCOME, got {kind.name}")
        welcome = decode_json_body(body)
        if welcome.get("stream_id") is not None:
            report.stream_id = int(welcome["stream_id"])

        bye_sent = False
        receiver = asyncio.create_task(
            self._receive(
                reader,
                writer,
                # acks *this session* can produce: replays are re-acked
                # by the new gateway, so a resumed session expects one
                # ack per frame it sends, not the whole-stream count
                # (report.acked keeps the cross-session total)
                len(packets) - replay_from,
                report,
                # with reconnect enabled, an EOF before this link's BYE
                # is a mid-stream loss the ack loop must surface (so
                # run_tcp re-dials) instead of ending quietly
                premature_eof_fatal=(
                    (lambda: not bye_sent) if self.reconnect else None
                ),
            )
        )
        try:
            epoch_base: int | None = None
            epoch_bodies: list[bytes] = []

            def flush_parity() -> None:
                """Emit the PARITY frame of the accumulated epoch.

                The fold covers the epoch's difference packets only
                (see the ``fec`` parameter note), and an epoch with
                fewer than two of them gets none: parity over a
                single body is a byte-for-byte duplicate (pure
                duplication, tier 2's job via the retransmit ring
                and the BYE-revealed tail gap)."""
                if len(epoch_bodies) < 2 or epoch_base is None:
                    return
                frame = encode_frame(
                    FrameKind.PARITY,
                    encode_parity_body(epoch_base, epoch_bodies),
                )
                writer.write(frame)
                report.parity_bytes += len(frame)

            for index in range(replay_from, len(packets)):
                packet = packets[index]
                is_replay = index < start_at
                if not is_replay:
                    # resume here if this link dies anywhere in this
                    # iteration: re-sending an already-delivered copy
                    # is an idempotent stale drop at the gateway,
                    # while skipping one would silently lose a window
                    self._next_unsent = index
                if receiver.done():
                    receiver.result()  # re-raises a link loss
                    break  # gateway ended the stream (ERROR frame)
                if self.interval_s and index > replay_from:
                    await asyncio.sleep(self.interval_s)
                is_keyframe = packet.kind is PacketKind.KEYFRAME
                if self.fec and is_keyframe:
                    # close the previous epoch before opening the next;
                    # the fold starts at the first difference packet
                    flush_parity()
                    epoch_base = (packet.sequence + 1) % (1 << 16)
                    epoch_bodies = []
                body = packet.to_bytes()
                frame = encode_frame(FrameKind.PACKET, body)
                writer.write(frame)
                if is_replay:
                    report.retransmit_bytes += len(frame)
                    report.retransmits_sent += 1
                else:
                    report.packet_bytes += len(frame)
                await writer.drain()
                if not is_replay:
                    report.sent += 1
                    self._next_unsent = index + 1  # repro-lint: disable=RL008 — single writer: run_tcp serializes run() attempts, so no concurrent task touches the send cursor during the drain
                if self.fec:
                    if epoch_base is not None and not is_keyframe:
                        epoch_bodies.append(body)
                    self._ring_add(packet.sequence, is_keyframe, body)
            if self.fec:
                flush_parity()  # a partial (>= 2 body) final epoch too
            # declare the sent-window count so the gateway can account
            # a trailing loss (no later packet would reveal that gap)
            writer.write(
                encode_json_frame(FrameKind.BYE, {"windows": len(packets)})
            )
            bye_sent = True
            await writer.drain()
            # a v2 link stays open past BYE: the receiver keeps
            # answering NACK retransmission requests until the gateway
            # has recovered (or given up on) every window and closes
            await receiver
        finally:
            if not receiver.done():
                receiver.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass  # a reset transport has nothing left to close
        return report

    def _ring_add(self, sequence: int, is_keyframe: bool, body: bytes) -> None:
        """Retain a sent body for retransmission, bounded: difference
        packets roll off after ``HOLD_CAP_EPOCHS`` epochs, keyframes
        are pinned for the same number of *epochs* (far longer)."""
        self._ring[sequence] = (is_keyframe, body)
        diffs = [s for s, (key, _) in self._ring.items() if not key]
        for stale in diffs[: max(0, len(diffs) - self._ring_cap)]:
            del self._ring[stale]
        keys = [s for s, (key, _) in self._ring.items() if key]
        for stale in keys[: max(0, len(keys) - self._ring_keyframes)]:
            del self._ring[stale]

    async def run_tcp(self, host: str, port: int) -> NodeReport:
        """Connect over TCP and stream (the CLI/simulation entry).

        With ``reconnect > 0``, a mid-stream connection loss — a
        gateway death behind a federation front door, a dropped
        link — is retried with capped exponential backoff + jitter,
        resuming from the first unsent packet, instead of surfacing
        as a node error.  The attempt budget refills whenever a
        session makes progress, so ``reconnect`` bounds *consecutive*
        fruitless dials, not lifetime failovers.
        """
        report = NodeReport(record=self.record.name, channel=self.channel)
        self._next_unsent = 0
        attempt = 0
        while True:
            start_at = self._next_unsent
            try:
                reader, writer = await asyncio.open_connection(host, port)
                return await self.run(
                    reader,
                    writer,
                    report=report,
                    start_at=start_at,
                    # any re-dial continues the stream's sequence space,
                    # even one that made no progress (the gateway may
                    # hold decoded-but-unacked windows from the cut
                    # session; its merge must not double-count them)
                    resumed=report.reconnects > 0,
                )
            except (ConnectionError, OSError):
                if self._next_unsent > start_at:
                    attempt = 0  # progress: refill the retry budget
                if attempt >= self.reconnect:
                    raise
                attempt += 1
                report.reconnects += 1
                await asyncio.sleep(self.backoff_delay(attempt))

    async def _receive(
        self,
        reader,
        writer,
        expected: int,
        report: NodeReport,
        premature_eof_fatal=None,
    ) -> None:
        """Consume DECODED acks (and answer NACKs) until this session
        is fully acked or the gateway closes the link.

        ``expected`` is *session-local* — the frames this link will
        carry — because ``report.acked`` spans reconnected sessions
        and replayed windows are acked again by the new gateway;
        counting those against the whole-stream total made a resumed
        session stop listening (and sending) early.

        ``premature_eof_fatal`` (a nullary callable, or ``None``) is
        the reconnect hook: when it returns true at EOF, the link
        died before this session's ``BYE`` went out, and the loss is
        raised as :class:`ConnectionResetError` for :meth:`run_tcp`
        to retry rather than swallowed as an orderly close.
        """
        acked_here = 0
        while acked_here < expected:
            try:
                frame = await read_frame(reader)
            except ProtocolError as exc:
                if premature_eof_fatal is not None and premature_eof_fatal():
                    # a link cut mid-frame surfaces as a truncated
                    # frame; for a reconnecting node that is a loss to
                    # retry, not a protocol violation to report
                    raise ConnectionResetError(str(exc)) from exc
                raise
            if frame is None:
                if premature_eof_fatal is not None and premature_eof_fatal():
                    raise ConnectionResetError(
                        "gateway closed the link mid-stream"
                    )
                break
            kind, body = frame
            if kind is FrameKind.DECODED:
                payload = decode_json_body(body)
                acked_here += 1
                report.acked += 1
                report.gateway_latencies_ms.append(
                    float(payload.get("latency_ms", 0.0))
                )
                report.iterations.append(int(payload.get("iterations", 0)))
                # running damage counters (session-cumulative)
                report.windows_lost = int(payload.get("windows_lost", 0))
                report.windows_resynced = int(
                    payload.get("windows_resynced", 0)
                )
                report.frames_corrupt = int(
                    payload.get("frames_corrupt", 0)
                )
                report.frames_duplicate = int(
                    payload.get("frames_duplicate", 0)
                )
                report.windows_recovered = int(
                    payload.get("windows_recovered", 0)
                )
            elif kind is FrameKind.NACK:
                self._retransmit(writer, decode_json_body(body), report)
                await writer.drain()
            elif kind is FrameKind.ERROR:
                report.error = decode_json_body(body).get("error", "unknown")
                break
            else:
                # a gateway never sends handshake/upstream kinds here; a
                # future protocol frame must not stall the ack loop
                report.error = f"unexpected frame kind {kind.name}"
                break

    def _retransmit(self, writer, payload: dict, report: NodeReport) -> None:
        """Answer one NACK from the retransmit ring.  Retransmissions
        go through the same (possibly lossy) writer as first copies —
        a retransmitted frame can be lost too."""
        for sequence in payload.get("sequences", []):
            held = self._ring.get(int(sequence))
            if held is None:
                report.retransmit_misses += 1
                continue
            frame = encode_frame(FrameKind.PACKET, held[1])
            writer.write(frame)
            report.retransmit_bytes += len(frame)
            report.retransmits_sent += 1


def encoded_packets(
    system: EcgMonitorSystem,
    record: Record,
    channel: int = 0,
    max_packets: int | None = None,
) -> list[EncodedPacket]:
    """The exact packets a :class:`NodeClient` run would put on the
    wire — the offline reference for equivalence checks."""
    _, packets = encode_record_windows(
        system, record, channel=channel, max_packets=max_packets
    )
    return packets
