"""Node-side link simulator: replay a record into a live gateway.

:class:`NodeClient` plays the role of the paper's body-worn sensor
node: it encodes a record channel with the unchanged integer encoder
(packets bit-identical to the offline path by construction), performs
the wire handshake, and streams ``PACKET`` frames — at the record's
true sample rate (one window every ``config.packet_seconds``), at an
accelerated pace, or as fast as the link accepts them.  It concurrently
consumes the gateway's ``DECODED`` acknowledgements, so a run reports
the end-to-end per-window decode latency a real monitor would observe.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from ..core.batch import encode_record_windows
from ..core.packets import EncodedPacket
from ..core.system import EcgMonitorSystem
from ..ecg.records import Record
from ..errors import ProtocolError
from ..telemetry import NULL_METER, MetricsRegistry
from .channel import LossyChannel, LossyLink
from .protocol import (
    FrameKind,
    Handshake,
    decode_json_body,
    encode_frame,
    encode_json_frame,
    read_frame,
)


@dataclass
class NodeReport:
    """Outcome of one simulated node's streaming run."""

    record: str
    channel: int
    #: gateway-assigned session id (from WELCOME) — lets a caller
    #: pair this report with the gateway's IngestStreamResult exactly,
    #: even when several nodes stream the same record
    stream_id: int | None = None
    sent: int = 0
    acked: int = 0
    error: str | None = None
    #: gateway-side frame-arrival-to-reconstruction latency per window
    gateway_latencies_ms: list[float] = field(default_factory=list)
    #: per-window FISTA iterations reported in the DECODED acks
    iterations: list[int] = field(default_factory=list)
    #: gateway damage accounting as of the last DECODED ack (the
    #: node's view of its channel; the gateway's IngestStreamResult is
    #: authoritative and also covers post-last-ack damage)
    windows_lost: int = 0
    windows_resynced: int = 0
    frames_corrupt: int = 0
    frames_duplicate: int = 0

    @property
    def max_gateway_latency_ms(self) -> float | None:
        """Worst per-window decode latency the gateway reported, or
        ``None`` when no window was ever acked — "no data" must not
        masquerade as a perfect 0.0 ms."""
        return max(self.gateway_latencies_ms, default=None)


class NodeClient:
    """Replay one record channel over a gateway link.

    Parameters
    ----------
    system:
        The node's calibrated encoder/decoder pair; only the encoder
        and its codebook are used (decoding happens at the gateway).
    record:
        The record to stream.
    channel:
        ECG lead to encode.
    max_packets:
        Cap on streamed windows (``None``: the whole record).
    interval_s:
        Pacing between ``PACKET`` frames.  ``None`` replays at the
        record's true rate (``config.packet_seconds`` — 2 s per window
        at the paper's operating point); ``0`` streams as fast as the
        link accepts frames (throughput benchmarking).
    lossy_channel:
        Optional :class:`~repro.ingest.channel.LossyChannel`: the
        node's frames pass through a seeded impairment link (drops,
        reorders, duplicates, bit flips) before reaching the
        transport, simulating the paper's wireless hop.  The
        :class:`~repro.ingest.channel.LossyLink` of the most recent
        run is kept in :attr:`last_link` so callers can read the
        ground-truth fate of every frame.
    """

    def __init__(
        self,
        system: EcgMonitorSystem,
        record: Record,
        channel: int = 0,
        max_packets: int | None = None,
        interval_s: float | None = 0.0,
        lossy_channel: LossyChannel | None = None,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        self.system = system
        self.record = record
        self.channel = channel
        self.max_packets = max_packets
        self.interval_s = (
            system.config.packet_seconds if interval_s is None else interval_s
        )
        self.lossy_channel = lossy_channel
        #: optional telemetry registry: the node's lossy link mirrors
        #: its frame fates into it, labeled with the stream identity
        self.telemetry = telemetry
        self.last_link: LossyLink | None = None

    def handshake(self) -> Handshake:
        """The HELLO this node sends (identity + codec config)."""
        return Handshake(
            record=self.record.name,
            channel=self.channel,
            config=self.system.config,
            codebook=self.system.encoder.codebook,
            precision=self.system.decoder.precision,
        )

    async def run(self, reader, writer) -> NodeReport:
        """Stream over an established duplex link; returns the report.

        Raises :class:`~repro.errors.ProtocolError` if the gateway
        refuses the handshake.
        """
        _, packets = encode_record_windows(
            self.system,
            self.record,
            channel=self.channel,
            max_packets=self.max_packets,
        )
        report = NodeReport(record=self.record.name, channel=self.channel)
        if self.lossy_channel is not None and self.lossy_channel.impairs:
            # the simulated radio hop: PACKET frames may be dropped /
            # reordered / duplicated / bit-flipped past this point
            meter = (
                self.telemetry.meter(
                    stream=f"{self.record.name}:{self.channel}"
                )
                if self.telemetry is not None
                else NULL_METER
            )
            self.last_link = self.lossy_channel.wrap(writer, meter=meter)
            writer = self.last_link
        else:
            self.last_link = None

        writer.write(self.handshake().to_frame())
        await writer.drain()
        frame = await read_frame(reader)
        if frame is None:
            raise ProtocolError("gateway closed the link before WELCOME")
        kind, body = frame
        if kind is FrameKind.ERROR:
            raise ProtocolError(decode_json_body(body).get("error", "rejected"))
        if kind is not FrameKind.WELCOME:
            raise ProtocolError(f"expected WELCOME, got {kind.name}")
        welcome = decode_json_body(body)
        if welcome.get("stream_id") is not None:
            report.stream_id = int(welcome["stream_id"])

        receiver = asyncio.create_task(
            self._receive(reader, len(packets), report)
        )
        try:
            for index, packet in enumerate(packets):
                if self.interval_s and index:
                    await asyncio.sleep(self.interval_s)
                writer.write(
                    encode_frame(FrameKind.PACKET, packet.to_bytes())
                )
                await writer.drain()
                report.sent += 1
            # declare the sent-window count so the gateway can account
            # a trailing loss (no later packet would reveal that gap)
            writer.write(
                encode_json_frame(FrameKind.BYE, {"windows": len(packets)})
            )
            await writer.drain()
            await receiver
        finally:
            if not receiver.done():
                receiver.cancel()
            writer.close()
            await writer.wait_closed()
        return report

    async def run_tcp(self, host: str, port: int) -> NodeReport:
        """Connect over TCP and stream (the CLI/simulation entry)."""
        reader, writer = await asyncio.open_connection(host, port)
        return await self.run(reader, writer)

    async def _receive(self, reader, expected: int, report: NodeReport) -> None:
        """Consume DECODED acks until all windows (or an error) arrive."""
        while report.acked < expected:
            frame = await read_frame(reader)
            if frame is None:
                break
            kind, body = frame
            if kind is FrameKind.DECODED:
                payload = decode_json_body(body)
                report.acked += 1
                report.gateway_latencies_ms.append(
                    float(payload.get("latency_ms", 0.0))
                )
                report.iterations.append(int(payload.get("iterations", 0)))
                # running damage counters (session-cumulative)
                report.windows_lost = int(payload.get("windows_lost", 0))
                report.windows_resynced = int(
                    payload.get("windows_resynced", 0)
                )
                report.frames_corrupt = int(
                    payload.get("frames_corrupt", 0)
                )
                report.frames_duplicate = int(
                    payload.get("frames_duplicate", 0)
                )
            elif kind is FrameKind.ERROR:
                report.error = decode_json_body(body).get("error", "unknown")
                break


def encoded_packets(
    system: EcgMonitorSystem,
    record: Record,
    channel: int = 0,
    max_packets: int | None = None,
) -> list[EncodedPacket]:
    """The exact packets a :class:`NodeClient` run would put on the
    wire — the offline reference for equivalence checks."""
    _, packets = encode_record_windows(
        system, record, channel=channel, max_packets=max_packets
    )
    return packets
