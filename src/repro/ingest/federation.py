"""Multi-gateway federation: a consistent-hash front door over N
gateway worker processes.

One :class:`~repro.ingest.gateway.IngestGateway` is bounded by a
single event loop and (for stages 1-2) a single core.  The federation
front door scales the ingest tier *horizontally* without giving up
the property that makes pooled solves fast: every stream of one
operator group must land on the same gateway, because the group's
shared ``A = Phi Psi^-1`` precompute and its cross-stream batch pool
live in that gateway's process.

The design is a routing tier, not a decode tier:

- :class:`FederationFrontDoor` owns the public TCP listener.  It
  frame-parses exactly one frame per link — the ``HELLO`` — recovers
  the stream's *operator key* (the same
  :func:`~repro.fleet.scheduler.operator_key` the offline fleet
  scheduler shards by), and looks the key up on a seeded consistent
  hash ring (:class:`~repro.utils.hashring.HashRing`) whose nodes are
  the gateway workers.  All streams of one operator group therefore
  land on one gateway, keeping its ``A`` precompute hot and its
  cross-stream batching intact.
- The chosen worker is dialed on its loopback port, the ``HELLO`` is
  forwarded byte-identically (re-encoded through the same
  :func:`~repro.ingest.protocol.encode_frame` that produced it), and
  from then on the front door is a pure byte pump in both directions
  — no mid-stream re-framing, no protocol state, so the decoded
  output is bit-identical to a node dialing the gateway directly
  (``benchmarks/bench_federation.py`` pins this).
- Each worker is a separate OS process running a plain
  :class:`~repro.ingest.gateway.IngestGateway` on its own event loop
  and a fresh :class:`~repro.telemetry.MetricsRegistry`, supervised
  over a :func:`multiprocessing.Pipe` control channel (ready /
  stats / shutdown).  Platforms without working multiprocessing fall
  back to daemon threads, mirroring the fleet engine's warn-once
  idiom (scale-out is lost; semantics are not).

**Failover.**  The supervisor heartbeats every worker through the
control pipe (the heartbeat doubles as the telemetry pull, below).  A
worker that dies — process exit, pipe EOF, or
``heartbeat_misses`` consecutive silent beats — is removed from the
ring, which by the ring's segment property remaps *only the dead
worker's key range*; every other stream's placement is untouched.
The dead worker's live node links are cut (counted in
``federation_reroutes``); each node's
:class:`~repro.ingest.client.NodeClient` reconnects with backoff,
sends a fresh ``HELLO`` with ``resume`` set, and the front door
routes it to the segment's new owner, where the stream replays from
its retransmit ring (fec) or re-anchors at the next keyframe — so a
gateway death damages each of its streams by at most
``keyframe_interval`` windows, and nothing else in the fleet.

**Telemetry roll-up.**  Each worker publishes to its own registry;
the supervisor periodically pulls
:meth:`~repro.telemetry.MetricsSnapshot.delta_since` deltas over the
control pipe and :meth:`~repro.telemetry.MetricsRegistry.absorb`-s
them into the front door's registry — the same associative monoid
merge the in-gateway process pool already uses, now one level up.
:meth:`FederationFrontDoor.federation_stats` and
:meth:`FederationFrontDoor.merged_results` are read models over the
rolled-up registry and the collected
:class:`~repro.ingest.gateway.IngestStreamResult` lists.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import warnings
from dataclasses import dataclass, field

from ..errors import ConfigurationError, ProtocolError
from ..fleet.scheduler import operator_key
from ..telemetry import MetricsRegistry, MetricsSnapshot
from ..utils.hashring import HashRing
from .gateway import (
    DEFAULT_FLUSH_MS,
    GatewayStats,
    IngestGateway,
    IngestStreamResult,
    gateway_stats_from,
    merge_stream_results,
)
from .protocol import FrameKind, Handshake, encode_frame, encode_json_frame, read_frame

#: session-id range width per gateway: gateway ``i`` numbers its
#: sessions from ``i * stride``, so ids stay unique fleet-wide and
#: :func:`~repro.ingest.gateway.merge_stream_results` can merge a
#: reconnecting stream's sessions from different gateways
SESSION_ID_STRIDE = 1 << 20

#: bytes per proxy read: large enough to amortize the pump loop,
#: small enough that backpressure still propagates promptly
_PUMP_CHUNK = 1 << 16


# ----------------------------------------------------------------------
# worker side: one gateway process behind a control pipe
# ----------------------------------------------------------------------
def _gateway_worker_main(conn, spec: dict) -> None:
    """Entry point of one gateway worker (process or fallback thread).

    Module-level so it pickles under every multiprocessing start
    method.  ``spec`` carries only scalars (gateway kwargs, bind host,
    session-id base) — the worker builds everything else itself.
    """
    try:
        asyncio.run(_gateway_worker(conn, spec))
    finally:
        try:
            conn.close()
        except OSError:
            pass


async def _gateway_worker(conn, spec: dict) -> None:
    """Host one :class:`IngestGateway` and serve the control pipe.

    Control protocol (parent -> worker, each tagged with a
    monotonically increasing integer so stale replies of a timed-out
    request are discarded):

    - ``(tag, "stats")`` — reply ``(tag, "stats", delta_dict)`` where
      ``delta_dict`` is the registry's change since the last pull
      (:meth:`MetricsSnapshot.delta_since`); doubles as the heartbeat.
    - ``(tag, "shutdown")`` — drain and close the gateway, then reply
      ``(tag, "closed", results, final_delta_dict, batch_log)``.

    The unsolicited ``("ready", port)`` message announces the
    gateway's ephemeral listen port right after startup.  Pipe EOF
    (the front door died) closes the gateway and exits.
    """
    registry = MetricsRegistry()
    gateway = IngestGateway(
        batch_size=spec["batch_size"],
        flush_ms=spec["flush_ms"],
        workers=spec["workers"],
        max_pending=spec["max_pending"],
        telemetry=registry,
        adaptive=spec["adaptive"],
        nack_budget=spec["nack_budget"],
        nack_deadline_ms=spec["nack_deadline_ms"],
        session_id_base=spec["session_id_base"],
    )
    port = await gateway.start(spec["host"], 0)
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, conn.send, ("ready", port))
    shipped = MetricsSnapshot.empty()
    shutdown_tag: int | None = None
    while True:
        try:
            message = await loop.run_in_executor(None, conn.recv)
        except (EOFError, OSError):
            break  # front door gone: close and exit
        if not isinstance(message, tuple) or len(message) < 2:
            continue
        tag, kind = message[0], message[1]
        if kind == "stats":
            snapshot = registry.snapshot()
            delta = snapshot.delta_since(shipped)
            shipped = snapshot
            await loop.run_in_executor(
                None, conn.send, (tag, "stats", delta.to_dict())
            )
        elif kind == "shutdown":
            shutdown_tag = tag
            break
        else:
            await loop.run_in_executor(
                None, conn.send, (tag, "error", f"unknown control {kind!r}")
            )
    await gateway.close()
    if shutdown_tag is not None:
        final = registry.snapshot().delta_since(shipped)
        try:
            conn.send(
                (
                    shutdown_tag,
                    "closed",
                    gateway.results,
                    final.to_dict(),
                    gateway.batch_log,
                )
            )
        except (OSError, ValueError):
            pass  # parent died mid-shutdown; nothing left to report to


# ----------------------------------------------------------------------
# front-door side
# ----------------------------------------------------------------------
@dataclass
class _GatewayWorker:
    """Front-door handle of one gateway worker."""

    gateway_id: str
    index: int
    runner: object  # multiprocessing.Process | threading.Thread
    conn: object  # parent end of the control pipe
    in_process: bool  # thread fallback (no isolation, no kill)
    port: int = -1
    alive: bool = True
    #: serializes control-pipe request/reply round trips
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: live proxy sessions currently routed to this worker
    sessions: set = field(default_factory=set)
    next_tag: int = 0
    missed_beats: int = 0


class _ProxySession:
    """One node link spliced to its backend gateway link."""

    def __init__(self, node_reader, node_writer, backend_reader, backend_writer):
        self.node_reader = node_reader
        self.node_writer = node_writer
        self.backend_reader = backend_reader
        self.backend_writer = backend_writer

    def cut(self) -> None:
        """Sever both halves (the worker died): the node sees EOF and
        reconnects through the front door; the ring, updated by then,
        routes it to the segment's new owner."""
        for writer in (self.backend_writer, self.node_writer):
            try:
                writer.close()
            except (ConnectionError, RuntimeError):
                pass

    async def pump(self) -> None:
        """Pump bytes both ways until the link winds down.

        Node EOF half-closes the backend (the gateway still owes
        DECODED acks for in-flight windows); the backend closing ends
        the session.  If the backend side ends *first* (worker death
        or gateway shutdown) the node side is cut — nothing more can
        reach it."""
        upstream = asyncio.create_task(
            self._pump(self.node_reader, self.backend_writer, half_close=True)
        )
        downstream = asyncio.create_task(
            self._pump(self.backend_reader, self.node_writer, half_close=False)
        )
        try:
            done, _ = await asyncio.wait(
                {upstream, downstream}, return_when=asyncio.FIRST_COMPLETED
            )
            if upstream in done and downstream not in done:
                # node finished sending: wait for the gateway to flush
                # its remaining acks and close its side
                await downstream
        finally:
            for task in (upstream, downstream):
                task.cancel()
            await asyncio.gather(upstream, downstream, return_exceptions=True)
            self.cut()

    @staticmethod
    async def _pump(reader, writer, *, half_close: bool) -> None:
        try:
            while True:
                data = await reader.read(_PUMP_CHUNK)
                if not data:
                    break
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            return  # peer vanished; the other direction winds down too
        try:
            if half_close and writer.can_write_eof():
                writer.write_eof()
            else:
                writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass


@dataclass
class FederationStats:
    """Read model over the front door's rolled-up registry."""

    gateways: int  #: workers started
    gateways_alive: int  #: workers currently alive
    streams_routed: int  #: node links routed by operator key
    reroutes: int  #: live links cut by a gateway death
    #: links routed per gateway id (placement balance view)
    streams_by_gateway: dict[str, int]
    #: rolled-up ingest totals (fresh up to the last stats pull)
    sessions_opened: int
    windows_decoded: int
    windows_lost: int


class FederationFrontDoor:
    """Route node links across N gateway worker processes.

    Parameters
    ----------
    gateways:
        Worker process count.  ``1`` is a valid (supervised) fleet of
        one; the CLI keeps ``--gateways 1`` on the plain in-process
        gateway path instead, byte-identically to before.
    batch_size / flush_ms / workers_per_gateway / max_pending /
    adaptive / nack_budget / nack_deadline_ms:
        Forwarded to each worker's
        :class:`~repro.ingest.gateway.IngestGateway` unchanged.
        ``workers_per_gateway`` defaults to 1: the federation already
        scales across processes, so each gateway solves in-process
        unless explicitly told to shard further.
    telemetry:
        The front door's own registry — the roll-up target.  Workers
        always build private registries; their deltas are absorbed
        here.
    ring_seed / ring_replicas:
        Consistent-hash ring parameters
        (:class:`~repro.utils.hashring.HashRing`).  The seed makes
        placement reproducible across runs and machines.
    heartbeat_s / heartbeat_misses:
        Supervision cadence: every ``heartbeat_s`` the supervisor
        pulls a stats delta from each worker (liveness probe and
        telemetry roll-up in one round trip); ``heartbeat_misses``
        consecutive failures declare the worker dead.
    use_processes:
        ``False`` forces the thread fallback (used by tests on
        platforms where multiprocessing is unavailable; failover
        kill tests require real processes).
    """

    def __init__(
        self,
        gateways: int = 2,
        *,
        batch_size: int = 32,
        flush_ms: float = DEFAULT_FLUSH_MS,
        workers_per_gateway: int = 1,
        max_pending: int | None = None,
        adaptive: bool = False,
        nack_budget: int = 8,
        nack_deadline_ms: float = 1000.0,
        telemetry: MetricsRegistry | None = None,
        ring_seed: int = 2011,
        ring_replicas: int = 64,
        heartbeat_s: float = 1.0,
        heartbeat_misses: int = 3,
        use_processes: bool = True,
    ) -> None:
        if gateways < 1:
            raise ConfigurationError(
                f"gateways must be >= 1, got {gateways}"
            )
        if heartbeat_s <= 0:
            raise ConfigurationError(
                f"heartbeat_s must be positive, got {heartbeat_s}"
            )
        if heartbeat_misses < 1:
            raise ConfigurationError(
                f"heartbeat_misses must be >= 1, got {heartbeat_misses}"
            )
        self.gateways = gateways
        self.telemetry = (
            telemetry if telemetry is not None else MetricsRegistry()
        )
        self.heartbeat_s = heartbeat_s
        self.heartbeat_misses = heartbeat_misses
        self.ring = HashRing(seed=ring_seed, replicas=ring_replicas)
        #: ``(operator_key, gateway_id)`` per routed link, in arrival
        #: order — lets tests assert placement determinism
        self.route_log: list[tuple[tuple, str]] = []
        #: stream identity -> gateway id of its latest placement; a
        #: returning stream whose previous gateway died is a reroute
        self._placements: dict[str, str] = {}
        #: completed stream results collected from shut-down workers
        self.results: list[IngestStreamResult] = []
        #: per-gateway batch composition logs, collected at shutdown
        self.batch_logs: dict[str, list] = {}
        self.port: int | None = None

        self._spec_base = {
            "batch_size": batch_size,
            "flush_ms": flush_ms,
            "workers": workers_per_gateway,
            "max_pending": max_pending,
            "adaptive": adaptive,
            "nack_budget": nack_budget,
            "nack_deadline_ms": nack_deadline_ms,
            "host": "127.0.0.1",  # backend plane is always loopback
        }
        self._use_processes = use_processes
        self._workers: dict[str, _GatewayWorker] = {}
        self._server: asyncio.AbstractServer | None = None
        self._supervisor_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._closed = False
        #: generous bounds for worker startup and drain-then-shutdown
        self._spawn_timeout_s = 30.0
        self._shutdown_timeout_s = 60.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Spawn the workers, then bind the public listener.

        Workers are spawned *before* the listener exists so forked
        children never inherit (and pin open) the public socket.
        Returns the bound port.
        """
        for index in range(self.gateways):
            worker = await self._spawn(index)
            self._workers[worker.gateway_id] = worker
            self.ring.add(worker.gateway_id)
        self.telemetry.set_gauge(
            "federation_gateways", len(self._alive_workers())
        )
        self._server = await asyncio.start_server(
            self._handle_node, host, port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._supervisor_task = asyncio.create_task(self._supervise())
        return self.port

    async def close(self) -> None:
        """Stop routing, shut every worker down, collect its results
        and final telemetry delta."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            await asyncio.gather(
                self._supervisor_task, return_exceptions=True
            )
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )
        for worker in self._workers.values():
            await self._shutdown_worker(worker)
        self.telemetry.set_gauge("federation_gateways", 0)

    async def _spawn(self, index: int) -> _GatewayWorker:
        """Start gateway worker ``index`` and wait for its ready
        announcement (which carries the ephemeral backend port)."""
        parent_conn, child_conn = multiprocessing.Pipe()
        spec = dict(
            self._spec_base, session_id_base=index * SESSION_ID_STRIDE
        )
        runner = None
        if self._use_processes:
            try:
                runner = multiprocessing.Process(
                    target=_gateway_worker_main,
                    args=(child_conn, spec),
                    daemon=True,
                )
                runner.start()
            except (ImportError, OSError, ValueError) as exc:
                # platform fallback, mirroring the fleet engine: warn
                # once and run every gateway as a daemon thread (no
                # core scale-out, identical semantics)
                warnings.warn(
                    f"federation falling back to in-process gateways: "
                    f"multiprocessing unavailable ({exc})",
                    RuntimeWarning,
                )
                self._use_processes = False
                runner = None
        if runner is None:
            runner = threading.Thread(
                target=_gateway_worker_main,
                args=(child_conn, spec),
                daemon=True,
                name=f"federation-gw{index}",
            )
            runner.start()
        else:
            child_conn.close()  # the child process holds its own end
        worker = _GatewayWorker(
            gateway_id=f"gw{index}",
            index=index,
            runner=runner,
            conn=parent_conn,
            in_process=not self._use_processes,
        )
        loop = asyncio.get_running_loop()
        ready = await loop.run_in_executor(
            None, parent_conn.poll, self._spawn_timeout_s
        )
        if not ready:
            raise ConfigurationError(
                f"federation gateway {worker.gateway_id} did not start "
                f"within {self._spawn_timeout_s:.0f}s"
            )
        message = await loop.run_in_executor(None, parent_conn.recv)
        if (
            not isinstance(message, tuple)
            or len(message) != 2
            or message[0] != "ready"
        ):
            raise ConfigurationError(
                f"federation gateway {worker.gateway_id} sent "
                f"{message!r} instead of its ready announcement"
            )
        worker.port = int(message[1])
        return worker

    def _alive_workers(self) -> list[_GatewayWorker]:
        return [w for w in self._workers.values() if w.alive]

    # ------------------------------------------------------------------
    # control pipe
    # ------------------------------------------------------------------
    async def _request(
        self, worker: _GatewayWorker, kind: str, timeout: float
    ) -> tuple:
        """One tagged request/reply round trip on a worker's pipe.

        Serialized per worker; replies whose tag does not match (left
        over from a timed-out earlier request) are discarded.  Raises
        ``TimeoutError`` / ``EOFError`` / ``OSError`` — the caller
        decides whether that makes the worker dead.
        """
        loop = asyncio.get_running_loop()
        async with worker.lock:
            worker.next_tag += 1
            tag = worker.next_tag
            await loop.run_in_executor(None, worker.conn.send, (tag, kind))
            deadline = loop.time() + timeout
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{worker.gateway_id} did not answer {kind!r} "
                        f"within {timeout:.1f}s"
                    )
                # poll in short slices so a cancelled round trip never
                # strands an executor thread on a long block
                ready = await loop.run_in_executor(
                    None, worker.conn.poll, min(remaining, 0.25)
                )
                if not ready:
                    continue
                reply = await loop.run_in_executor(None, worker.conn.recv)
                if (
                    isinstance(reply, tuple)
                    and len(reply) >= 2
                    and reply[0] == tag
                ):
                    return reply

    async def _supervise(self) -> None:
        """Heartbeat every worker; one round trip doubles as the
        telemetry roll-up pull (stats delta absorbed on success)."""
        while True:
            await asyncio.sleep(self.heartbeat_s)
            for worker in self._alive_workers():
                if not worker.runner.is_alive():
                    await self._declare_dead(worker, "worker exited")
                    continue
                try:
                    reply = await self._request(
                        worker, "stats", timeout=self.heartbeat_s
                    )
                except (TimeoutError, OSError, EOFError):
                    worker.missed_beats += 1
                    if (
                        worker.missed_beats >= self.heartbeat_misses
                        or not worker.runner.is_alive()
                    ):
                        await self._declare_dead(worker, "heartbeat lost")
                    continue
                worker.missed_beats = 0
                self.telemetry.absorb(reply[2])

    async def poll_stats(self) -> None:
        """Pull a stats delta from every live worker right now (the
        supervisor does this on its own cadence; callers wanting a
        fresh :meth:`federation_stats` read model pull explicitly)."""
        for worker in self._alive_workers():
            try:
                reply = await self._request(
                    worker, "stats", timeout=self._spawn_timeout_s
                )
            except (TimeoutError, OSError, EOFError):
                continue  # the supervisor will rule on its liveness
            self.telemetry.absorb(reply[2])

    async def _declare_dead(
        self, worker: _GatewayWorker, reason: str
    ) -> None:
        """A worker is gone: shrink the ring (remapping only its
        segment) and cut its live links so their nodes reconnect."""
        if not worker.alive:
            return
        worker.alive = False
        if worker.gateway_id in self.ring:
            self.ring.remove(worker.gateway_id)
        self.telemetry.set_gauge(
            "federation_gateways", len(self._alive_workers())
        )
        warnings.warn(
            f"federation gateway {worker.gateway_id} lost ({reason}); "
            f"remapping its ring segment to the surviving gateways",
            RuntimeWarning,
        )
        # cut whatever links are still spliced (most wind down on
        # their own when the worker's sockets die); the reroute
        # counter increments when each stream's reconnect is actually
        # remapped in _open_backend
        for session in list(worker.sessions):
            session.cut()
        try:
            worker.conn.close()
        except OSError:
            pass
        if isinstance(worker.runner, multiprocessing.Process):
            worker.runner.terminate()

    async def kill_gateway(self, gateway_id: str) -> None:
        """Hard-kill one worker process (failover testing).  The
        supervisor's bookkeeping runs immediately rather than waiting
        a heartbeat."""
        worker = self._workers[gateway_id]
        if worker.in_process:
            raise ConfigurationError(
                "cannot kill a thread-mode federation gateway"
            )
        worker.runner.kill()
        await asyncio.get_running_loop().run_in_executor(
            None, worker.runner.join, self._spawn_timeout_s
        )
        await self._declare_dead(worker, "killed")

    async def _shutdown_worker(self, worker: _GatewayWorker) -> None:
        """Orderly worker shutdown: drain the gateway, collect its
        results, batch log and final telemetry delta."""
        if worker.alive:
            try:
                reply = await self._request(
                    worker, "shutdown", timeout=self._shutdown_timeout_s
                )
                self.results.extend(reply[2])
                self.telemetry.absorb(reply[3])
                self.batch_logs[worker.gateway_id] = reply[4]
            except (TimeoutError, OSError, EOFError):
                warnings.warn(
                    f"federation gateway {worker.gateway_id} did not "
                    f"shut down cleanly; its results are lost",
                    RuntimeWarning,
                )
            worker.alive = False  # repro-lint: disable=RL008 — idempotent: a concurrent _declare_dead only ever writes False too, and a worker dying mid-await lands in the except arm above
        try:
            worker.conn.close()
        except OSError:
            pass
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, worker.runner.join, self._spawn_timeout_s
        )
        if (
            isinstance(worker.runner, multiprocessing.Process)
            and worker.runner.is_alive()
        ):
            worker.runner.terminate()
            await loop.run_in_executor(None, worker.runner.join, 5.0)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _handle_node(self, reader, writer) -> None:
        """Serve one public link: parse the HELLO, route, then pump."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            frame = await read_frame(reader)
            if frame is None:
                return
            kind, body = frame
            if kind is not FrameKind.HELLO:
                raise ProtocolError(
                    f"expected HELLO as the first frame, got {kind.name}"
                )
            handshake = Handshake.from_body(body)
            key = operator_key(handshake.config, handshake.precision)
            stream_key = f"{handshake.record}:{handshake.channel}"
            worker, session = await self._open_backend(
                key, stream_key, body, reader, writer
            )
            worker.sessions.add(session)
            try:
                await session.pump()
            finally:
                worker.sessions.discard(session)
        except ProtocolError as exc:
            self._send_error(writer, str(exc))
        except LookupError:
            self._send_error(writer, "no federation gateway available")
        except (ConnectionError, asyncio.CancelledError):
            pass  # dropped link or front-door shutdown
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _open_backend(
        self,
        key: tuple,
        stream_key: str,
        hello_body: bytes,
        node_reader,
        node_writer,
    ) -> tuple[_GatewayWorker, _ProxySession]:
        """Ring-route ``key`` and splice a backend link, forwarding
        the HELLO byte-identically.  A refused dial declares that
        worker dead on the spot and retries on the shrunken ring."""
        while True:
            gateway_id = self.ring.lookup(key)  # LookupError: ring empty
            worker = self._workers[gateway_id]
            try:
                backend_reader, backend_writer = await asyncio.open_connection(
                    self._spec_base["host"], worker.port
                )
            except OSError:
                await self._declare_dead(worker, "backend dial refused")
                continue
            backend_writer.write(encode_frame(FrameKind.HELLO, hello_body))
            await backend_writer.drain()
            self.telemetry.inc("federation_streams", gateway=gateway_id)
            self.route_log.append((key, gateway_id))
            # a stream coming back after its gateway died has been
            # remapped to this segment's new owner: that *is* the
            # reroute (counting at declare-death time raced the proxy
            # sessions, which wind down before the death is ruled)
            previous = self._placements.get(stream_key)
            if (
                previous is not None
                and previous != gateway_id
                and previous in self._workers
                and not self._workers[previous].alive
            ):
                self.telemetry.inc(
                    "federation_reroutes", gateway=previous
                )
            self._placements[stream_key] = gateway_id
            return worker, _ProxySession(
                node_reader, node_writer, backend_reader, backend_writer
            )

    def _send_error(self, writer, message: str) -> None:
        try:
            writer.write(
                encode_json_frame(FrameKind.ERROR, {"error": message})
            )
        except (ConnectionError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    # read models
    # ------------------------------------------------------------------
    @property
    def stats(self) -> GatewayStats:
        """The fleet-wide :class:`~repro.ingest.gateway.GatewayStats`
        aggregate, materialized from the rolled-up registry — the
        same read model a single gateway exposes, summed across
        workers by the monoid merge (fresh up to the last stats
        pull; complete after :meth:`close`)."""
        return gateway_stats_from(self.telemetry)

    def federation_stats(self) -> FederationStats:
        """The roll-up view (fresh up to the last stats pull; call
        :meth:`poll_stats` first for an up-to-the-moment read)."""
        snap = self.telemetry.snapshot()
        return FederationStats(
            gateways=len(self._workers) or self.gateways,
            gateways_alive=len(self._alive_workers()),
            streams_routed=int(snap.counter_total("federation_streams")),
            reroutes=int(snap.counter_total("federation_reroutes")),
            streams_by_gateway={
                gid: int(
                    snap.counter_value("federation_streams", gateway=gid)
                )
                for gid in self._workers
            },
            sessions_opened=int(
                snap.counter_total("ingest_sessions_opened")
            ),
            windows_decoded=int(
                snap.counter_total("ingest_windows_decoded")
            ),
            windows_lost=int(snap.counter_total("ingest_windows_lost")),
        )

    def merged_results(self) -> dict[str, IngestStreamResult]:
        """Collected stream results merged per stream identity — the
        same :func:`~repro.ingest.gateway.merge_stream_results` a
        single gateway applies to its own reconnects, here across
        gateway id ranges."""
        return merge_stream_results(self.results)


async def serve_federation(
    front_door: FederationFrontDoor,
    host: str = "127.0.0.1",
    port: int = 9765,
) -> None:
    """Run a federation front door until cancelled."""
    await front_door.start(host, port)
    try:
        await asyncio.Event().wait()  # serve until cancelled
    finally:
        await front_door.close()


__all__ = [
    "SESSION_ID_STRIDE",
    "FederationFrontDoor",
    "FederationStats",
    "serve_federation",
]
