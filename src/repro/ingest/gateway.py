"""The asyncio ingestion gateway: live node links feeding pooled solves.

:class:`IngestGateway` is the coordinator-side front end the paper's
deployment implies: many body-worn nodes stream compressed ECG over a
radio link, and the monitor must decode *all* of them in real time.
Where :class:`~repro.fleet.FleetDecoder` is fed whole pre-read records,
the gateway decodes incrementally from whatever links are currently
connected:

- each accepted connection (TCP, or the in-process loopback used by
  tests) performs the :class:`~repro.ingest.protocol.Handshake` and
  then streams ``PACKET`` frames;
- stages 1-2 (entropy decode, redundancy re-insertion, dequantization
  — stateful, cheap) run in the session's read loop, in arrival order;
- the resulting measurement columns are pooled per *operator group*
  (:func:`~repro.fleet.scheduler.solve_key`), exactly like the offline
  fleet scheduler: batches fill across whatever streams share the
  group, so ragged live streams merge into full-width solves;
- a group flushes when ``batch_size`` columns are pending, when the
  oldest pending column has waited ``flush_ms`` (so a lone stream
  still meets the real-time latency budget), or when a stream ends
  (disconnect or ``BYE``) with columns still pending — a partial batch
  always decodes;
- each flushed block is solved by the same
  :func:`~repro.fleet.engine.solve_measurement_block` the offline
  column-sharded fleet uses — in a thread when ``workers <= 1``, or
  across a persistent process pool when ``workers >= 2``, which *is*
  intra-group sharding: successive batches of one operator group
  decode concurrently on different cores.

Backpressure is per stream: a session may have at most
``max_pending`` windows in flight; past that its read loop stops
pulling frames, which on TCP propagates to the node's socket.  The
quota is acquired *before* any per-frame work (CRC parse, entropy
decode, dequantization), so a flooding node cannot buy unbounded
gateway CPU ahead of its backpressure bound.  One slow stream
therefore cannot grow the gateway's memory unboundedly or starve its
group-mates.

The wire is treated as lossy (:mod:`repro.ingest.channel`): each
session tracks the expected next sequence number; duplicates and stale
reordered frames are dropped idempotently, a corrupt-CRC frame is
counted and discarded, and a sequence gap puts stage 2 into a *resync*
state that discards difference packets until the next keyframe
re-anchors the cumulative chain — so one loss event damages at most
``keyframe_interval`` windows, and every damaged window is accounted
in :class:`IngestStreamResult` / :class:`GatewayStats` rather than
silently corrupting the reconstruction.

Sessions that negotiate ``fec`` (protocol v2) run the two-tier
:class:`~repro.ingest.channel.StreamRecovery` front-end instead of
resyncing on the first gap: the epoch's ``PARITY`` frame reconstructs
a single loss locally, and a ``NACK`` frame — sent over the existing
ack channel, off the solve path — solicits retransmission of anything
parity cannot cover.  The link stays open for a bounded deadline after
``BYE`` so even a trailing loss can be retransmitted; only when the
budget, the hold cap, or the deadline runs out does the held run drain
through the plain keyframe-resync path above.  Recovered windows are
accounted separately (``windows_recovered_parity`` /
``windows_recovered_retransmit``), never double-counted as lost.

The decoded output is bit-identical to the offline path: every flushed
block runs the same batched solve the offline engine would run on the
same columns, and ``benchmarks/bench_ingest_gateway.py`` replays the
gateway's logged batch compositions through the offline solver to pin
it.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..core.decoder import PacketPayloadDecoder
from ..errors import (
    ConfigurationError,
    DecodingError,
    PacketFormatError,
    ProtocolError,
)
from ..fleet.engine import solve_measurement_block
from ..fleet.scheduler import solve_key
from ..telemetry import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from .adaptive import (
    AdaptiveBatchController,
    AdaptiveConfig,
    FixedBatchController,
)
from .channel import FrameVerdict, SequenceTracker, StreamRecovery
from .protocol import (
    FrameKind,
    Handshake,
    decode_json_body,
    encode_json_frame,
    read_frame,
)

#: default flush-on-idle deadline: a pending window never waits longer
#: than this for batch-mates before decoding.  Chosen well inside the
#: paper's 2-second real-time budget, leaving room for the solve.
DEFAULT_FLUSH_MS = 250.0


class _LoopbackWriter:
    """Minimal in-process ``StreamWriter`` stand-in for tests/benches.

    Feeds written bytes straight into the peer's
    :class:`asyncio.StreamReader`.  ``close()`` delivers EOF to the
    peer, so an abrupt close mid-frame reproduces a truncated-stream
    disconnect exactly as a dropped TCP connection would.
    """

    def __init__(self, peer_reader: asyncio.StreamReader) -> None:
        self._peer = peer_reader
        self._closed = False

    def write(self, data: bytes) -> None:
        if not self._closed:
            self._peer.feed_data(data)

    async def drain(self) -> None:
        return None

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._peer.feed_eof()

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        return None

    def get_extra_info(self, name: str, default=None):
        return default


@dataclass
class _PendingWindow:
    """One dequantized measurement column waiting for a solve.

    Carries only its arrival stamp; flush deadlines are computed at
    decision time from the controller's *current* effective flush
    interval, so an adaptive gateway can tighten the deadline of
    windows already waiting.
    """

    session: "_Session"
    index: int  # window index within the session
    sequence: int
    column: np.ndarray  # (m,) in the group's dtype
    fraction: float  # the stream's lambda fraction
    t_submit: float  # loop time at frame arrival (before backpressure)


@dataclass
class IngestStreamResult:
    """Everything the gateway retained about one completed stream."""

    session_id: int
    record: str
    channel: int
    clean_close: bool  # BYE received (False: disconnect or error)
    error: str | None
    #: wall-clock session-open stamp.  Session ids order sessions
    #: within one gateway; across a federation each gateway numbers
    #: from its own ``session_id_base``, so merging a reconnecting
    #: stream's sessions (see :func:`merge_stream_results`) orders by
    #: this stamp first and falls back to the id as a tiebreak.
    opened_unix: float = 0.0
    #: whether the session's HELLO declared itself a continuation of
    #: the stream's previous session (``resumed`` flag, implied by a
    #: non-zero ``resume``).  A continuation shares its predecessor's
    #: sequence space, so a sequence seen in both sessions is the same
    #: window — replayed after the cut — and the merge deduplicates
    #: it.  A fresh session restarts the space: equal numbers are
    #: different windows and every one is kept.
    resumed: bool = False
    #: window index within the stream, in decode-completion order —
    #: monotonic for an in-process gateway, possibly interleaved when
    #: batches decode concurrently on a process pool (call
    #: :meth:`ordered` — done automatically at stream end — before
    #: reading the per-window lists positionally)
    indices: list[int] = field(default_factory=list)
    sequences: list[int] = field(default_factory=list)
    iterations: list[int] = field(default_factory=list)
    decode_seconds: list[float] = field(default_factory=list)
    latencies_s: list[float] = field(default_factory=list)
    samples_adu: list[np.ndarray] = field(default_factory=list)
    #: lossy-channel damage accounting (see repro.ingest.channel):
    #: windows that never arrived (sequence gaps, incl. the BYE-closed
    #: tail gap), diff windows discarded while resyncing to a keyframe,
    #: frames failing the on-air CRC, and idempotently dropped
    #: duplicate/stale frames
    windows_lost: int = 0
    windows_resynced: int = 0
    frames_corrupt: int = 0
    frames_duplicate: int = 0
    #: windows the two-tier recovery layer saved (and decoded): from a
    #: local parity reconstruction / from a NACKed retransmission
    windows_recovered_parity: int = 0
    windows_recovered_retransmit: int = 0
    #: retransmitted frames arriving only after recovery gave up
    frames_late_retransmit: int = 0
    #: NACK frames' worth of sequences requested from the node
    nacks_sent: int = 0

    @property
    def num_windows(self) -> int:
        """Windows decoded for this stream (recovered ones included)."""
        return len(self.sequences)

    @property
    def windows_recovered(self) -> int:
        """Windows that would have been damaged but were recovered."""
        return self.windows_recovered_parity + self.windows_recovered_retransmit

    @property
    def stream_key(self) -> str:
        """Stream identity: ``record:channel``.

        Stable across reconnects — the telemetry plane labels every
        per-stream series with this key, so a node that drops its link
        and returns lands back in the *same* series instead of forking
        a second one, and :meth:`IngestGateway.merged_results`
        aggregates its sessions under this key.
        """
        return f"{self.record}:{self.channel}"

    @property
    def max_latency_s(self) -> float | None:
        """Worst frame-arrival-to-reconstruction latency observed, or
        ``None`` when no window was ever decoded (distinct from a true
        0.0 — "no data" must not read as "perfect latency")."""
        return max(self.latencies_s, default=None)

    def ordered(self) -> "IngestStreamResult":
        """Normalize the per-window lists to stream (window) order.

        Batches solved concurrently on a process pool can complete out
        of order, in which case the lists above interleave two batches'
        windows; this re-sorts every positional list by
        :attr:`indices` (a stable permutation applied to all of them,
        so rows stay aligned) and returns ``self``.  Idempotent; the
        gateway calls it at stream end, and any caller reading the
        lists mid-stream or after manual routing should too.
        """
        if self.indices != sorted(self.indices):
            order = np.argsort(self.indices, kind="stable")
            for name in (
                "indices",
                "sequences",
                "iterations",
                "decode_seconds",
                "latencies_s",
                "samples_adu",
            ):
                values = getattr(self, name)
                setattr(self, name, [values[i] for i in order])
        return self


def merge_stream_results(
    results: list[IngestStreamResult],
) -> dict[str, IngestStreamResult]:
    """Aggregate completed session results per stream identity.

    Sessions of one stream (``record:channel``) merge in temporal
    order — :attr:`IngestStreamResult.opened_unix` first, session id
    as the tiebreak, so the order is right even when a stream's
    sessions landed on different federation gateways with different
    id ranges.  Per-window lists concatenate (window indices re-based
    so :attr:`IngestStreamResult.indices` stays monotonic across the
    reconnect), damage counters sum, ``clean_close`` reflects the
    final session and the first error (if any) is preserved.

    A session that declared ``resume`` continues its predecessor's
    sequence space, so any sequence it shares with the already-merged
    windows is a *replay* (an fec node re-anchoring at its last pinned
    keyframe after a gateway failover) — decoded bit-identically on
    the new gateway, and deduplicated here so the merged stream shows
    each window once.  A session with ``resume == 0`` restarted its
    sequence space: equal sequence numbers name different windows and
    nothing is dropped.
    """
    merged: dict[str, IngestStreamResult] = {}
    ordered = sorted(results, key=lambda r: (r.opened_unix, r.session_id))
    for result in ordered:
        key = result.stream_key
        previous = merged.get(key)
        if previous is None:
            merged[key] = dataclasses.replace(
                result,
                indices=list(result.indices),
                sequences=list(result.sequences),
                iterations=list(result.iterations),
                decode_seconds=list(result.decode_seconds),
                latencies_s=list(result.latencies_s),
                samples_adu=list(result.samples_adu),
            )
            continue
        replayed = (
            set(previous.sequences) if result.resumed else frozenset()
        )
        keep = [
            position
            for position, sequence in enumerate(result.sequences)
            if sequence not in replayed
        ]
        offset = max(previous.indices, default=-1) + 1
        previous.indices.extend(offset + rank for rank in range(len(keep)))
        previous.sequences.extend(result.sequences[p] for p in keep)
        previous.iterations.extend(result.iterations[p] for p in keep)
        previous.decode_seconds.extend(
            result.decode_seconds[p] for p in keep
        )
        previous.latencies_s.extend(result.latencies_s[p] for p in keep)
        previous.samples_adu.extend(result.samples_adu[p] for p in keep)
        previous.windows_lost += result.windows_lost
        previous.windows_resynced += result.windows_resynced
        previous.frames_corrupt += result.frames_corrupt
        previous.frames_duplicate += result.frames_duplicate
        previous.windows_recovered_parity += (
            result.windows_recovered_parity
        )
        previous.windows_recovered_retransmit += (
            result.windows_recovered_retransmit
        )
        previous.frames_late_retransmit += result.frames_late_retransmit
        previous.nacks_sent += result.nacks_sent
        previous.clean_close = result.clean_close
        if previous.error is None:
            previous.error = result.error
    return merged


@dataclass
class GatewayStats:
    """Aggregate view of one gateway's lifetime.

    Since the telemetry refactor this dataclass is a *read model*: the
    gateway publishes every event to its
    :class:`~repro.telemetry.MetricsRegistry` and
    :attr:`IngestGateway.stats` materializes this view from a registry
    snapshot on access.  The field vocabulary (and the tests that read
    it) are unchanged; the counters now also persist through the
    metrics sinks and merge across process-pool workers.

    ``streams`` counts distinct stream identities (``record:channel``)
    rather than sessions: a reconnecting stream id contributes one
    stream however many sessions it opened (``sessions_opened`` keeps
    counting sessions).
    """

    sessions_opened: int = 0
    sessions_completed: int = 0
    sessions_errored: int = 0
    #: distinct stream identities served (a reconnect is not a new one)
    streams: int = 0
    windows_decoded: int = 0
    batches: int = 0
    flushes_full: int = 0
    flushes_deadline: int = 0
    flushes_drain: int = 0
    #: adaptive-mode flushes forced by the budget-pressure rule
    flushes_pressure: int = 0
    cross_stream_batches: int = 0
    #: lossy-channel damage across all sessions (see channel.py)
    windows_lost: int = 0
    windows_resynced: int = 0
    frames_corrupt: int = 0
    frames_duplicate: int = 0
    #: two-tier recovery outcomes across all sessions
    windows_recovered_parity: int = 0
    windows_recovered_retransmit: int = 0
    frames_late_retransmit: int = 0
    nacks_sent: int = 0
    #: ``None`` until the first window decodes — "no data yet" must
    #: not be reported as a perfect 0.0 latency
    max_latency_s: float | None = None


class _Session:
    """Gateway-side state of one connected node link."""

    def __init__(
        self,
        session_id: int,
        handshake: Handshake,
        writer,
        max_pending: int,
        telemetry: MetricsRegistry,
    ) -> None:
        self.id = session_id
        self.handshake = handshake
        self.writer = writer
        self.payload = PacketPayloadDecoder(
            handshake.config, codebook=handshake.codebook
        )
        self.dc_offset = 1 << (handshake.config.adc_bits - 1)
        self.dtype = (
            np.float32 if handshake.precision == "float32" else np.float64
        )
        self.quota = asyncio.Semaphore(max_pending)
        self.group: "_GroupPool | None" = None  # set by the gateway
        # telemetry series are labeled by stream identity, not session
        # id: a reconnecting node keeps accumulating its own series
        self.stream_key = f"{handshake.record}:{handshake.channel}"
        self.meter = telemetry.meter(stream=self.stream_key)
        self.tracker = SequenceTracker(meter=self.meter)
        # a reconnecting node declares where it resumes (protocol.py:
        # Handshake.resume): baseline the tracker there so the prefix
        # an earlier session already carried is not charged as lost.
        # The payload decoder still awaits a keyframe, so the *windows*
        # resync exactly as a loss would — resume fixes the accounting.
        self.tracker.expected = handshake.resume
        #: the two-tier recovery front-end; wired by the gateway in
        #: _register (it owns the NACK send path and the budget)
        self.recovery: StreamRecovery | None = None
        self.windows_submitted = 0
        self.outstanding = 0
        self.closed = False
        self.all_done = asyncio.Event()
        self.result = IngestStreamResult(
            session_id=session_id,
            record=handshake.record,
            channel=handshake.channel,
            clean_close=False,
            error=None,
            opened_unix=time.time(),
            resumed=handshake.resumed,
        )

    def check_done(self) -> None:
        """Release finalization once every in-flight window decoded."""
        if self.closed and self.outstanding == 0:
            self.all_done.set()


class _GroupPool:
    """Pending measurement columns of one operator group."""

    def __init__(
        self, key: tuple, config, precision: str, label: str = "g0"
    ) -> None:
        self.key = key
        self.label = label  # short stable telemetry label ("g0", "g1")
        self.config = config
        self.precision = precision
        self.dtype = np.float32 if precision == "float32" else np.float64
        self.pending: deque[_PendingWindow] = deque()
        self.event = asyncio.Event()
        self.drain_task: asyncio.Task | None = None

    def has_orphans(self) -> bool:
        """Pending windows whose stream already ended — these must
        flush now (partial batch) instead of waiting for batch-mates
        that will never come."""
        return any(window.session.closed for window in self.pending)


class IngestGateway:
    """Accept live node links and decode them through pooled solves.

    Parameters
    ----------
    batch_size:
        Target solve width; batches fill across every stream currently
        connected to the same operator group.
    flush_ms:
        Flush-on-idle deadline: a pending window decodes at most this
        many milliseconds after frame arrival even if the batch is not
        full, so a lone real-time stream is never held hostage to
        batching.
    workers:
        ``None``, ``0`` or ``1`` solves in a thread of this process;
        ``>= 2`` dispatches flushed blocks to a persistent process
        pool, decoding successive batches of one operator group
        concurrently (live intra-group sharding).
    max_pending:
        Per-stream backpressure bound: a session stops reading frames
        while this many of its windows await decoding.  Default
        ``4 * batch_size`` (``4 * max_batch`` in adaptive mode, so the
        widened operating point can actually fill).
    telemetry:
        The :class:`~repro.telemetry.MetricsRegistry` every event is
        published to; a private registry is created when omitted.
        :attr:`stats` and each stream's damage accounting are read
        models over this registry.
    adaptive:
        Enable the AIMD batch controller
        (:class:`~repro.ingest.adaptive.AdaptiveBatchController`):
        the effective batch width and flush deadline track load
        against the real-time budget instead of staying at the
        configured values.  With no backlog and no budget threat the
        controller holds the configured operating point, so a
        steady-state adaptive run reproduces the fixed-batch flush
        schedule exactly.
    adaptive_config:
        Optional :class:`~repro.ingest.adaptive.AdaptiveConfig`
        (budget, thresholds, step sizes) for ``adaptive=True``.
    nack_budget:
        Per-stream tier-2 budget: at most this many sequences are ever
        NACKed for retransmission on one session; a gap that would
        exceed it falls back to keyframe resync immediately.
    nack_deadline_ms:
        How long the gateway keeps a link open after ``BYE`` waiting
        for outstanding retransmissions before giving up.  The only
        wall-clock escape of the recovery layer — it fires only when
        an awaited retransmit never arrives, so live and offline
        accounting still converge.
    session_id_base:
        First session id this gateway assigns.  A federation front
        door gives each gateway a disjoint range so stream ids stay
        unique across the fleet; standalone gateways keep 0.
    """

    def __init__(
        self,
        batch_size: int = 32,
        flush_ms: float = DEFAULT_FLUSH_MS,
        workers: int | None = None,
        max_pending: int | None = None,
        telemetry: MetricsRegistry | None = None,
        adaptive: bool = False,
        adaptive_config: AdaptiveConfig | None = None,
        nack_budget: int = 8,
        nack_deadline_ms: float = 1000.0,
        session_id_base: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if flush_ms <= 0:
            raise ConfigurationError(
                f"flush_ms must be positive, got {flush_ms}"
            )
        if workers is not None and workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if nack_budget < 0:
            raise ConfigurationError(
                f"nack_budget must be >= 0, got {nack_budget}"
            )
        if nack_deadline_ms <= 0:
            raise ConfigurationError(
                f"nack_deadline_ms must be positive, got {nack_deadline_ms}"
            )
        if session_id_base < 0:
            raise ConfigurationError(
                f"session_id_base must be >= 0, got {session_id_base}"
            )
        self.nack_budget = nack_budget
        self.nack_deadline_s = nack_deadline_ms / 1000.0
        self.batch_size = batch_size
        self.flush_s = flush_ms / 1000.0
        self.workers = workers if workers else 1
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.adaptive = bool(adaptive)
        if self.adaptive:
            self.controller: (
                AdaptiveBatchController | FixedBatchController
            ) = AdaptiveBatchController(
                batch_size,
                self.flush_s,
                config=adaptive_config,
                meter=self.telemetry.meter(),
            )
        else:
            self.controller = FixedBatchController(batch_size, self.flush_s)
        if max_pending is not None:
            self.max_pending = max_pending
        elif self.adaptive:
            self.max_pending = 4 * self.controller.max_batch
        else:
            self.max_pending = 4 * batch_size
        #: completed stream results, in session-open order
        self.results: list[IngestStreamResult] = []
        #: per-flush composition log: ``(group_key, [(session_id,
        #: window_index), ...], reason)`` — lets tests and the bench
        #: replay the exact pooled blocks through the offline solver
        self.batch_log: list[tuple[tuple, list[tuple[int, int]], str]] = []

        self._groups: dict[tuple, _GroupPool] = {}
        self._sessions: dict[int, _Session] = {}
        # a federation assigns each gateway a disjoint id range, so
        # session ids stay unique fleet-wide and a reconnecting stream's
        # sessions on different gateways never collide when merged
        self._next_session_id = session_id_base
        self._quiescing = False
        self._closing = False
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        # conn tasks already past their read loop, waiting out their
        # session's drain: close() must not cancel these (see there)
        self._draining_tasks: set[asyncio.Task] = set()
        self._solve_tasks: set[asyncio.Task] = set()
        self._thread_executor: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        self._inflight: asyncio.Semaphore | None = None
        self.port: int | None = None

    # ------------------------------------------------------------------
    # telemetry read models
    # ------------------------------------------------------------------
    @property
    def stats(self) -> GatewayStats:
        """The aggregate :class:`GatewayStats` view, materialized from
        the telemetry registry on access."""
        return gateway_stats_from(self.telemetry)

    def merged_results(self) -> dict[str, IngestStreamResult]:
        """Completed results aggregated per stream identity.

        A node that reconnects opens a new *session*, but it is still
        the same *stream* (``record:channel``); counting its sessions
        as two streams — and reading only the newest session's
        counters — silently dropped the first session's damage
        accounting.  See :func:`merge_stream_results` (the same merge
        a federation front door applies across gateways).
        """
        return merge_stream_results(self.results)


    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind the TCP listener; returns the actual port (``port=0``
        asks the OS for a free one)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def connect_local(self):
        """Open an in-process link: returns ``(reader, writer)`` for a
        node-side client, with the gateway serving the other end.

        The transport for tests and benches: no sockets, same frames,
        same session code path as TCP.
        """
        if self._closing or self._quiescing:
            raise ConfigurationError("gateway is closed")
        client_reader = asyncio.StreamReader()
        server_reader = asyncio.StreamReader()
        client_writer = _LoopbackWriter(server_reader)
        server_writer = _LoopbackWriter(client_reader)
        # _handle_connection self-registers in _conn_tasks
        asyncio.create_task(
            self._handle_connection(server_reader, server_writer)
        )
        return client_reader, client_writer

    async def close(self, *, drain_s: float = 30.0) -> None:
        """Stop accepting, drain in-flight work, release executors.

        Closing is two-phase.  **Drain** (bounded by ``drain_s``):
        the listener stops, every link's read loop is cancelled, and
        each session runs its normal stream-end path — pending
        windows flush as partial batches, in-flight solves complete
        and route their results — while the drain loops and the
        solver pool are still alive.  Only then **teardown**:
        ``_closing`` flips (failing any flush that would reach a dead
        pool), the drain loops stop, and the executors shut down.
        Setting ``_closing`` *first* — the old order — made the
        stream-end drain itself fail its batches: a close racing a
        long solve dropped completed results and errored the
        sessions.  Sessions still stuck past the deadline are
        abandoned with a warning rather than wedging ``close()``
        forever.
        """
        self._quiescing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_s
        # cut the read loops; each session's finally-path finalize
        # marks it closed and wakes its group, so stragglers flush as
        # partial batches and results publish before teardown.  Tasks
        # already draining (past their read loop, e.g. a BYE'd session
        # awaiting a slow solve) are left alone — cancelling them would
        # kill the finalize itself; _settle waits for them, and the
        # deadline path below still abandons any that wedge.
        for task in list(self._conn_tasks):
            if task not in self._draining_tasks:
                task.cancel()
        stuck = await self._settle(self._conn_tasks, deadline)
        if stuck:
            warnings.warn(
                f"ingest gateway close(): {len(stuck)} session(s) still "
                f"draining after {drain_s:.1f}s; abandoning their "
                "results",
                RuntimeWarning,
            )
            for task in stuck:
                task.cancel()
            await asyncio.gather(*stuck, return_exceptions=True)
        # every cleanly finalized session has routed all its windows,
        # so only abandoned sessions' solves can still be running here
        late = await self._settle(self._solve_tasks, deadline)
        for task in late:
            task.cancel()
        if late:
            await asyncio.gather(*late, return_exceptions=True)
        self._closing = True
        for group in self._groups.values():
            if group.drain_task is not None:
                group.drain_task.cancel()
        drains = [
            g.drain_task
            for g in self._groups.values()
            if g.drain_task is not None
        ]
        if drains:
            await asyncio.gather(*drains, return_exceptions=True)
        if self._thread_executor is not None:
            self._thread_executor.shutdown(wait=True)
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)

    async def _settle(
        self, tasks: set[asyncio.Task], deadline: float
    ) -> set[asyncio.Task]:
        """Await ``tasks`` until ``deadline``; returns the stragglers.

        The set is re-snapshotted each round because a settling
        session can schedule new solve tasks (its partial-batch
        flush) that must also drain before pool teardown.
        """
        loop = asyncio.get_running_loop()
        while True:
            pending = {task for task in tasks if not task.done()}
            if not pending:
                return set()
            timeout = deadline - loop.time()
            if timeout <= 0:
                return pending
            await asyncio.wait(pending, timeout=timeout)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        """Serve one node link end to end (both transports)."""
        # self-register so close() can cancel mid-stream links — TCP
        # handler tasks are spawned by asyncio.start_server, which does
        # not hand them to us any other way
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        session: _Session | None = None
        try:
            frame = await read_frame(reader)
            if frame is None:
                return
            kind, body = frame
            if kind is not FrameKind.HELLO:
                raise ProtocolError(
                    f"expected HELLO as the first frame, got {kind.name}"
                )
            handshake = Handshake.from_body(body)
            session = self._register(handshake, writer)
            self._send_json(
                session,
                FrameKind.WELCOME,
                # echo the version the node actually speaks, so a v1
                # node is never promised v2 frames
                {"protocol": handshake.protocol, "stream_id": session.id},
            )
            await writer.drain()
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break  # mid-stream disconnect (no BYE)
                kind, body = frame
                if kind is FrameKind.PACKET:
                    await self._submit(session, body)
                elif kind is FrameKind.PARITY:
                    await self._submit(session, body, kind=kind)
                elif kind is FrameKind.BYE:
                    declared = None
                    if body:
                        # a BYE may declare how many windows were sent,
                        # so a trailing loss (no later packet to reveal
                        # the gap) is still accounted
                        declared = decode_json_body(body).get("windows")
                        if declared is not None:
                            try:
                                declared = int(declared)
                            except (TypeError, ValueError) as exc:
                                raise ProtocolError(
                                    f"invalid BYE window count "
                                    f"{declared!r}"
                                ) from exc
                    events = session.recovery.bye(declared)
                    await self._admit_events(session, events)
                    session.result.clean_close = True
                    if session.recovery.holding:
                        # a fec session may still be owed retransmits
                        # (tail gap / outstanding NACKs): keep reading
                        # for a bounded deadline before giving up
                        await self._await_retransmits(session, reader)
                    break
                else:
                    raise ProtocolError(
                        f"unexpected {kind.name} frame from a node"
                    )
        except (ProtocolError, PacketFormatError, DecodingError) as exc:
            if session is not None:
                session.meter.inc("ingest_sessions_errored")
                session.result.error = str(exc)
            else:
                # failed before the handshake: no stream to label
                self.telemetry.inc("ingest_sessions_errored")
            try:
                writer.write(
                    encode_json_frame(FrameKind.ERROR, {"error": str(exc)})
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except (ConnectionError, asyncio.CancelledError):
            pass  # dropped link or gateway shutdown: finalize below
        finally:
            if session is not None:
                # mark before the first await: from here the task is on
                # its stream-end path (waiting for its own drain flush
                # and in-flight solves), and close() must wait for it
                # rather than cancel it — a cancel landing inside
                # _finalize killed the very drain close() was promising
                # and dropped the session's completed results
                current = asyncio.current_task()
                if current is not None:
                    self._draining_tasks.add(current)
                    current.add_done_callback(self._draining_tasks.discard)
                await self._finalize(session)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    def _register(self, handshake: Handshake, writer) -> _Session:
        """Admit a handshaken link: create its session and group."""
        session = _Session(
            self._next_session_id,
            handshake,
            writer,
            self.max_pending,
            self.telemetry,
        )
        self._next_session_id += 1
        self._sessions[session.id] = session
        session.recovery = StreamRecovery(
            session.tracker,
            session.payload,
            fec=handshake.fec,
            nack_budget=self.nack_budget,
            # NACKs ride the existing best-effort ack channel, sent
            # from the read loop — never from the solve path
            on_nack=lambda sequences, s=session: self._send_json(
                s,
                FrameKind.NACK,
                {"sequences": [int(seq) for seq in sequences]},
            ),
        )
        session.meter.inc("ingest_sessions_opened")
        key = solve_key(handshake.config, handshake.precision)
        if key not in self._groups:
            group = _GroupPool(
                key,
                handshake.config,
                handshake.precision,
                label=f"g{len(self._groups)}",
            )
            group.drain_task = asyncio.create_task(self._drain(group))
            self._groups[key] = group
        session.group = self._groups[key]
        return session

    async def _submit(
        self,
        session: _Session,
        body: bytes,
        kind: FrameKind = FrameKind.PACKET,
    ) -> None:
        """Admit one PACKET/PARITY frame through recovery and pool
        whatever windows it releases.

        Awaiting the session quota *here* is the backpressure
        mechanism: while this stream has ``max_pending`` windows in
        flight, its read loop stops consuming frames.  The quota is
        acquired before any per-frame work — CRC parse, sequence
        check, entropy decode — so a node flooding the link cannot
        spend gateway CPU beyond its backpressure bound; a cancelled
        wait (disconnect mid-backpressure) holds no permit and has
        registered nothing, so nothing leaks.  A recovery drain can
        release several windows from one frame; each past the first
        acquires its own permit, preserving the bound.
        """
        # latency is "frame arrival to reconstruction" (protocol.py):
        # stamp before stages 1-2 and before the quota wait, so a
        # window queued behind backpressure reports its true age
        arrived = asyncio.get_running_loop().time()
        await session.quota.acquire()
        if kind is FrameKind.PARITY:
            events = session.recovery.on_parity(body)
        else:
            events = session.recovery.on_packet(body)
        await self._admit_events(
            session, events, arrived=arrived, permit_held=True
        )

    async def _admit_events(
        self,
        session: _Session,
        events,
        arrived: float | None = None,
        permit_held: bool = False,
    ) -> None:
        """Pool every ACCEPTed window recovery released.  The caller's
        already-held permit (if any) covers the first accept; further
        accepts from the same drain each acquire their own."""
        if arrived is None:
            arrived = asyncio.get_running_loop().time()
        for verdict, packet in events:
            if verdict is not FrameVerdict.ACCEPT:
                # discarded frame (corrupt / duplicate / stale / late
                # retransmit / resync skip): accounted in the session
                # tracker, never pooled
                continue
            if permit_held:
                permit_held = False
            else:
                await session.quota.acquire()
            self._pool_window(session, packet, arrived)
        if permit_held:
            session.quota.release()

    def _pool_window(self, session: _Session, packet, arrived: float) -> None:
        """Stages 1-2 on one accepted packet, then pool its column."""
        y_q = session.payload.decode_payload(packet)
        column = session.payload.quantizer.dequantize(y_q).astype(
            session.dtype
        )
        window = _PendingWindow(
            session=session,
            index=session.windows_submitted,
            sequence=packet.sequence,
            column=column,
            fraction=session.handshake.config.lam,
            t_submit=arrived,
        )
        session.windows_submitted += 1
        session.outstanding += 1
        group = session.group
        group.pending.append(window)
        self.telemetry.set_gauge(
            "ingest_queue_depth", len(group.pending), group=group.label
        )
        group.event.set()

    async def _await_retransmits(self, session: _Session, reader) -> None:
        """Post-BYE grace window: keep serving retransmissions (and a
        late parity) until recovery is satisfied or the deadline runs
        out.  Whatever is still missing afterwards is given up in
        :meth:`_finalize` — the same :meth:`StreamRecovery.give_up`
        path an offline replay takes at end of stream."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.nack_deadline_s
        while session.recovery.holding:
            timeout = deadline - loop.time()
            if timeout <= 0:
                return
            try:
                frame = await asyncio.wait_for(read_frame(reader), timeout)
            except (asyncio.TimeoutError, ProtocolError):
                return
            if frame is None:
                return  # node hung up: give up in _finalize
            kind, body = frame
            if kind in (FrameKind.PACKET, FrameKind.PARITY):
                await self._submit(session, body, kind=kind)
            # anything else post-BYE is noise; keep waiting

    async def _finalize(self, session: _Session) -> None:
        """Flush the stream's stragglers, then publish its result."""
        # drain the recovery layer first: a gap still open at link end
        # is given up, its held frames admitted through the plain
        # resync path (idempotent; a no-op for fec-off sessions)
        try:
            await self._admit_events(session, session.recovery.close())
        except (DecodingError, PacketFormatError) as exc:
            if session.result.error is None:
                session.result.error = str(exc)
                session.meter.inc("ingest_sessions_errored")
        session.closed = True
        # wake the drain loop: this session's pending windows are now
        # orphans and must decode as a partial batch (other sessions'
        # batching is untouched — the orphan check is per window)
        session.group.event.set()
        session.check_done()
        await session.all_done.wait()
        self._sessions.pop(session.id, None)
        # concurrent batch solves may have completed out of order:
        # restore stream order so callers see windows as the node sent
        # them, then copy the stream's damage accounting into the
        # result view (the telemetry counters were published live by
        # the session's SequenceTracker meter)
        result = session.result.ordered()
        accounting = session.tracker.accounting
        result.windows_lost = accounting.windows_lost
        result.windows_resynced = accounting.windows_resynced
        result.frames_corrupt = accounting.frames_corrupt
        result.frames_duplicate = accounting.frames_duplicate
        result.windows_recovered_parity = accounting.windows_recovered_parity
        result.windows_recovered_retransmit = (
            accounting.windows_recovered_retransmit
        )
        result.frames_late_retransmit = accounting.frames_late_retransmit
        result.nacks_sent = session.recovery.nacks_sent
        self.results.append(result)
        if session.result.error is None:
            session.meter.inc("ingest_sessions_completed")

    # ------------------------------------------------------------------
    # batching and decode
    # ------------------------------------------------------------------
    def _flush_plan(
        self, group: _GroupPool, now: float
    ) -> tuple[str | None, float]:
        """Decide whether (and why) to flush this group right now.

        Returns ``(reason, next_due)``: a non-``None`` reason means
        flush immediately; otherwise ``next_due`` is the loop time at
        which the earliest trigger fires.  Triggers, in precedence
        order: batch full at the controller's *effective* width,
        flush-on-idle deadline at the effective interval, orphaned
        windows of an ended stream, and (adaptive mode) the
        budget-pressure rule — flush now if waiting longer would,
        per the solve-time model, push the oldest window past the
        real-time budget.
        """
        controller = self.controller
        oldest = group.pending[0]
        if len(group.pending) >= controller.effective_batch:
            return "full", now
        deadline_at = oldest.t_submit + controller.effective_flush_s
        if now >= deadline_at:
            return "deadline", now
        if group.has_orphans():
            return "drain", now
        pressure_at = controller.pressure_due_at(
            oldest.t_submit, len(group.pending)
        )
        if now >= pressure_at:
            return "pressure", now
        return None, min(deadline_at, pressure_at)

    async def _drain(self, group: _GroupPool) -> None:
        """Per-group flush loop: full / deadline / drain / pressure."""
        loop = asyncio.get_running_loop()
        while True:
            if group.pending:
                reason, next_due = self._flush_plan(group, loop.time())
                if reason is not None:
                    await self._dispatch(group, reason)
                    continue
                timeout = max(next_due - loop.time(), 0.0)
            else:
                timeout = None
            try:
                await asyncio.wait_for(group.event.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            group.event.clear()

    async def _dispatch(self, group: _GroupPool, reason: str) -> None:
        """Pop up to one batch of pending columns and solve it."""
        count = min(self.controller.effective_batch, len(group.pending))
        batch = [group.pending.popleft() for _ in range(count)]
        self.telemetry.inc("ingest_flushes", reason=reason)
        self.telemetry.observe(
            "ingest_flush_width",
            count,
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self.telemetry.set_gauge(
            "ingest_queue_depth", len(group.pending), group=group.label
        )
        if len({w.session.id for w in batch}) > 1:
            self.telemetry.inc("ingest_cross_stream_batches")
        self.batch_log.append(
            (group.key, [(w.session.id, w.index) for w in batch], reason)
        )

        task = {
            "config": dataclasses.asdict(group.config),
            "precision": group.precision,
            "block": np.stack([w.column for w in batch], axis=1),
            "fractions": np.asarray(
                [w.fraction for w in batch], dtype=np.float64
            ),
            "batch_size": max(count, 1),
            "max_iterations": group.config.max_iterations,
            "tolerance": group.config.tolerance,
        }
        loop = asyncio.get_running_loop()
        started = loop.time()
        if self.workers >= 2 and self._process_pool is None:
            try:
                self._process_pool = ProcessPoolExecutor(
                    max_workers=self.workers
                )
                self._inflight = asyncio.Semaphore(self.workers)
            except (ImportError, OSError, ValueError) as exc:
                # platform fallback, mirroring FleetDecoder._pool_map:
                # warn once and solve in-process from here on
                warnings.warn(
                    f"ingest gateway falling back to in-process solves: "
                    f"process pool unavailable on this platform ({exc})",
                    RuntimeWarning,
                )
                self.workers = 1
        if self.workers >= 2:
            await self._inflight.acquire()
            if self._closing or self._process_pool is None:
                # close() may have shut the pool down while this batch
                # waited for a permit; submitting then raises outside
                # the route path and silently kills the drain loop
                self._inflight.release()
                self._fail_batch(
                    batch, ConfigurationError("gateway is closed")
                )
                return
            # restamp after the slot wait: the controller's solve-time
            # signal must measure the solve, not pool contention — a
            # queueing delay blamed on the width would shed spuriously
            started = loop.time()
            future = loop.run_in_executor(
                self._process_pool, solve_measurement_block, task  # repro-lint: disable=RL009 — designed hand-off: stages 1-2 ran in the gateway, so the task ships dequantized measurement columns (kilobytes), not operators; workers rebuild A from the config seed
            )
            solve = asyncio.create_task(
                self._route_async(batch, future, group, reason, started)
            )
            self._solve_tasks.add(solve)
            solve.add_done_callback(self._solve_tasks.discard)
        else:
            # the cached BatchedFista workspace is not reentrant:
            # awaiting the solve here serializes this group's batches
            if self._thread_executor is None:
                self._thread_executor = ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix="ingest-solve"
                )
            try:
                out = await loop.run_in_executor(
                    self._thread_executor, solve_measurement_block, task
                )
            except Exception as exc:  # repro-lint: disable=RL005 — drain loop must survive any solver failure; errors are routed to sessions via _fail_batch
                self._fail_batch(batch, exc)
            else:
                self._route(batch, out)
                self._observe_flush(group, reason, len(batch), started)

    async def _route_async(
        self, batch, future, group: _GroupPool, reason: str, started: float
    ) -> None:
        """Await a process-pool solve, then scatter the results."""
        try:
            out = await future
        except Exception as exc:  # repro-lint: disable=RL005 — waiting sessions must unblock on any solve failure; _fail_batch propagates the error
            self._inflight.release()
            self._fail_batch(batch, exc)
            return
        self._inflight.release()
        self._route(batch, out)
        self._observe_flush(group, reason, len(batch), started)

    def _observe_flush(
        self, group: _GroupPool, reason: str, width: int, started: float
    ) -> None:
        """Feed one completed flush back into telemetry + controller."""
        solve_seconds = asyncio.get_running_loop().time() - started
        self.telemetry.observe("ingest_solve_seconds", solve_seconds)
        self.controller.observe_flush(
            width, solve_seconds, len(group.pending), reason
        )
        # the operating point may have moved: wake the drain loop so
        # waiting windows are re-planned against the new width/deadline
        group.event.set()

    def _fail_batch(self, batch: list[_PendingWindow], exc: Exception) -> None:
        """A solve died: unblock its windows so nothing deadlocks.

        Marks every contributing session errored (reported to the node
        in an ERROR frame), releases the backpressure quota and the
        outstanding counts — a wedged solve must never leave
        :meth:`_finalize` (and therefore :meth:`close`) waiting
        forever.  The drain loop keeps serving other batches.
        """
        message = f"decode failed: {exc}"
        warnings.warn(
            f"ingest gateway dropped a batch of {len(batch)} window(s): "
            f"{message}",
            RuntimeWarning,
        )
        for window in batch:
            session = window.session
            if session.result.error is None:
                session.result.error = message
                session.meter.inc("ingest_sessions_errored")
                self._send_json(
                    session, FrameKind.ERROR, {"error": message}
                )
            session.quota.release()
            session.outstanding -= 1
            session.check_done()

    def _route(self, batch: list[_PendingWindow], out: dict) -> None:
        """Scatter one solved block back to its streams, in order."""
        t_done = asyncio.get_running_loop().time()
        # a process-pool worker records its own delta snapshot and
        # ships it home with the results; merging here is what keeps
        # the plane whole across the pool boundary
        worker_delta = out.get("telemetry")
        if worker_delta is not None:
            self.telemetry.absorb(worker_delta)
        for column, window in enumerate(batch):
            session = window.session
            samples = out["signals"][:, column] + session.dc_offset
            iterations = int(out["iterations"][column])
            seconds = float(out["seconds"][column])
            latency = t_done - window.t_submit
            result = session.result
            result.indices.append(window.index)
            result.sequences.append(window.sequence)
            result.iterations.append(iterations)
            result.decode_seconds.append(seconds)
            result.latencies_s.append(latency)
            result.samples_adu.append(samples)
            session.meter.inc("ingest_windows_decoded")
            self.telemetry.observe(
                "ingest_window_latency_seconds", latency
            )
            self.controller.record_latency(latency)
            accounting = session.tracker.accounting
            self._send_json(
                session,
                FrameKind.DECODED,
                {
                    "sequence": window.sequence,
                    "iterations": iterations,
                    "latency_ms": 1000.0 * latency,
                    # running damage accounting, so a node (and the
                    # serve --simulate table) sees channel losses
                    # without a side channel
                    "windows_lost": accounting.windows_lost,
                    "windows_resynced": accounting.windows_resynced,
                    "frames_corrupt": accounting.frames_corrupt,
                    "frames_duplicate": accounting.frames_duplicate,
                    "windows_recovered": accounting.windows_recovered,
                },
            )
            session.quota.release()
            session.outstanding -= 1
            session.check_done()

    #: per-link cap on bytes buffered for unread gateway->node frames;
    #: past this, acks are dropped rather than queued without bound
    ACK_BUFFER_LIMIT = 1 << 20

    def _send_json(
        self, session: _Session, kind: FrameKind, payload: dict
    ) -> None:
        """Best-effort frame to a node; dropped links are tolerated.

        Acks are advisory: a node that streams packets but never reads
        its socket must not grow the gateway's send buffer without
        bound, so once a link's transport holds
        :data:`ACK_BUFFER_LIMIT` unread bytes further frames to it are
        dropped (decoding and results are unaffected).
        """
        writer = session.writer
        try:
            transport = getattr(writer, "transport", None)
            if (
                transport is not None
                and transport.get_write_buffer_size() > self.ACK_BUFFER_LIMIT
            ):
                return
            writer.write(encode_json_frame(kind, payload))
        except (ConnectionError, RuntimeError):
            pass


def gateway_stats_from(telemetry: MetricsRegistry) -> GatewayStats:
    """Materialize the :class:`GatewayStats` read model from any
    registry holding the ingest metric families — a live gateway's
    own registry, or a federation front door's roll-up of its
    workers' snapshot deltas (the counters merge associatively, so
    the aggregate view is exact either way)."""
    snap = telemetry.snapshot()

    def total(name: str) -> int:
        return int(snap.counter_total(name))

    def flushes(reason: str) -> int:
        return int(snap.counter_value("ingest_flushes", reason=reason))

    latency = snap.histogram_total("ingest_window_latency_seconds")
    return GatewayStats(
        sessions_opened=total("ingest_sessions_opened"),
        sessions_completed=total("ingest_sessions_completed"),
        sessions_errored=total("ingest_sessions_errored"),
        streams=len(snap.label_values("ingest_sessions_opened", "stream")),
        windows_decoded=total("ingest_windows_decoded"),
        batches=total("ingest_flushes"),
        flushes_full=flushes("full"),
        flushes_deadline=flushes("deadline"),
        flushes_drain=flushes("drain"),
        flushes_pressure=flushes("pressure"),
        cross_stream_batches=total("ingest_cross_stream_batches"),
        windows_lost=total("ingest_windows_lost"),
        windows_resynced=total("ingest_windows_resynced"),
        frames_corrupt=total("ingest_frames_corrupt"),
        frames_duplicate=total("ingest_frames_duplicate"),
        windows_recovered_parity=total("ingest_windows_recovered_parity"),
        windows_recovered_retransmit=total(
            "ingest_windows_recovered_retransmit"
        ),
        frames_late_retransmit=total("ingest_frames_late_retransmit"),
        nacks_sent=total("ingest_nacks_sent"),
        max_latency_s=(
            latency.max if latency is not None and latency.total else None
        ),
    )


async def serve_gateway(
    gateway: IngestGateway, host: str = "127.0.0.1", port: int = 9765
) -> None:
    """Run a gateway's TCP listener until cancelled."""
    await gateway.start(host, port)
    try:
        await asyncio.Event().wait()  # serve until cancelled
    finally:
        await gateway.close()


__all__ = [
    "DEFAULT_FLUSH_MS",
    "GatewayStats",
    "IngestGateway",
    "IngestStreamResult",
    "gateway_stats_from",
    "merge_stream_results",
    "serve_gateway",
]
