"""Length-prefixed wire protocol of the live ingestion gateway.

A node link is a single duplex byte stream (TCP, or the in-process
loopback used by tests) carrying *frames*::

    frame := u32be body_length | u8 kind | body[body_length - 1]

The length prefix counts the kind byte plus the body, so a receiver
always knows exactly how many bytes to wait for; a stream that ends
mid-frame is a *truncated frame* and raises
:class:`~repro.errors.ProtocolError`.  A stream that ends cleanly on a
frame boundary is an orderly EOF (``read_frame`` returns ``None``).

Node -> gateway frames
======================

``HELLO``
    First frame on every link: a JSON :class:`Handshake` carrying the
    protocol version, the stream identity (record name, lead/channel),
    the full scalar codec configuration (the
    :class:`~repro.config.SystemConfig` fields — including the sensing
    seed the gateway needs to rebuild ``Phi``) and the node's trained
    Huffman codebook (canonical lengths only).  An unsupported
    ``protocol`` version or malformed config is answered with an
    ``ERROR`` frame and the link is closed.
``PACKET``
    One encoded 2-second window, as the exact on-air bytes of
    :meth:`~repro.core.packets.EncodedPacket.to_bytes` (sync byte,
    header, payload, CRC-16).  The gateway CRC-checks and decodes it
    incrementally.  The wire is treated as *lossy*: a stream's first
    window is sequence 0 and sequences increase by one per window
    (mod 2^16), so the gateway detects drops, reorders and duplicates
    from the sequence alone (see :mod:`repro.ingest.channel`); a
    corrupt-CRC frame is counted and discarded, not a link error.
``PARITY``
    Tier-1 recovery (protocol v2, nodes with ``fec`` enabled): one
    XOR-parity frame per keyframe epoch, folded over the epoch's
    packet bodies padded to the longest (see :mod:`repro.coding.fec`).
    Sent after the epoch's last packet, before the next keyframe (and
    once more before ``BYE`` for a partial final epoch), so the
    gateway can reconstruct any single lost packet of the epoch
    locally — zero round trips.
``BYE``
    Orderly end of stream: the gateway flushes the stream's pending
    windows, finishes decoding, and closes the link.  The body may be
    empty, or a JSON object ``{"windows": N}`` declaring how many
    windows the node sent — this lets the gateway account a *trailing*
    loss, which no later packet would otherwise reveal.  A v2 node
    keeps the link open after ``BYE`` and keeps answering ``NACK``
    frames until the gateway closes, so even a trailing loss can be
    retransmitted.

Gateway -> node frames
======================

``WELCOME``
    Handshake accepted; JSON body echoes the protocol version and the
    gateway-assigned stream id.
``DECODED``
    One window left the solver: JSON with the packet ``sequence``,
    FISTA ``iterations``, the gateway-side ``latency_ms`` from frame
    arrival to reconstruction, and the session's running
    lossy-channel accounting (``windows_lost``, ``windows_resynced``,
    ``frames_corrupt``, ``frames_duplicate``).  Lets a node (or the
    bench harness) observe end-to-end decode latency and channel
    damage without a side channel.
``NACK``
    Tier-2 recovery (protocol v2): JSON ``{"sequences": [...]}``
    naming packet sequences the gateway still needs — sent over the
    existing ack channel when a gap exceeds what parity can cover
    (>= 2 losses in one epoch, or a lost packet whose parity is also
    gone).  The node retransmits whichever of them its retransmit
    ring still holds.  Never sent to a v1 node.
``ERROR``
    JSON ``{"error": reason}``; the gateway closes the link after
    sending it.

Framing deliberately carries no per-frame CRC of its own: ``PACKET``
bodies are already CRC-16-protected by the on-air format, and the
transport (TCP) is reliable.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from dataclasses import dataclass
from enum import IntEnum
from typing import Any

from ..coding import Codebook
from ..config import SystemConfig
from ..errors import CodebookError, ConfigurationError, ProtocolError

#: Protocol revision spoken by this module.  v2 adds the two-tier
#: recovery layer (``PARITY`` epochs + ``NACK`` retransmission); codec
#: semantics (packet format, codebook serialization, config fields)
#: are unchanged from v1, so a gateway gracefully downgrades a v1
#: handshake to the plain keyframe-resync path instead of refusing it.
PROTOCOL_VERSION = 2

#: handshake versions the gateway accepts; anything else is refused
#: with an ``ERROR`` frame (codec semantics are pinned per revision)
SUPPORTED_VERSIONS = (1, 2)

#: Upper bound on one frame's length prefix.  A 2-second window at the
#: paper's operating point is ~1 kB on the wire and a handshake is a
#: few kB of JSON; anything near a megabyte is a corrupt or hostile
#: length prefix and is rejected before allocation.
MAX_FRAME_BYTES = 1 << 20

_LENGTH_BYTES = 4


class FrameKind(IntEnum):
    """Frame type tags (one byte on the wire)."""

    HELLO = 1
    PACKET = 2
    BYE = 3
    PARITY = 4
    WELCOME = 10
    DECODED = 11
    ERROR = 12
    NACK = 13


def encode_frame(kind: FrameKind, body: bytes = b"") -> bytes:
    """Serialize one frame: length prefix, kind byte, body."""
    length = 1 + len(body)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return length.to_bytes(_LENGTH_BYTES, "big") + bytes([int(kind)]) + body


def encode_json_frame(kind: FrameKind, payload: dict[str, Any]) -> bytes:
    """Serialize a frame whose body is a JSON object."""
    return encode_frame(kind, json.dumps(payload).encode("utf-8"))


def decode_json_body(body: bytes) -> dict[str, Any]:
    """Parse a JSON frame body into a dict, with protocol-level errors."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"JSON frame body must be an object, got {type(payload).__name__}"
        )
    return payload


async def read_frame(
    reader: asyncio.StreamReader,
) -> tuple[FrameKind, bytes] | None:
    """Read one frame; ``None`` on orderly EOF at a frame boundary.

    Raises :class:`~repro.errors.ProtocolError` on a truncated frame
    (EOF inside the length prefix or body), an oversized length prefix,
    an empty frame, or an unknown frame kind.
    """
    try:
        prefix = await reader.readexactly(_LENGTH_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError(
            f"truncated frame: EOF after {len(exc.partial)} of "
            f"{_LENGTH_BYTES} length-prefix bytes"
        ) from exc
    length = int.from_bytes(prefix, "big")
    if length < 1:
        raise ProtocolError("empty frame: length prefix must be >= 1")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"truncated frame: EOF after {len(exc.partial)} of "
            f"{length} body bytes"
        ) from exc
    try:
        kind = FrameKind(payload[0])
    except ValueError as exc:
        raise ProtocolError(f"unknown frame kind {payload[0]}") from exc
    return kind, payload[1:]


@dataclass(frozen=True)
class Handshake:
    """The ``HELLO`` payload: everything the gateway needs to decode.

    Attributes
    ----------
    record:
        Name of the record the node is streaming (stream identity).
    channel:
        ECG lead index within the record (stream identity).
    config:
        The node's full codec configuration.  Carries the sensing seed
        and matrix shape (``n``, ``m``, ``d``) the gateway needs to
        rebuild ``A = Phi Psi^-1``, the wavelet basis, and the solver
        stopping parameters that define the stream's operator group.
    codebook:
        The node's trained Huffman codebook, or ``None`` for the
        default (untrained) codebook.  Serialized as canonical code
        lengths — the same kilobyte-scale table the mote's flash holds.
    precision:
        Decode precision the node requests (``"float64"``/``"float32"``).
    fec:
        Whether the node emits per-epoch ``PARITY`` frames and answers
        ``NACK`` retransmission requests (protocol v2 only).  The
        gateway engages its hold-and-recover admission path only for
        sessions that declare this — a v1 (or fec-off v2) stream runs
        the plain keyframe-resync path, bit-identically to before.
    protocol:
        The protocol revision this handshake speaks.  Defaults to the
        current :data:`PROTOCOL_VERSION`; :meth:`from_body` preserves
        the version a v1 node actually sent so the gateway knows not
        to send it v2 frames.
    resume:
        Sequence number of the first ``PACKET`` this session will
        carry (mod 2^16).  ``0`` — the default, and the only value a
        fresh stream sends — leaves the v1 wire byte-identical.  A
        node reconnecting mid-stream (after a connection reset or a
        federation gateway failover) sets it to the next sequence it
        will transmit, so the receiving gateway baselines its
        sequence tracker there instead of charging the whole prefix
        ``0..resume-1`` as lost.  The windows themselves still resync
        at the next keyframe (or replay from the retransmit ring when
        fec is on) — ``resume`` only fixes the *accounting*.
    resumed:
        Whether this session *continues* a previous session's sequence
        space (a reconnect), as opposed to starting a fresh stream.
        ``resume > 0`` implies it, but the flag matters exactly when
        ``resume == 0``: an fec node replaying from its pinned
        keyframe 0 after an early failover declares ``resumed`` with
        ``resume 0``, which is indistinguishable on the sequence
        alone from a node restarting from scratch.  Downstream,
        :func:`~repro.ingest.gateway.merge_stream_results` uses it to
        decide whether equal sequence numbers across two sessions are
        replays of the same window (deduplicate) or different windows
        (keep both).  Absent on the wire for fresh streams, so the
        fresh-stream bytes stay identical.
    """

    record: str
    channel: int
    config: SystemConfig
    codebook: Codebook | None = None
    precision: str = "float64"
    fec: bool = False
    protocol: int = PROTOCOL_VERSION
    resume: int = 0
    resumed: bool = False

    def to_payload(self) -> dict[str, Any]:
        """Build the JSON-safe ``HELLO`` body (includes the version)."""
        payload = {
            "protocol": int(self.protocol),
            "record": self.record,
            "channel": int(self.channel),
            "config": dataclasses.asdict(self.config),
            "codebook": (
                None
                if self.codebook is None
                else json.loads(self.codebook.to_json())
            ),
            "precision": self.precision,
        }
        if self.protocol >= 2:
            payload["fec"] = bool(self.fec)
        if self.resume:
            payload["resume"] = int(self.resume)
        if self.resumed:
            payload["resumed"] = True
        return payload

    def to_frame(self) -> bytes:
        """Serialize the complete ``HELLO`` frame."""
        return encode_json_frame(FrameKind.HELLO, self.to_payload())

    @classmethod
    def from_body(cls, body: bytes) -> "Handshake":
        """Parse and validate a ``HELLO`` body.

        Raises :class:`~repro.errors.ProtocolError` on an unsupported
        protocol version, a malformed or invalid codec config, a bad
        codebook table, or a bad precision — the gateway reports the
        message back to the node in an ``ERROR`` frame.
        """
        payload = decode_json_body(body)
        version = payload.get("protocol")
        if version not in SUPPORTED_VERSIONS:
            raise ProtocolError(
                f"unsupported protocol version {version!r} "
                f"(gateway speaks {PROTOCOL_VERSION}, accepts "
                f"{list(SUPPORTED_VERSIONS)})"
            )
        try:
            record = str(payload["record"])
            channel = int(payload["channel"])
            config = SystemConfig(**payload["config"])
        except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
            raise ProtocolError(f"invalid handshake config: {exc}") from exc
        codebook_payload = payload.get("codebook")
        codebook = None
        if codebook_payload is not None:
            try:
                codebook = Codebook.from_json(json.dumps(codebook_payload))
            except CodebookError as exc:
                raise ProtocolError(
                    f"invalid handshake codebook: {exc}"
                ) from exc
        precision = payload.get("precision", "float64")
        if precision not in ("float64", "float32", "hybrid"):
            raise ProtocolError(
                f"invalid handshake precision {precision!r}"
            )
        # graceful downgrade: a v1 node knows nothing of PARITY/NACK,
        # so fec is forced off regardless of any stray field
        fec = bool(payload.get("fec", False)) if version >= 2 else False
        try:
            resume = int(payload.get("resume", 0))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid handshake resume: {exc}") from exc
        if not 0 <= resume < 1 << 16:
            raise ProtocolError(
                f"handshake resume {resume} outside the 16-bit "
                "sequence space"
            )
        return cls(
            record=record,
            channel=channel,
            config=config,
            codebook=codebook,
            precision=precision,
            fec=fec,
            protocol=int(version),
            resume=resume,
            # a declared resume point always means continuation; the
            # explicit flag covers the resume == 0 replay case
            resumed=bool(payload.get("resumed", False)) or resume > 0,
        )
