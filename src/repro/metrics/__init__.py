"""Evaluation metrics (paper Section III)."""

from .quality import (
    compression_ratio,
    prd,
    prdn,
    snr_db,
    snr_from_prd,
    rmse,
    quality_band,
    QUALITY_BANDS,
)
from .stats import SweepPoint, aggregate_points, format_series
from .diagnostic import DiagnosticReport, HrvSummary, diagnostic_report, hrv_summary

__all__ = [
    "DiagnosticReport",
    "HrvSummary",
    "diagnostic_report",
    "hrv_summary",
    "compression_ratio",
    "prd",
    "prdn",
    "snr_db",
    "snr_from_prd",
    "rmse",
    "quality_band",
    "QUALITY_BANDS",
    "SweepPoint",
    "aggregate_points",
    "format_series",
]
