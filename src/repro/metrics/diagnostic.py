"""Diagnostic-quality metrics: does the reconstruction stay clinical?

PRD is a waveform metric; cardiologists care about *features*.  These
metrics compare original and reconstructed leads at the feature level:

- **R-peak timing**: detection match rate and RMS timing jitter —
  arrhythmia analysis depends on beat locations;
- **HRV preservation**: SDNN and RMSSD of the RR series before/after —
  the statistics long-term monitoring exists to measure;
- **R amplitude error** — ST/amplitude measurements need the peaks.

Used by the integration suite and the Holter example to show the
paper's operating point preserves clinical content, not just PRD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ecg.qrs import detect_qrs
from ..utils import check_positive


@dataclass(frozen=True)
class HrvSummary:
    """Standard time-domain heart-rate-variability statistics (ms)."""

    mean_rr_ms: float
    sdnn_ms: float
    rmssd_ms: float


def hrv_summary(r_samples: np.ndarray, fs_hz: float) -> HrvSummary:
    """SDNN/RMSSD of an R-peak sample-index series."""
    check_positive(fs_hz, "fs_hz")
    peaks = np.asarray(r_samples, dtype=np.float64)
    if len(peaks) < 3:
        raise ValueError("need at least 3 beats for HRV statistics")
    rr_ms = np.diff(peaks) / fs_hz * 1000.0
    return HrvSummary(
        mean_rr_ms=float(np.mean(rr_ms)),
        sdnn_ms=float(np.std(rr_ms, ddof=1)),
        rmssd_ms=float(np.sqrt(np.mean(np.diff(rr_ms) ** 2))),
    )


@dataclass(frozen=True)
class DiagnosticReport:
    """Feature-level comparison of original vs reconstructed lead."""

    beat_match_rate: float
    timing_jitter_ms: float
    r_amplitude_error_percent: float
    original_hrv: HrvSummary
    reconstructed_hrv: HrvSummary

    @property
    def sdnn_error_percent(self) -> float:
        """Relative SDNN deviation introduced by compression."""
        if self.original_hrv.sdnn_ms == 0:
            return 0.0
        return (
            abs(self.reconstructed_hrv.sdnn_ms - self.original_hrv.sdnn_ms)
            / self.original_hrv.sdnn_ms
            * 100.0
        )

    def is_diagnostic(
        self,
        min_match: float = 0.95,
        max_jitter_ms: float = 20.0,
        max_amplitude_error: float = 15.0,
    ) -> bool:
        """A conservative pass/fail for clinical usability."""
        return (
            self.beat_match_rate >= min_match
            and self.timing_jitter_ms <= max_jitter_ms
            and self.r_amplitude_error_percent <= max_amplitude_error
        )


def diagnostic_report(
    original_mv: np.ndarray,
    reconstructed_mv: np.ndarray,
    fs_hz: float,
    tolerance_s: float = 0.075,
) -> DiagnosticReport:
    """Compute the full feature-level comparison of two leads."""
    original_mv = np.asarray(original_mv, dtype=np.float64)
    reconstructed_mv = np.asarray(reconstructed_mv, dtype=np.float64)
    if original_mv.shape != reconstructed_mv.shape:
        raise ValueError("signals must have identical shape")
    check_positive(fs_hz, "fs_hz")

    reference = detect_qrs(original_mv, fs_hz)
    detected = detect_qrs(reconstructed_mv, fs_hz)
    if len(reference) < 3:
        raise ValueError("too few beats in the original signal")

    tolerance = tolerance_s * fs_hz
    matches: list[tuple[int, int]] = []
    if len(detected):
        for r in reference:
            nearest = detected[np.argmin(np.abs(detected - r))]
            if abs(int(nearest) - int(r)) <= tolerance:
                matches.append((int(r), int(nearest)))
    match_rate = len(matches) / len(reference)

    if matches:
        jitter_samples = np.array([m[1] - m[0] for m in matches], dtype=np.float64)
        jitter_ms = float(np.sqrt(np.mean(jitter_samples**2)) / fs_hz * 1000.0)
        amp_orig = np.array([original_mv[r] for r, _ in matches])
        amp_reco = np.array([reconstructed_mv[d] for _, d in matches])
        scale = float(np.mean(np.abs(amp_orig)))
        amplitude_error = (
            float(np.mean(np.abs(amp_reco - amp_orig))) / scale * 100.0
            if scale > 0
            else 0.0
        )
    else:
        jitter_ms = float("inf")
        amplitude_error = float("inf")

    original_hrv = hrv_summary(reference, fs_hz)
    reconstructed_hrv = (
        hrv_summary(detected, fs_hz)
        if len(detected) >= 3
        else HrvSummary(0.0, 0.0, 0.0)
    )
    return DiagnosticReport(
        beat_match_rate=match_rate,
        timing_jitter_ms=jitter_ms,
        r_amplitude_error_percent=amplitude_error,
        original_hrv=original_hrv,
        reconstructed_hrv=reconstructed_hrv,
    )
