"""Compression and diagnostic-quality metrics.

The paper (Section III) uses two metrics:

- **CR** — ``(b_orig - b_comp) / b_orig * 100`` (percent of bits saved);
- **PRD** — ``||x - x~||_2 / ||x||_2 * 100`` with the associated
  ``SNR = -20 log10(0.01 PRD)``.

PRD is computed on baseline-centered signals (the MIT-BIH adu offset of
1024 carries no information and would otherwise mask the error), which
is the convention of the ECG-compression literature the paper follows.
Diagnostic-quality bands follow Zigel et al. (2000).
"""

from __future__ import annotations

import math

import numpy as np

from ..utils import check_same_length


def compression_ratio(original_bits: int, compressed_bits: int) -> float:
    """Paper Eq. (7): percent of bits saved by compression."""
    if original_bits <= 0:
        raise ValueError(f"original_bits must be positive, got {original_bits}")
    if compressed_bits < 0:
        raise ValueError(
            f"compressed_bits must be >= 0, got {compressed_bits}"
        )
    return (original_bits - compressed_bits) / original_bits * 100.0


def prd(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Percentage root-mean-square difference."""
    x = np.asarray(original, dtype=np.float64)
    r = np.asarray(reconstructed, dtype=np.float64)
    check_same_length(x, r, "original/reconstructed")
    denominator = float(np.linalg.norm(x))
    if denominator == 0:
        raise ValueError("original signal has zero norm; PRD undefined")
    return float(np.linalg.norm(x - r)) / denominator * 100.0


def prdn(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean-normalized PRD (both signals centered on the original's mean)."""
    x = np.asarray(original, dtype=np.float64)
    r = np.asarray(reconstructed, dtype=np.float64)
    check_same_length(x, r, "original/reconstructed")
    mean = float(np.mean(x))
    centered = x - mean
    denominator = float(np.linalg.norm(centered))
    if denominator == 0:
        raise ValueError("original signal is constant; PRDN undefined")
    return float(np.linalg.norm(x - r)) / denominator * 100.0


def snr_from_prd(prd_percent: float) -> float:
    """Paper Eq. (8): ``SNR = -20 log10(0.01 PRD)`` in dB."""
    if prd_percent <= 0:
        raise ValueError(f"prd_percent must be positive, got {prd_percent}")
    return -20.0 * math.log10(0.01 * prd_percent)


def snr_db(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Output SNR in dB, computed through the PRD."""
    return snr_from_prd(prd(original, reconstructed))


def rmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error in the signals' own units."""
    x = np.asarray(original, dtype=np.float64)
    r = np.asarray(reconstructed, dtype=np.float64)
    check_same_length(x, r, "original/reconstructed")
    return float(np.sqrt(np.mean((x - r) ** 2)))


#: Diagnostic-quality bands over PRDN (Zigel et al. 2000): the "VG" and
#: "G" marks on the paper's Figure 6 axis.
QUALITY_BANDS: tuple[tuple[float, str], ...] = (
    (2.0, "very good"),
    (9.0, "good"),
    (math.inf, "not acceptable"),
)


def quality_band(prdn_percent: float) -> str:
    """Classify a PRDN value into its diagnostic-quality band."""
    if prdn_percent < 0:
        raise ValueError(f"prdn_percent must be >= 0, got {prdn_percent}")
    for threshold, label in QUALITY_BANDS:
        if prdn_percent <= threshold:
            return label
    raise AssertionError("unreachable: bands end at infinity")
