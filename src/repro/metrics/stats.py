"""Aggregation helpers for evaluation sweeps.

Every sweep in :mod:`repro.experiments` produces per-packet
:class:`SweepPoint` rows; these helpers average them "over all data"
(the paper's phrase for its Figure 2/6/7 y-axes) and render fixed-width
text tables for EXPERIMENTS.md and the benchmark logs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, fields

import numpy as np


@dataclass(frozen=True)
class SweepPoint:
    """One (record, packet) observation at a given operating point."""

    record: str
    cr_percent: float
    prd_percent: float
    snr_db: float
    iterations: int
    decode_seconds: float = 0.0


def aggregate_points(points: Sequence[SweepPoint]) -> dict[str, float]:
    """Average a set of sweep points (the per-CR figure values)."""
    if not points:
        raise ValueError("cannot aggregate an empty point set")
    return {
        "cr_percent": float(np.mean([p.cr_percent for p in points])),
        "prd_percent": float(np.mean([p.prd_percent for p in points])),
        "snr_db": float(np.mean([p.snr_db for p in points])),
        "iterations": float(np.mean([p.iterations for p in points])),
        "decode_seconds": float(np.mean([p.decode_seconds for p in points])),
        "count": float(len(points)),
    }


def format_series(
    rows: Iterable[dict[str, float]],
    columns: Sequence[str],
    header: str | None = None,
    precision: int = 3,
) -> str:
    """Render dict rows as a fixed-width text table."""
    rows = list(rows)
    widths = {c: max(len(c), precision + 6) for c in columns}
    lines = []
    if header:
        lines.append(header)
    lines.append("  ".join(c.rjust(widths[c]) for c in columns))
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, float("nan"))
            if isinstance(value, float):
                cells.append(f"{value:.{precision}f}".rjust(widths[c]))
            else:
                cells.append(str(value).rjust(widths[c]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def point_fields() -> list[str]:
    """Field names of :class:`SweepPoint` (stable CSV header order)."""
    return [f.name for f in fields(SweepPoint)]
