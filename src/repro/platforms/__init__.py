"""Embedded-platform substrate: cycle-level cost and energy models.

The paper's real-time claims are statements about two processors:

- the Shimmer mote's TI **MSP430F1611** (16-bit, 8 MHz, no FPU,
  hardware multiplier, 10 kB RAM / 48 kB flash) running the encoder;
- the iPhone 3GS's ARM **Cortex-A8** (600 MHz, VFPLite scalar floating
  point, NEON 128-bit SIMD) running the FISTA decoder.

Neither processor is available here, so both are modeled analytically:
every kernel of the encoder/decoder is described by explicit operation
counts (:mod:`repro.platforms.kernels`), and per-platform cycle tables
translate counts into time and energy.  Each model carries exactly one
documented calibration factor pinned to a *published* anchor number
(82 ms node-side sensing; the 800/2000-iteration real-time budgets),
after which every other quantity — CPU loads, the 2.43x NEON speedup,
the 12.9 % lifetime extension — must *follow* from the model.
"""

from .kernels import KernelCounts, KernelReport
from .msp430 import Msp430Model, SensingApproach
from .memory import MemoryMap, MemoryRegion, encoder_memory_map
from .cortexa8 import CortexA8Model, DecodePipeline
from .neon import (
    LeftoverStrategy,
    leftover_strategy_cycles,
    if_conversion_cycles,
    loop_nest_instruction_counts,
    simulate_leftover_strategies,
)
from .bluetooth import BluetoothLink
from .battery import Battery
from .shimmer import ShimmerNode, NodePowerBreakdown
from .iphone import IPhoneModel

__all__ = [
    "KernelCounts",
    "KernelReport",
    "Msp430Model",
    "SensingApproach",
    "MemoryMap",
    "MemoryRegion",
    "encoder_memory_map",
    "CortexA8Model",
    "DecodePipeline",
    "LeftoverStrategy",
    "leftover_strategy_cycles",
    "if_conversion_cycles",
    "loop_nest_instruction_counts",
    "simulate_leftover_strategies",
    "BluetoothLink",
    "Battery",
    "ShimmerNode",
    "NodePowerBreakdown",
    "IPhoneModel",
]
