"""Battery and node-lifetime model.

The Shimmer is powered by a rechargeable Li-polymer battery (the
standard fit is 280 mAh at 3.7 V).  Lifetime is energy divided by
average power; the paper's "12.9 % extension in the node lifetime"
compares average node power with CS compression against streaming the
uncompressed signal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlatformModelError


@dataclass(frozen=True)
class Battery:
    """An ideal-capacity battery (no rate effects or self-discharge)."""

    capacity_mah: float = 280.0
    voltage_v: float = 3.7

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise PlatformModelError(
                f"capacity_mah must be positive, got {self.capacity_mah}"
            )
        if self.voltage_v <= 0:
            raise PlatformModelError(
                f"voltage_v must be positive, got {self.voltage_v}"
            )

    @property
    def energy_j(self) -> float:
        """Total stored energy in joules."""
        return self.capacity_mah * 3.6 * self.voltage_v

    def lifetime_hours(self, average_power_mw: float) -> float:
        """Runtime in hours at a constant average power draw."""
        if average_power_mw <= 0:
            raise PlatformModelError(
                f"average_power_mw must be positive, got {average_power_mw}"
            )
        return self.energy_j / (average_power_mw / 1000.0) / 3600.0


def lifetime_extension_percent(
    baseline_power_mw: float, improved_power_mw: float
) -> float:
    """Percent lifetime gain when power drops from baseline to improved."""
    if baseline_power_mw <= 0 or improved_power_mw <= 0:
        raise PlatformModelError("powers must be positive")
    return (baseline_power_mw / improved_power_mw - 1.0) * 100.0
