"""Bluetooth link model of the Shimmer -> coordinator hop.

The Shimmer carries a class-2 Bluetooth module driven over a UART.  The
model works at the link-budget level: an effective application
throughput, a transmit power draw, and an idle (connected/sniff) draw.
Airtime per packet and average radio power then follow from the packet
sizes the encoder actually produces — which is how embedded ECG
compression converts saved bits into saved energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlatformModelError


@dataclass(frozen=True)
class BluetoothLink:
    """Effective-throughput Bluetooth serial link."""

    #: effective application throughput; BT 2.0 SPP with small packets
    #: delivers well below the 115.2 kbps UART ceiling
    throughput_bps: float = 60_000.0
    #: radio + module power while transmitting
    tx_power_mw: float = 90.0
    #: module power while connected but idle (sniff mode)
    idle_power_mw: float = 3.0

    def __post_init__(self) -> None:
        if self.throughput_bps <= 0:
            raise PlatformModelError(
                f"throughput_bps must be positive, got {self.throughput_bps}"
            )
        if self.tx_power_mw < 0 or self.idle_power_mw < 0:
            raise PlatformModelError("powers must be non-negative")

    # ------------------------------------------------------------------
    def airtime_s(self, bits: float) -> float:
        """Transmit time for a payload of ``bits``."""
        if bits < 0:
            raise PlatformModelError(f"bits must be >= 0, got {bits}")
        return bits / self.throughput_bps

    def tx_energy_mj(self, bits: float) -> float:
        """Energy above idle spent transmitting ``bits``, in millijoules."""
        return self.airtime_s(bits) * (self.tx_power_mw - self.idle_power_mw)

    def average_power_mw(self, bits_per_second: float) -> float:
        """Average radio power for a sustained bit rate (idle + TX duty)."""
        if bits_per_second < 0:
            raise PlatformModelError(
                f"bits_per_second must be >= 0, got {bits_per_second}"
            )
        duty = min(1.0, bits_per_second / self.throughput_bps)
        return self.idle_power_mw + duty * (self.tx_power_mw - self.idle_power_mw)

    def fits_realtime(self, bits_per_packet: float, packet_period_s: float) -> bool:
        """Whether a packet transmits within its production period."""
        if packet_period_s <= 0:
            raise PlatformModelError(
                f"packet_period_s must be positive, got {packet_period_s}"
            )
        return self.airtime_s(bits_per_packet) < packet_period_s
