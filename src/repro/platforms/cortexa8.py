"""ARM Cortex-A8 (iPhone 3GS) decoder timing model.

Two build variants are priced, matching the paper's Section V:

- **scalar VFP** — the unoptimized build.  The Cortex-A8's "VFPLite"
  unit is not pipelined for single-precision arithmetic: a
  multiply-accumulate costs 18-21 cycles (the paper's own numbers; we
  use 20) and other float ops ~10 cycles;
- **NEON-optimized** — the build with the paper's Section IV-B
  transformations (outer-loop vectorization of the filter banks,
  if-converted soft threshold, padded/lane-handled leftovers).  NEON
  retires one 4-lane ``vmlaq.f32`` every 2 cycles — "two
  multiply-accumulate in 1 cycle".

Irregular sparse-matrix gathers cannot be vectorized (no NEON gather on
ARMv7): they are priced with per-lane loads on both pipelines, which is
exactly why the measured end-to-end speedup is ~2.4x and not ~10x.

Each pipeline carries one documented stall/memory overhead factor,
calibrated so the real-time iteration budgets match the paper's
published 800 (scalar) and 2000 (NEON) iterations within the 1-second
decode window.  The 2.43x speedup is then a *derived* quantity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import SystemConfig
from ..errors import PlatformModelError
from .kernels import (
    KernelCounts,
    dwt_counts,
    huffman_decode_counts,
    idwt_counts,
    momentum_counts,
    packet_reconstruction_counts,
    prox_counts,
    sparse_matvec_float_counts,
)
from .neon import VECTOR_WIDTH, NeonCosts, if_conversion_cycles


class DecodePipeline(enum.Enum):
    """The two decoder builds compared in the paper."""

    SCALAR_VFP = "scalar-vfp"
    NEON_OPTIMIZED = "neon-optimized"


class AccessPattern(enum.Enum):
    """How a kernel touches memory (decides NEON efficiency)."""

    STREAMING = "streaming"  # unit-stride: fully vectorizable
    GATHER = "gather"  # data-dependent indices: lane loads only
    SERIAL = "serial"  # bit-serial integer work: no NEON benefit


@dataclass(frozen=True)
class CortexA8Model:
    """Cycle model of the iPhone 3GS application processor."""

    clock_hz: float = 600e6
    costs: NeonCosts = NeonCosts()
    #: integer-op cycles (same ALUs serve both builds)
    cycles_int_op: float = 1.0
    cycles_branch: float = 6.0
    cycles_table_lookup: float = 3.0
    cycles_bit_op: float = 3.0
    cycles_load: float = 2.0
    cycles_store: float = 2.0
    #: calibrated pipeline-stall factors (see module docstring)
    scalar_overhead: float = 1.1945
    neon_overhead: float = 1.5036

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise PlatformModelError(f"clock_hz must be positive, got {self.clock_hz}")

    # ------------------------------------------------------------------
    def kernel_cycles(
        self,
        counts: KernelCounts,
        pipeline: DecodePipeline,
        pattern: AccessPattern,
        branchy: bool = False,
    ) -> float:
        """Price one kernel on one pipeline.

        ``branchy`` marks kernels whose scalar form contains a
        data-dependent branch per element (the Figure 4 loop); the NEON
        build removes those branches by if-conversion.
        """
        integer = (
            counts.int_ops * self.cycles_int_op
            + counts.table_lookups * self.cycles_table_lookup
            + counts.bit_ops * self.cycles_bit_op
        )
        if pipeline is DecodePipeline.SCALAR_VFP or pattern is AccessPattern.SERIAL:
            cycles = (
                integer
                + counts.float_macs * self.costs.scalar_mac
                + counts.float_ops * self.costs.scalar_op
                + counts.loads * self.cycles_load
                + counts.stores * self.cycles_store
                + counts.branches * (self.cycles_branch if branchy else 2.0)
            )
            overhead = (
                self.scalar_overhead
                if pipeline is DecodePipeline.SCALAR_VFP
                else self.neon_overhead
            )
            return cycles * overhead

        if pattern is AccessPattern.STREAMING:
            # fully vectorized: 4 lanes per instruction
            vector_elements = counts.float_macs + counts.float_ops
            vector_cycles = vector_elements / VECTOR_WIDTH * self.costs.vector_op
            memory_cycles = (
                (counts.loads + counts.stores) / VECTOR_WIDTH * self.costs.vector_load
            )
            cycles = integer + vector_cycles + memory_cycles
            # if-conversion removes per-element branches entirely
            cycles += 0.0 if branchy else counts.branches * 1.0
            return cycles * self.neon_overhead

        if pattern is AccessPattern.GATHER:
            # arithmetic vectorizes, but every operand needs a lane load
            vector_elements = counts.float_macs + counts.float_ops
            vector_cycles = vector_elements / VECTOR_WIDTH * self.costs.vector_op
            memory_cycles = counts.loads * self.costs.lane_load + (
                counts.stores * self.cycles_store
            )
            cycles = (
                integer + vector_cycles + memory_cycles + counts.branches * 1.0
            )
            return cycles * self.neon_overhead

        raise PlatformModelError(f"unknown pattern {pattern}")  # pragma: no cover

    # ------------------------------------------------------------------
    def iteration_cycles(
        self, config: SystemConfig, pipeline: DecodePipeline
    ) -> float:
        """Cycles of one FISTA iteration (the decode hot loop)."""
        total = 0.0
        total += self.kernel_cycles(idwt_counts(config), pipeline, AccessPattern.STREAMING)
        total += self.kernel_cycles(dwt_counts(config), pipeline, AccessPattern.STREAMING)
        total += 2 * self.kernel_cycles(
            sparse_matvec_float_counts(config), pipeline, AccessPattern.GATHER
        )
        total += self.kernel_cycles(
            prox_counts(config), pipeline, AccessPattern.STREAMING, branchy=True
        )
        total += self.kernel_cycles(
            momentum_counts(config), pipeline, AccessPattern.STREAMING
        )
        return total

    def packet_overhead_cycles(
        self, config: SystemConfig, mean_bits_per_symbol: float = 6.0
    ) -> float:
        """Per-packet scalar work: Huffman decode + packet reconstruction."""
        huffman = self.kernel_cycles(
            huffman_decode_counts(config, mean_bits_per_symbol),
            DecodePipeline.SCALAR_VFP,
            AccessPattern.SERIAL,
        )
        reconstruction = self.kernel_cycles(
            packet_reconstruction_counts(config),
            DecodePipeline.SCALAR_VFP,
            AccessPattern.SERIAL,
        )
        return huffman + reconstruction

    def decode_time_s(
        self,
        config: SystemConfig,
        iterations: float,
        pipeline: DecodePipeline = DecodePipeline.NEON_OPTIMIZED,
        mean_bits_per_symbol: float = 6.0,
    ) -> float:
        """Wall-clock decode time of one packet at a given iteration count."""
        if iterations < 0:
            raise PlatformModelError(f"iterations must be >= 0, got {iterations}")
        cycles = iterations * self.iteration_cycles(config, pipeline)
        cycles += self.packet_overhead_cycles(config, mean_bits_per_symbol)
        return cycles / self.clock_hz

    def max_realtime_iterations(
        self,
        config: SystemConfig,
        pipeline: DecodePipeline,
        decode_budget_s: float = 1.0,
    ) -> int:
        """Iteration cap within the real-time budget (1 s per 2 s packet).

        The paper reports 800 for the scalar build and 2000 for the
        NEON build.
        """
        per_iteration = self.iteration_cycles(config, pipeline)
        budget_cycles = decode_budget_s * self.clock_hz - self.packet_overhead_cycles(
            config
        )
        return max(0, int(budget_cycles / per_iteration))

    def speedup(self, config: SystemConfig, iterations: float = 1000.0) -> float:
        """End-to-end NEON speedup over the scalar build (the 2.43x claim)."""
        scalar = self.decode_time_s(config, iterations, DecodePipeline.SCALAR_VFP)
        neon = self.decode_time_s(config, iterations, DecodePipeline.NEON_OPTIMIZED)
        return scalar / neon

    def prox_speedup(self, n: int) -> float:
        """Figure 4 micro-kernel: branchy scalar vs if-converted NEON."""
        return if_conversion_cycles(n, vectorized=False, costs=self.costs) / (
            if_conversion_cycles(n, vectorized=True, costs=self.costs)
        )
