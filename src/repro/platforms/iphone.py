"""The iPhone 3GS coordinator: Cortex-A8 decoder + display pipeline.

Combines the Cortex-A8 cycle model with the display-refresh task of the
paper's producer/consumer application (the second thread wakes every
15 ms to draw 4 new pixels) into coordinator-level quantities: decode
time per packet, total CPU usage (the "17.7 % at CR 50" claim) and the
real-time iteration caps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemConfig
from ..errors import PlatformModelError
from .cortexa8 import CortexA8Model, DecodePipeline


@dataclass(frozen=True)
class IPhoneModel:
    """Coordinator timing model (decode + display threads)."""

    cpu: CortexA8Model = field(default_factory=CortexA8Model)
    #: display-thread period (paper: called every 15 ms)
    display_period_s: float = 0.015
    #: pixels drawn per wakeup (paper: 4 new pixels)
    pixels_per_wakeup: int = 4
    #: CPU time per display wakeup (UIKit/Quartz path, measured-order)
    display_wakeup_cpu_s: float = 0.00026
    #: decode budget per 2 s packet for real-time operation
    decode_budget_s: float = 1.0

    def __post_init__(self) -> None:
        if self.display_period_s <= 0:
            raise PlatformModelError(
                f"display_period_s must be positive, got {self.display_period_s}"
            )
        if self.pixels_per_wakeup < 1:
            raise PlatformModelError(
                f"pixels_per_wakeup must be >= 1, got {self.pixels_per_wakeup}"
            )
        if self.display_wakeup_cpu_s < 0 or self.decode_budget_s <= 0:
            raise PlatformModelError("invalid timing parameters")

    # ------------------------------------------------------------------
    def decode_time_s(
        self,
        config: SystemConfig,
        iterations: float,
        pipeline: DecodePipeline = DecodePipeline.NEON_OPTIMIZED,
    ) -> float:
        """Modeled decode time of one packet on the phone."""
        return self.cpu.decode_time_s(config, iterations, pipeline)

    def display_cpu_fraction(self) -> float:
        """CPU share of the drawing thread."""
        return self.display_wakeup_cpu_s / self.display_period_s

    def cpu_usage_percent(
        self,
        config: SystemConfig,
        iterations: float,
        pipeline: DecodePipeline = DecodePipeline.NEON_OPTIMIZED,
    ) -> float:
        """Total coordinator CPU percent: decoder duty + display thread."""
        decode_fraction = self.decode_time_s(config, iterations, pipeline) / (
            config.packet_seconds
        )
        return 100.0 * (decode_fraction + self.display_cpu_fraction())

    def is_realtime(
        self,
        config: SystemConfig,
        iterations: float,
        pipeline: DecodePipeline = DecodePipeline.NEON_OPTIMIZED,
    ) -> bool:
        """Whether decoding meets the 1 s / 2 s packet budget."""
        return self.decode_time_s(config, iterations, pipeline) <= self.decode_budget_s

    def max_realtime_iterations(
        self, config: SystemConfig, pipeline: DecodePipeline
    ) -> int:
        """Iteration cap within the decode budget (paper: 800 vs 2000)."""
        return self.cpu.max_realtime_iterations(
            config, pipeline, self.decode_budget_s
        )

    # ------------------------------------------------------------------
    def display_pixel_rate_hz(self) -> float:
        """Pixels per second drawn by the display thread."""
        return self.pixels_per_wakeup / self.display_period_s

    def buffer_requirement_s(self) -> float:
        """Shared-buffer depth: 2 s read + 2 s write + 2 s display latency."""
        return 6.0
