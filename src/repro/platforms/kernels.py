"""Operation-count profiles of every encoder/decoder kernel.

A :class:`KernelCounts` is a platform-independent inventory of the work
one kernel performs (integer ops, floating MACs, memory traffic, PRNG
draws, branches).  Platform models multiply these counts by their cycle
tables.  Keeping the counts separate from the tables means the MSP430
and Cortex-A8 models share one ground truth about *what* the algorithms
do, and differ only in *how fast* their hardware does it.

Counts are exact functions of the system configuration (N, M, d, filter
length, decomposition levels), not measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..config import SystemConfig


@dataclass(frozen=True)
class KernelCounts:
    """Operation inventory of one kernel execution."""

    name: str = "kernel"
    #: 16-bit integer add/sub/compare operations
    int_ops: int = 0
    #: 32-bit (double-word on MSP430) accumulator additions
    int32_adds: int = 0
    #: integer multiplications (hardware multiplier on MSP430)
    int_muls: int = 0
    #: PRNG draws (xorshift/LFSR steps incl. rejection average)
    prng_draws: int = 0
    #: single-precision floating multiply-accumulates
    float_macs: int = 0
    #: other single-precision floating ops (add/sub/mul/cmp)
    float_ops: int = 0
    #: memory loads (words)
    loads: int = 0
    #: memory stores (words)
    stores: int = 0
    #: table lookups (flash-resident tables)
    table_lookups: int = 0
    #: data-dependent branches
    branches: int = 0
    #: per-output-bit bitstream operations
    bit_ops: int = 0

    def __add__(self, other: "KernelCounts") -> "KernelCounts":
        merged = {}
        for f in fields(self):
            if f.name == "name":
                continue
            merged[f.name] = getattr(self, f.name) + getattr(other, f.name)
        return KernelCounts(name=f"{self.name}+{other.name}", **merged)

    def scaled(self, factor: int, name: str | None = None) -> "KernelCounts":
        """Counts repeated ``factor`` times (e.g. per-iteration -> per-solve)."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        scaled = {}
        for f in fields(self):
            if f.name == "name":
                continue
            scaled[f.name] = getattr(self, f.name) * factor
        return KernelCounts(name=name or f"{self.name}x{factor}", **scaled)

    def total_ops(self) -> int:
        """Sum of all op counts (rough complexity indicator)."""
        return sum(
            getattr(self, f.name) for f in fields(self) if f.name != "name"
        )


@dataclass(frozen=True)
class KernelReport:
    """A kernel's counts priced by some platform: cycles and seconds."""

    name: str
    cycles: float
    seconds: float

    def milliseconds(self) -> float:
        """Convenience accessor."""
        return 1000.0 * self.seconds


# ----------------------------------------------------------------------
# Encoder-side kernels (integer pipeline on the mote)
# ----------------------------------------------------------------------

def sparse_sensing_counts(config: SystemConfig, regenerate_indices: bool = True) -> KernelCounts:
    """Stage 1: ``y_int = sum of selected samples`` over all N*d nonzeros.

    With on-the-fly index regeneration (the flash-frugal firmware layout:
    the row-index table is *not* stored; the PRNG re-derives it each
    packet) every nonzero costs one PRNG draw, one address computation,
    one 32-bit accumulate and the loop bookkeeping.
    """
    nnz = config.n * config.d
    return KernelCounts(
        name="sparse-sensing",
        prng_draws=nnz if regenerate_indices else 0,
        int32_adds=nnz,
        int_ops=nnz + config.n,  # address arithmetic + per-column setup
        loads=nnz + config.n,  # accumulator reads + one sample read/column
        stores=nnz,
        branches=nnz,  # inner-loop back edge
        table_lookups=0 if regenerate_indices else nnz,
    )


def quantize_counts(config: SystemConfig) -> KernelCounts:
    """Shift-with-rounding quantizer over M accumulators."""
    return KernelCounts(
        name="quantize",
        int_ops=3 * config.m,  # add half, shift, sign fix
        loads=config.m,
        stores=config.m,
        branches=config.m,
    )


def difference_counts(config: SystemConfig) -> KernelCounts:
    """Redundancy removal: subtract, clip, update reference (closed loop)."""
    return KernelCounts(
        name="difference",
        int_ops=4 * config.m,  # subtract, two clip compares, reference add
        loads=2 * config.m,
        stores=2 * config.m,
        branches=2 * config.m,
    )


def huffman_encode_counts(config: SystemConfig, mean_bits_per_symbol: float) -> KernelCounts:
    """Entropy coding of M symbols, table-driven canonical Huffman."""
    total_bits = int(round(config.m * mean_bits_per_symbol))
    return KernelCounts(
        name="huffman-encode",
        table_lookups=2 * config.m,  # codeword + length tables
        int_ops=2 * config.m,
        bit_ops=total_bits,
        loads=config.m,
        stores=(total_bits + 15) // 16,
        branches=config.m,
    )


def encoder_packet_counts(
    config: SystemConfig,
    mean_bits_per_symbol: float = 6.0,
    regenerate_indices: bool = True,
) -> KernelCounts:
    """Full node-side pipeline for one difference packet."""
    return (
        sparse_sensing_counts(config, regenerate_indices)
        + quantize_counts(config)
        + difference_counts(config)
        + huffman_encode_counts(config, mean_bits_per_symbol)
    )


def gaussian_generation_counts(config: SystemConfig, ops_per_draw: int = 6) -> KernelCounts:
    """Rejected approach 1: on-board 8-bit Gaussian generation of Phi.

    ``ops_per_draw`` integer/table operations per Gaussian draw (two PRNG
    draws, two table lookups, one multiply, one shift — see
    :class:`repro.sensing.rng.FixedPointGaussian`), for all M*N entries.
    """
    entries = config.m * config.n
    return KernelCounts(
        name="gaussian-generation",
        prng_draws=2 * entries,
        table_lookups=2 * entries,
        int_muls=entries,
        int_ops=(ops_per_draw - 5) * entries if ops_per_draw > 5 else 0,
        stores=entries,
        branches=entries,
    )


def dense_matvec_counts(config: SystemConfig) -> KernelCounts:
    """Rejected approach 2: dense M x N 16-bit matrix multiply."""
    entries = config.m * config.n
    return KernelCounts(
        name="dense-matvec",
        int_muls=entries,
        int32_adds=entries,
        loads=2 * entries,
        stores=config.m,
        int_ops=entries,
        branches=entries,
    )


# ----------------------------------------------------------------------
# Decoder-side kernels (float pipeline on the coordinator)
# ----------------------------------------------------------------------

def _filter_bank_macs(config: SystemConfig, filter_length: int = 8) -> int:
    """MACs of one full periodized DWT or IDWT (all levels)."""
    levels = config.levels if config.levels is not None else 5
    total = 0
    length = config.n
    for _ in range(levels):
        half = length // 2
        total += 2 * filter_length * half  # low-pass and high-pass banks
        length = half
    return total


def idwt_counts(config: SystemConfig, filter_length: int = 8) -> KernelCounts:
    """Wavelet synthesis ``Psi alpha`` (the decoder's hot filter banks)."""
    macs = _filter_bank_macs(config, filter_length)
    return KernelCounts(
        name="idwt",
        float_macs=macs,
        loads=2 * macs,
        stores=macs // filter_length,
        branches=macs // filter_length,
    )


def dwt_counts(config: SystemConfig, filter_length: int = 8) -> KernelCounts:
    """Wavelet analysis ``Psi^T r`` (adjoint filter banks)."""
    counts = idwt_counts(config, filter_length)
    return KernelCounts(
        name="dwt",
        float_macs=counts.float_macs,
        loads=counts.loads,
        stores=counts.stores,
        branches=counts.branches,
    )


def sparse_matvec_float_counts(config: SystemConfig) -> KernelCounts:
    """``Phi v`` or ``Phi^T r`` with the sparse binary structure (gather)."""
    nnz = config.n * config.d
    return KernelCounts(
        name="sparse-matvec",
        float_ops=nnz,  # adds
        loads=2 * nnz,  # irregular gathers: index + value
        stores=nnz // config.d,
        int_ops=nnz,  # index arithmetic
        branches=nnz // config.d,
    )


def prox_counts(config: SystemConfig) -> KernelCounts:
    """Soft threshold over N coefficients (Figure 4's loop)."""
    return KernelCounts(
        name="prox",
        float_ops=4 * config.n,  # abs, sub, max, sign-mul
        loads=config.n,
        stores=config.n,
        branches=config.n,  # in the branchy form; masked form keeps count
    )


def momentum_counts(config: SystemConfig) -> KernelCounts:
    """FISTA momentum extrapolation + residual update vector ops."""
    return KernelCounts(
        name="momentum",
        float_ops=3 * config.n + 2 * config.m,
        loads=2 * config.n + config.m,
        stores=config.n + config.m,
        branches=(config.n + config.m) // 4,
    )


def fista_iteration_counts(config: SystemConfig, filter_length: int = 8) -> KernelCounts:
    """One full FISTA iteration: A v, A^T r, prox, momentum."""
    return (
        idwt_counts(config, filter_length)
        + sparse_matvec_float_counts(config)
        + sparse_matvec_float_counts(config)
        + dwt_counts(config, filter_length)
        + prox_counts(config)
        + momentum_counts(config)
    )


def huffman_decode_counts(config: SystemConfig, mean_bits_per_symbol: float = 6.0) -> KernelCounts:
    """Canonical Huffman decoding of M symbols (bit-serial)."""
    total_bits = int(round(config.m * mean_bits_per_symbol))
    return KernelCounts(
        name="huffman-decode",
        bit_ops=total_bits,
        table_lookups=total_bits,  # first-code/first-rank per length step
        int_ops=2 * total_bits,
        branches=total_bits,
        stores=config.m,
    )


def packet_reconstruction_counts(config: SystemConfig) -> KernelCounts:
    """Re-inserting redundancy + dequantization on the decoder."""
    return KernelCounts(
        name="packet-reconstruction",
        int_ops=2 * config.m,
        float_ops=config.m,  # dequantize scale
        loads=2 * config.m,
        stores=2 * config.m,
    )
