"""Firmware memory-footprint accounting (RAM and flash).

Reproduces the paper's budget: "The complete CS implementation requires
6.5 kB of RAM and 7.5 kB of Flash, 1.5 kB of which are for Huffman
codebook storage", against the MSP430F1611's 10 kB RAM / 48 kB flash.

The row-index table of the sparse binary matrix (N*d indices) is *not*
stored: the firmware regenerates it per packet from the shared PRNG
seed (see :func:`repro.platforms.kernels.sparse_sensing_counts`), which
is the only layout consistent with the paper's 7.5 kB flash figure.
The rejected stored-Gaussian approach is also mapped, to show it
violates the budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..errors import MemoryBudgetError


class MemoryRegion(enum.Enum):
    """Target memory region of an allocation."""

    RAM = "ram"
    FLASH = "flash"


@dataclass(frozen=True)
class MemoryEntry:
    """One named allocation."""

    name: str
    size_bytes: int
    region: MemoryRegion

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise MemoryBudgetError(
                f"allocation {self.name!r} has negative size {self.size_bytes}"
            )


@dataclass
class MemoryMap:
    """A set of allocations checked against a device budget."""

    ram_budget_bytes: int
    flash_budget_bytes: int
    entries: list[MemoryEntry] = field(default_factory=list)

    def add(self, name: str, size_bytes: int, region: MemoryRegion) -> None:
        """Add one allocation."""
        self.entries.append(MemoryEntry(name, int(size_bytes), region))

    def ram_bytes(self) -> int:
        """Total RAM usage."""
        return sum(
            e.size_bytes for e in self.entries if e.region is MemoryRegion.RAM
        )

    def flash_bytes(self) -> int:
        """Total flash usage."""
        return sum(
            e.size_bytes for e in self.entries if e.region is MemoryRegion.FLASH
        )

    def fits(self) -> bool:
        """Whether both regions fit their budgets."""
        return (
            self.ram_bytes() <= self.ram_budget_bytes
            and self.flash_bytes() <= self.flash_budget_bytes
        )

    def check(self) -> None:
        """Raise :class:`MemoryBudgetError` when over budget."""
        if self.ram_bytes() > self.ram_budget_bytes:
            raise MemoryBudgetError(
                f"RAM over budget: {self.ram_bytes()} > {self.ram_budget_bytes} B"
            )
        if self.flash_bytes() > self.flash_budget_bytes:
            raise MemoryBudgetError(
                f"flash over budget: {self.flash_bytes()} > {self.flash_budget_bytes} B"
            )

    def render(self) -> str:
        """Fixed-width textual map for reports."""
        lines = [f"{'allocation':<28} {'region':<6} {'bytes':>8}"]
        for entry in sorted(self.entries, key=lambda e: (e.region.value, -e.size_bytes)):
            lines.append(
                f"{entry.name:<28} {entry.region.value:<6} {entry.size_bytes:>8}"
            )
        lines.append(
            f"{'TOTAL RAM':<28} {'ram':<6} {self.ram_bytes():>8}"
            f"  (budget {self.ram_budget_bytes})"
        )
        lines.append(
            f"{'TOTAL FLASH':<28} {'flash':<6} {self.flash_bytes():>8}"
            f"  (budget {self.flash_budget_bytes})"
        )
        return "\n".join(lines)


#: MSP430F1611 memory budgets.
MSP430_RAM_BYTES = 10 * 1024
MSP430_FLASH_BYTES = 48 * 1024

#: Estimated code size of the compiled encoder (three stages, drivers).
ENCODER_CODE_BYTES = 4576
#: Miscellaneous flash constants (PRNG parameters, calibration, vectors).
ENCODER_CONST_BYTES = 1408


def encoder_memory_map(
    config: SystemConfig,
    store_sparse_indices: bool = False,
    store_gaussian_matrix: bool = False,
) -> MemoryMap:
    """Build the node-side memory map for a configuration.

    With the defaults (regenerated indices, no Gaussian matrix) and the
    paper's N=512 / M=256 operating point this reproduces the published
    6.5 kB RAM / 7.5 kB flash footprint.
    """
    memory = MemoryMap(
        ram_budget_bytes=MSP430_RAM_BYTES, flash_budget_bytes=MSP430_FLASH_BYTES
    )
    # RAM: double sample buffer (acquire one packet while encoding the
    # previous), 32-bit accumulators, quantized/reference/diff vectors,
    # the outgoing bitstream buffer, stack + OS.
    memory.add("sample double buffer", 2 * 2 * config.n, MemoryRegion.RAM)
    memory.add("measurement accumulators", 4 * config.m, MemoryRegion.RAM)
    memory.add("quantized measurements", 2 * config.m, MemoryRegion.RAM)
    memory.add("reference vector", 2 * config.m, MemoryRegion.RAM)
    memory.add("difference vector", 2 * config.m, MemoryRegion.RAM)
    memory.add("bitstream buffer", 1024, MemoryRegion.RAM)
    memory.add("stack + tinyos", 1024, MemoryRegion.RAM)

    # FLASH: code, the Huffman codebook (1 kB codewords + 512 B lengths),
    # constants.
    memory.add("encoder code", ENCODER_CODE_BYTES, MemoryRegion.FLASH)
    memory.add("huffman codewords", 1024, MemoryRegion.FLASH)
    memory.add("huffman lengths", 512, MemoryRegion.FLASH)
    memory.add("constants + prng", ENCODER_CONST_BYTES, MemoryRegion.FLASH)

    if store_sparse_indices:
        index_bits = max(8, (config.m - 1).bit_length())
        index_bytes = (index_bits + 7) // 8
        memory.add(
            "sparse row-index table",
            config.n * config.d * index_bytes,
            MemoryRegion.FLASH,
        )
    if store_gaussian_matrix:
        memory.add(
            "dense gaussian matrix (f32)",
            4 * config.m * config.n,
            MemoryRegion.FLASH,
        )
    return memory
