"""MSP430F1611 cycle and energy model (the Shimmer's MCU).

Cycle table grounded in the MSP430x1xx family datasheet orders of
magnitude: register-to-memory instructions cost 3-4 cycles, the hardware
multiplier completes a 16x16 MAC in ~8 cycles including operand moves,
and a 32-bit add on the 16-bit ALU is an ``add``/``addc`` pair plus
loads/stores.  Compiled C (the paper used GCC 3.2.3 for the MSP430) is
substantially slower than hand assembly; a single documented
``compiler_overhead`` factor is calibrated so that sparse binary sensing
of one 2-second packet costs the paper's measured **82 ms** — all other
encoder numbers (CPU load, rejected-approach times) then follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..config import SystemConfig
from ..errors import PlatformModelError
from .kernels import (
    KernelCounts,
    KernelReport,
    dense_matvec_counts,
    encoder_packet_counts,
    gaussian_generation_counts,
    sparse_sensing_counts,
)


class SensingApproach(Enum):
    """The paper's three candidate Phi implementations (Section IV-A2)."""

    ONBOARD_GAUSSIAN = "onboard-gaussian"  # approach 1: generate + multiply
    STORED_GAUSSIAN = "stored-gaussian"  # approach 2: stored dense matrix
    SPARSE_BINARY = "sparse-binary"  # approach 3: adopted


@dataclass(frozen=True)
class Msp430Model:
    """Cycle/energy model of the MSP430F1611 at a given clock.

    The per-op cycle table is hand-assembly cost; ``compiler_overhead``
    models GCC 3.2.3 output (register pressure, 32-bit emulation calls,
    missed addressing modes) and is calibrated once against the paper's
    82 ms sensing anchor.
    """

    clock_hz: float = 8e6
    #: active-mode power at 3 V (datasheet-order ~500 uA/MHz at 3 V)
    active_power_mw: float = 6.0
    sleep_power_mw: float = 0.02
    # --- hand-assembly cycle table ---
    cycles_int_op: float = 2.0
    cycles_int32_add: float = 8.0  # add/addc pair + memory operands
    cycles_int_mul: float = 8.0  # hardware multiplier incl. operand moves
    cycles_prng_draw: float = 12.0  # xorshift16 step + rejection average
    cycles_load: float = 3.0
    cycles_store: float = 3.0
    cycles_table_lookup: float = 5.0  # flash read + index arithmetic
    cycles_branch: float = 2.0
    cycles_bit_op: float = 4.0
    #: calibrated once: 82 ms / hand-assembly prediction for the
    #: N=512, d=12 sensing kernel (see ``calibration_report``)
    compiler_overhead: float = 3.5103

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise PlatformModelError(f"clock_hz must be positive, got {self.clock_hz}")
        if self.compiler_overhead < 1.0:
            raise PlatformModelError(
                f"compiler_overhead must be >= 1, got {self.compiler_overhead}"
            )

    # ------------------------------------------------------------------
    def hand_assembly_cycles(self, counts: KernelCounts) -> float:
        """Price a kernel with the raw (uncalibrated) cycle table."""
        return (
            counts.int_ops * self.cycles_int_op
            + counts.int32_adds * self.cycles_int32_add
            + counts.int_muls * self.cycles_int_mul
            + counts.prng_draws * self.cycles_prng_draw
            + counts.loads * self.cycles_load
            + counts.stores * self.cycles_store
            + counts.table_lookups * self.cycles_table_lookup
            + counts.branches * self.cycles_branch
            + counts.bit_ops * self.cycles_bit_op
            # float ops never appear on this FPU-less core; sanity guard:
            + (counts.float_macs + counts.float_ops) * 1e9
        )

    def cycles(self, counts: KernelCounts) -> float:
        """Compiled-code cycles (hand assembly x compiler overhead)."""
        return self.hand_assembly_cycles(counts) * self.compiler_overhead

    def report(self, counts: KernelCounts) -> KernelReport:
        """Cycles and wall-clock seconds for a kernel."""
        cycles = self.cycles(counts)
        return KernelReport(
            name=counts.name, cycles=cycles, seconds=cycles / self.clock_hz
        )

    # ------------------------------------------------------------------
    def sensing_time_s(self, config: SystemConfig) -> float:
        """Time to CS-sample one packet (the 82 ms anchor at defaults)."""
        return self.report(sparse_sensing_counts(config)).seconds

    def encode_packet_time_s(
        self, config: SystemConfig, mean_bits_per_symbol: float = 6.0
    ) -> float:
        """Time for the full three-stage encoder on one packet."""
        counts = encoder_packet_counts(config, mean_bits_per_symbol)
        return self.report(counts).seconds

    def cpu_usage_fraction(
        self, config: SystemConfig, mean_bits_per_symbol: float = 6.0
    ) -> float:
        """Encoder duty cycle: busy time per packet period (< 5 % claim)."""
        return self.encode_packet_time_s(config, mean_bits_per_symbol) / (
            config.packet_seconds
        )

    def encode_energy_mj(
        self, config: SystemConfig, mean_bits_per_symbol: float = 6.0
    ) -> float:
        """Active-mode energy per encoded packet, in millijoules."""
        return (
            self.encode_packet_time_s(config, mean_bits_per_symbol)
            * self.active_power_mw
        )

    # ------------------------------------------------------------------
    def approach_time_s(
        self, config: SystemConfig, approach: SensingApproach
    ) -> float:
        """Per-packet sensing time of each candidate Phi implementation.

        Approach 1 regenerates the full Gaussian matrix every packet (no
        room to store it) then multiplies; approach 2 only multiplies
        (matrix assumed stored — see the memory model for why it cannot
        be); approach 3 is the adopted sparse binary kernel.
        """
        if approach is SensingApproach.ONBOARD_GAUSSIAN:
            counts = gaussian_generation_counts(config) + dense_matvec_counts(config)
        elif approach is SensingApproach.STORED_GAUSSIAN:
            counts = dense_matvec_counts(config)
        elif approach is SensingApproach.SPARSE_BINARY:
            counts = sparse_sensing_counts(config)
        else:  # pragma: no cover - exhaustive enum
            raise PlatformModelError(f"unknown approach {approach}")
        return self.report(counts).seconds

    def is_real_time(self, config: SystemConfig, approach: SensingApproach) -> bool:
        """Whether sensing finishes within one packet period."""
        return self.approach_time_s(config, approach) < config.packet_seconds

    def calibration_report(self, config: SystemConfig | None = None) -> dict[str, float]:
        """Show the anchor calibration: hand-assembly vs calibrated 82 ms."""
        config = config if config is not None else SystemConfig()
        counts = sparse_sensing_counts(config)
        raw = self.hand_assembly_cycles(counts)
        return {
            "hand_assembly_cycles": raw,
            "compiler_overhead": self.compiler_overhead,
            "calibrated_cycles": raw * self.compiler_overhead,
            "calibrated_ms": raw * self.compiler_overhead / self.clock_hz * 1e3,
            "paper_anchor_ms": 82.0,
        }
