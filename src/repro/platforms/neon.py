"""NEON vectorization-strategy models (paper Figures 3, 4, 5).

The paper's low-level contribution is a set of loop transformations for
the Cortex-A8's NEON unit.  Each is modeled twice here:

- a **cost model** counting vector/scalar instructions, used by the
  Cortex-A8 cycle model and the SIMD ablation benchmark;
- a **functional simulation** (numpy emulating 4-lane vectors) proving
  the transformed loops compute exactly the same values.

Figure 3 — three ways to handle the ``A < L`` leftover elements of a
loop of ``L*Iter + A`` iterations: array padding (fastest), lane-by-lane
loads, scalar epilogue (slowest).

Figure 4 — if-conversion of the soft-threshold sign logic: comparison
results used as multiplicative masks instead of branches.

Figure 5 — vectorizing the outer vs the inner loop of the two-filter
bank nest: outer-loop vectorization needs ``2*(I/L)*m`` vector MACs;
inner-loop vectorization adds ``2*I*(L-1)`` cross-lane adds; when
``I < L`` a fused X/Y vector brings the count down to ``I*m``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from ..errors import PlatformModelError

#: NEON vector width in single-precision floats on the Cortex-A8.
VECTOR_WIDTH = 4


class LeftoverStrategy(enum.Enum):
    """Figure 3's three leftover-element treatments, fastest first."""

    ARRAY_PADDING = "array-padding"
    LANE_BY_LANE = "lane-by-lane"
    SCALAR_EPILOGUE = "scalar-epilogue"


@dataclass(frozen=True)
class NeonCosts:
    """Primitive instruction costs (cycles) used by the strategy models."""

    vector_op: float = 2.0  # vmlaq.f32 etc.: 4 lanes / 2 cycles
    vector_load: float = 2.0  # vld1q.f32
    vector_store: float = 2.0  # vst1q.f32
    lane_load: float = 6.0  # vld1q_lane per element (latency-serialized)
    scalar_op: float = 10.0  # VFPLite single-precision op
    scalar_mac: float = 20.0  # VFPLite MAC (paper: 18-21 cycles)
    branch: float = 8.0  # mispredict-weighted
    loop_overhead: float = 3.0  # index/compare/back-edge per loop pass


def leftover_strategy_cycles(
    total: int,
    strategy: LeftoverStrategy,
    costs: NeonCosts | None = None,
) -> float:
    """Cycles to run an elementwise ``d = a + b*c`` loop of ``total`` items.

    ``total = L*Iter + A`` with ``A = total mod L``.  All strategies run
    ``Iter`` full vector passes (load a, b, c; MAC; store); they differ
    in how the last ``A`` elements are produced.
    """
    if total < 0:
        raise PlatformModelError(f"total must be >= 0, got {total}")
    costs = costs if costs is not None else NeonCosts()
    full, leftover = divmod(total, VECTOR_WIDTH)
    per_vector = 3 * costs.vector_load + costs.vector_op + costs.vector_store
    cycles = full * (per_vector + costs.loop_overhead)
    if leftover == 0:
        return cycles
    if strategy is LeftoverStrategy.ARRAY_PADDING:
        # one more full vector pass over the padded tail
        return cycles + per_vector + costs.loop_overhead
    if strategy is LeftoverStrategy.LANE_BY_LANE:
        # A lane loads per input vector (3 inputs), one vector op,
        # A lane stores
        return (
            cycles
            + 3 * leftover * costs.lane_load
            + costs.vector_op
            + leftover * costs.lane_load
            + costs.loop_overhead
        )
    if strategy is LeftoverStrategy.SCALAR_EPILOGUE:
        return cycles + leftover * (
            costs.scalar_mac + 3 * costs.scalar_op / 3 + costs.loop_overhead
        )
    raise PlatformModelError(f"unknown strategy {strategy}")


# repro-lint: f32
def simulate_leftover_strategies(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> dict[LeftoverStrategy, np.ndarray]:
    """Functional 4-lane simulation of ``d = a + b*c`` for all strategies.

    All three must produce identical outputs; the test-suite asserts it.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    c = np.asarray(c, dtype=np.float32)
    if not (a.shape == b.shape == c.shape) or a.ndim != 1:
        raise PlatformModelError("a, b, c must be equal-length 1-D arrays")
    total = len(a)
    full = (total // VECTOR_WIDTH) * VECTOR_WIDTH
    results: dict[LeftoverStrategy, np.ndarray] = {}

    # array padding: compute on zero-padded copies, truncate
    pad = (-total) % VECTOR_WIDTH
    ap = np.concatenate([a, np.zeros(pad, np.float32)])
    bp = np.concatenate([b, np.zeros(pad, np.float32)])
    cp = np.concatenate([c, np.zeros(pad, np.float32)])
    padded = (
        ap.reshape(-1, VECTOR_WIDTH)
        + bp.reshape(-1, VECTOR_WIDTH) * cp.reshape(-1, VECTOR_WIDTH)
    ).reshape(-1)[:total]
    results[LeftoverStrategy.ARRAY_PADDING] = padded

    # lane-by-lane: full vectors, then one masked vector built lane-wise
    lane = np.empty(total, np.float32)
    lane[:full] = (
        a[:full].reshape(-1, VECTOR_WIDTH)
        + b[:full].reshape(-1, VECTOR_WIDTH) * c[:full].reshape(-1, VECTOR_WIDTH)
    ).reshape(-1)
    if total > full:
        va = np.zeros(VECTOR_WIDTH, np.float32)
        vb = np.zeros(VECTOR_WIDTH, np.float32)
        vc = np.zeros(VECTOR_WIDTH, np.float32)
        for i in range(total - full):
            va[i], vb[i], vc[i] = a[full + i], b[full + i], c[full + i]
        vd = va + vb * vc
        lane[full:] = vd[: total - full]
    results[LeftoverStrategy.LANE_BY_LANE] = lane

    # scalar epilogue
    scalar = np.empty(total, np.float32)
    scalar[:full] = lane[:full]
    for i in range(full, total):
        scalar[i] = np.float32(a[i] + b[i] * c[i])
    results[LeftoverStrategy.SCALAR_EPILOGUE] = scalar
    return results


# ----------------------------------------------------------------------
# Figure 4: if-conversion of the soft-threshold sign logic
# ----------------------------------------------------------------------

def if_conversion_cycles(
    n: int, vectorized: bool, costs: NeonCosts | None = None
) -> float:
    """Cycles for the Figure 4 loop over ``n`` elements.

    Branchy scalar: abs, subtract, multiply-by-compare plus a
    data-dependent two-way branch per element (mispredict-weighted).
    Vectorized: two comparison vectors, subtract/abs/max and two
    multiplies per 4 lanes, no branches.
    """
    if n < 0:
        raise PlatformModelError(f"n must be >= 0, got {n}")
    costs = costs if costs is not None else NeonCosts()
    if not vectorized:
        per_element = 4 * costs.scalar_op + costs.branch + costs.loop_overhead
        return n * per_element
    vectors = math.ceil(n / VECTOR_WIDTH)
    per_vector = (
        costs.vector_load
        + 6 * costs.vector_op  # abs, sub, max, 2 compares, sign multiply
        + costs.vector_store
        + costs.loop_overhead
    )
    return vectors * per_vector


# ----------------------------------------------------------------------
# Figure 5: inner- vs outer-loop vectorization of the filter-bank nest
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LoopNestCounts:
    """Instruction counts for one filter-bank nest variant."""

    variant: str
    vector_macs: int
    extra_adds: int
    scalar_macs: int = 0

    def cycles(self, costs: NeonCosts | None = None) -> float:
        """Price the nest with the NEON primitive costs."""
        costs = costs if costs is not None else NeonCosts()
        return (
            self.vector_macs * costs.vector_op
            + self.extra_adds * costs.vector_op
            + self.scalar_macs * costs.scalar_mac
        )


def loop_nest_instruction_counts(
    outer: int, taps: int, fused: bool = False
) -> dict[str, LoopNestCounts]:
    """Instruction counts for the Figure 5 nest (I outer, m taps, 2 filters).

    - ``outer``-loop vectorization: ``2 * (I/L) * m`` vector MACs (valid
      when I is a multiple of L);
    - ``inner``-loop vectorization: same vector MACs but ``2*I*(L-1)``
      extra cross-lane adds for the horizontal reductions;
    - ``fused``: when I < L, packing X and Y into one vector gives
      ``I * m`` MAC instructions (the paper's l1-loop trick).
    """
    if outer < 1 or taps < 1:
        raise PlatformModelError("outer and taps must be >= 1")
    results: dict[str, LoopNestCounts] = {}
    outer_blocks = math.ceil(outer / VECTOR_WIDTH)
    results["outer"] = LoopNestCounts(
        variant="outer", vector_macs=2 * outer_blocks * taps, extra_adds=0
    )
    results["inner"] = LoopNestCounts(
        variant="inner",
        vector_macs=2 * outer * math.ceil(taps / VECTOR_WIDTH),
        extra_adds=2 * outer * (VECTOR_WIDTH - 1),
    )
    if fused:
        results["fused"] = LoopNestCounts(
            variant="fused", vector_macs=outer * taps, extra_adds=0
        )
    return results
