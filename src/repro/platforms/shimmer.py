"""The Shimmer node: MCU + radio + battery composition.

Combines the :class:`~repro.platforms.msp430.Msp430Model`,
:class:`~repro.platforms.bluetooth.BluetoothLink` and
:class:`~repro.platforms.battery.Battery` into node-level quantities:

- encoder CPU duty cycle (the "< 5 %" claim),
- average node power streaming raw vs CS-compressed ECG,
- battery lifetime and the lifetime *extension* of compression
  (the "12.9 %" claim).

``base_power_mw`` covers everything that does not scale with the radio
bit rate or the encoder duty cycle: the analog front end, ADC sampling,
LED/housekeeping, MCU sleep floor and the Bluetooth connection
maintenance.  It is the model's one calibrated constant, pinned so that
the paper's operating point (CR = 50 %) yields the published 12.9 %
lifetime extension; the extension at every *other* CR is then derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemConfig
from ..errors import PlatformModelError
from .battery import Battery, lifetime_extension_percent
from .bluetooth import BluetoothLink
from .msp430 import Msp430Model


@dataclass(frozen=True)
class NodePowerBreakdown:
    """Average node power decomposed by source (all in mW)."""

    base_mw: float
    radio_mw: float
    cpu_mw: float

    @property
    def total_mw(self) -> float:
        """Total average power."""
        return self.base_mw + self.radio_mw + self.cpu_mw


@dataclass(frozen=True)
class ShimmerNode:
    """Energy/timing model of the complete sensor node."""

    mcu: Msp430Model = field(default_factory=Msp430Model)
    radio: BluetoothLink = field(default_factory=BluetoothLink)
    battery: Battery = field(default_factory=Battery)
    #: calibrated: fixed node power (front end, ADC, BT maintenance),
    #: pinned so CR = 50 % yields the paper's 12.9 % lifetime extension
    base_power_mw: float = 9.6427

    def __post_init__(self) -> None:
        if self.base_power_mw < 0:
            raise PlatformModelError(
                f"base_power_mw must be >= 0, got {self.base_power_mw}"
            )

    # ------------------------------------------------------------------
    def raw_stream_bits_per_second(self, config: SystemConfig) -> float:
        """Uncompressed streaming rate: fs x bits-per-sample."""
        return config.sample_rate_hz * config.original_sample_bits

    def streaming_power(self, config: SystemConfig) -> NodePowerBreakdown:
        """Average power when streaming uncompressed ECG (no encoder)."""
        rate = self.raw_stream_bits_per_second(config)
        radio = self.radio.average_power_mw(rate) - self.radio.idle_power_mw
        return NodePowerBreakdown(
            base_mw=self.base_power_mw + self.radio.idle_power_mw,
            radio_mw=radio,
            cpu_mw=0.0,
        )

    def compressed_power(
        self,
        config: SystemConfig,
        bits_per_packet: float,
        mean_bits_per_symbol: float = 6.0,
    ) -> NodePowerBreakdown:
        """Average power with the CS encoder at a measured packet size."""
        if bits_per_packet < 0:
            raise PlatformModelError(
                f"bits_per_packet must be >= 0, got {bits_per_packet}"
            )
        rate = bits_per_packet / config.packet_seconds
        radio = self.radio.average_power_mw(rate) - self.radio.idle_power_mw
        duty = self.mcu.cpu_usage_fraction(config, mean_bits_per_symbol)
        cpu = duty * self.mcu.active_power_mw
        return NodePowerBreakdown(
            base_mw=self.base_power_mw + self.radio.idle_power_mw,
            radio_mw=radio,
            cpu_mw=cpu,
        )

    # ------------------------------------------------------------------
    def cpu_usage_percent(self, config: SystemConfig) -> float:
        """Encoder CPU load in percent (the < 5 % claim)."""
        return 100.0 * self.mcu.cpu_usage_fraction(config)

    def lifetime_extension_percent(
        self, config: SystemConfig, bits_per_packet: float
    ) -> float:
        """Lifetime gain of CS streaming vs raw streaming (the 12.9 % claim)."""
        raw = self.streaming_power(config).total_mw
        compressed = self.compressed_power(config, bits_per_packet).total_mw
        return lifetime_extension_percent(raw, compressed)

    def lifetime_hours(self, power: NodePowerBreakdown) -> float:
        """Battery lifetime at a given average power."""
        return self.battery.lifetime_hours(power.total_mw)
