"""Real-time execution substrate: discrete-event pipeline simulation.

The paper's Figure 8 claim — the whole system runs in real time with
17.7 % coordinator CPU at CR = 50 % and < 5 % node CPU — is a statement
about a multi-threaded producer/consumer pipeline: node sampler and
encoder, Bluetooth link, decoder thread, display thread drawing 4 pixels
every 15 ms, and a 6-second shared buffer (2 s being read + 2 s being
written + 2 s of display latency).

This package simulates that pipeline with a small discrete-event kernel:

- :mod:`repro.realtime.events` — event queue and simulated clock;
- :mod:`repro.realtime.buffers` — the shared sample ring buffer;
- :mod:`repro.realtime.pipeline` — the tasks, resources and the
  :class:`~repro.realtime.pipeline.MonitorPipeline` end-to-end model.
"""

from .events import Event, Simulator
from .buffers import SampleRingBuffer
from .pipeline import MonitorPipeline, PipelineConfig, PipelineReport, Processor

__all__ = [
    "Event",
    "Simulator",
    "SampleRingBuffer",
    "MonitorPipeline",
    "PipelineConfig",
    "PipelineReport",
    "Processor",
]
