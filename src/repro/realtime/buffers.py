"""The shared decoded-sample ring buffer between decoder and display.

The paper sizes it at 6 seconds of ECG: "2 sec. for reading, 2 sec. for
writing and 2 additional sec. due to the delay on the iPhone drawing
hardware".  The buffer counts samples (not bytes) and tracks occupancy
extremes and under/overrun events for the pipeline report.
"""

from __future__ import annotations

from ..errors import BufferOverrunError, BufferUnderrunError


class SampleRingBuffer:
    """Fixed-capacity FIFO of decoded ECG samples with statistics."""

    def __init__(self, capacity_samples: int, strict: bool = True) -> None:
        if capacity_samples < 1:
            raise ValueError(
                f"capacity_samples must be >= 1, got {capacity_samples}"
            )
        self.capacity = int(capacity_samples)
        self.strict = bool(strict)
        self._occupancy = 0
        self.total_written = 0
        self.total_read = 0
        self.overruns = 0
        self.underruns = 0
        self.max_occupancy = 0
        self._min_after_start = self.capacity
        self._started = False

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Samples currently buffered."""
        return self._occupancy

    @property
    def free(self) -> int:
        """Remaining capacity."""
        return self.capacity - self._occupancy

    @property
    def started(self) -> bool:
        """Whether the consumer has performed its first read."""
        return self._started

    @property
    def min_occupancy_after_start(self) -> int:
        """Lowest occupancy seen since the consumer's first read.

        If the consumer never started (the display never drew a pixel),
        no steady-state minimum exists; the honest answer is 0 — nothing
        was ever guaranteed to be available to a reader — rather than
        the full-capacity placeholder the tracker is initialized with.
        """
        if not self._started:
            return 0
        return self._min_after_start

    def occupancy_seconds(self, sample_rate_hz: float) -> float:
        """Occupancy expressed in seconds of signal."""
        if sample_rate_hz <= 0:
            raise ValueError(
                f"sample_rate_hz must be positive, got {sample_rate_hz}"
            )
        return self._occupancy / sample_rate_hz

    # ------------------------------------------------------------------
    def write(self, count: int) -> int:
        """Produce ``count`` samples; returns how many were accepted.

        In strict mode an overflow raises; otherwise the excess is
        dropped and counted as an overrun event.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        accepted = min(count, self.free)
        if accepted < count:
            self.overruns += 1
            if self.strict:
                raise BufferOverrunError(
                    f"ring buffer overflow: writing {count}, free {self.free}"
                )
        self._occupancy += accepted
        self.total_written += accepted
        self.max_occupancy = max(self.max_occupancy, self._occupancy)
        return accepted

    def read(self, count: int) -> int:
        """Consume ``count`` samples; returns how many were available.

        In strict mode a shortfall raises; otherwise it is counted as an
        underrun (a display glitch) and the reader gets what exists.
        Minimum-occupancy tracking starts at the first read, so the
        initial buffering phase does not pollute the statistic.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if not self._started:
            self._started = True
        available = min(count, self._occupancy)
        if available < count:
            self.underruns += 1
            if self.strict:
                raise BufferUnderrunError(
                    f"ring buffer underrun: reading {count}, have {self._occupancy}"
                )
        self._occupancy -= available
        self.total_read += available
        self._min_after_start = min(self._min_after_start, self._occupancy)
        return available
