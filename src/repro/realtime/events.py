"""Minimal discrete-event simulation kernel.

A binary heap of timestamped events; ties break in scheduling order so
runs are fully deterministic.  Actions are plain callables receiving the
simulator, free to schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import RealTimeError

Action = Callable[["Simulator"], None]


@dataclass(order=True)
class Event:
    """One scheduled event (ordered by time, then insertion order)."""

    time: float
    order: int
    action: Action = field(compare=False)


class Simulator:
    """Event queue + simulated clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def schedule_at(self, time: float, action: Action) -> None:
        """Schedule an action at an absolute simulated time."""
        if time < self._now:
            raise RealTimeError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        heapq.heappush(self._queue, Event(time, next(self._counter), action))

    def schedule(self, delay: float, action: Action) -> None:
        """Schedule an action ``delay`` seconds from now."""
        if delay < 0:
            raise RealTimeError(f"delay must be >= 0, got {delay}")
        self.schedule_at(self._now + delay, action)

    def schedule_every(
        self, period: float, action: Action, start: float = 0.0
    ) -> None:
        """Schedule a periodic action (re-arms itself after each firing)."""
        if period <= 0:
            raise RealTimeError(f"period must be positive, got {period}")

        def fire(sim: "Simulator") -> None:
            action(sim)
            sim.schedule(period, fire)

        self.schedule_at(max(start, self._now), fire)

    # ------------------------------------------------------------------
    def run_until(self, end_time: float, max_events: int = 10_000_000) -> None:
        """Execute events in order until the clock reaches ``end_time``."""
        if end_time < self._now:
            raise RealTimeError(
                f"end_time {end_time} is before now {self._now}"
            )
        executed = 0
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            self._now = event.time
            event.action(self)
            self._processed += 1
            executed += 1
            if executed > max_events:
                raise RealTimeError(
                    f"event budget exceeded ({max_events}); runaway schedule?"
                )
        self._now = end_time
