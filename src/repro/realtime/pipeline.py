"""The full monitor pipeline as a discrete-event model (Figure 8).

Entities and their timing sources:

- **sampler** — emits one N-sample window every packet period (the ADC
  runs in hardware; its CPU cost is inside the node base power);
- **encoder task** (node CPU) — busy for the MSP430-modeled encode time;
- **Bluetooth link** — serialized resource, airtime from the link model
  and the packet's actual bit count;
- **decoder task** (phone CPU) — busy for the Cortex-A8-modeled decode
  time of that packet's FISTA iteration count;
- **display task** (phone CPU) — wakes every 15 ms, draws 4 pixels,
  consumes samples from the shared ring buffer (Bresenham-style
  fractional accumulation keeps the 256 Hz consumption exact);
- **ring buffer** — 6 seconds of samples, per the paper's sizing.

Per-packet iteration counts come from the *actual* solver runs on real
data (the Fig 8 experiment feeds them in), so the simulation couples the
numerical behavior with the platform timing models.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..errors import RealTimeError
from ..platforms.bluetooth import BluetoothLink
from ..platforms.cortexa8 import DecodePipeline
from ..platforms.iphone import IPhoneModel
from ..platforms.msp430 import Msp430Model
from ..telemetry import NULL_METER, Meter, MetricsRegistry
from .buffers import SampleRingBuffer
from .events import Simulator


class Processor:
    """A single-threaded CPU: jobs serialize, busy time accumulates.

    Every submitted job is also published to the processor's telemetry
    :class:`~repro.telemetry.Meter` (``realtime_jobs`` /
    ``realtime_busy_seconds``, labeled by processor name), so the
    utilization the pipeline reports is readable off the same plane as
    the gateway's and fleet's counters; the attribute ledger remains
    the local view the report is computed from.
    """

    def __init__(self, name: str, meter: Meter = NULL_METER) -> None:
        self.name = name
        self.meter = meter.child(processor=name) if meter.active else meter
        self._free_at = 0.0
        self.busy_seconds = 0.0
        self.jobs = 0

    def submit(self, now: float, duration: float) -> float:
        """Enqueue a job at ``now``; returns its completion time."""
        if duration < 0:
            raise RealTimeError(f"duration must be >= 0, got {duration}")
        start = max(now, self._free_at)
        self._free_at = start + duration
        self.busy_seconds += duration
        self.jobs += 1
        self.meter.inc("realtime_jobs")
        self.meter.inc("realtime_busy_seconds", duration)
        return self._free_at

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over an elapsed interval.

        Deliberately *not* clamped to 1.0: submitted work is counted in
        full, so a value above 1 means the CPU was handed more work than
        the interval holds — the overload signal a real-time report must
        surface rather than hide.
        """
        if elapsed <= 0:
            raise RealTimeError(f"elapsed must be positive, got {elapsed}")
        return self.busy_seconds / elapsed


@dataclass(frozen=True)
class PipelineConfig:
    """Static parameters of one pipeline run."""

    system: SystemConfig
    #: measured bit size of each packet, cyclically indexed
    packet_bits: Sequence[int]
    #: measured FISTA iteration count of each packet, cyclically indexed
    packet_iterations: Sequence[int]
    duration_s: float = 60.0
    decode_pipeline: DecodePipeline = DecodePipeline.NEON_OPTIMIZED
    buffer_seconds: float = 6.0
    #: display starts once this much signal is buffered; the paper's
    #: 6-second sizing implies 2 s of deliberate display latency on top
    #: of the 2 s read + 2 s write windows, i.e. start at 4 s buffered
    display_start_threshold_s: float = 4.0

    def __post_init__(self) -> None:
        if not self.packet_bits or not self.packet_iterations:
            raise RealTimeError("packet_bits and packet_iterations must be non-empty")
        if self.duration_s <= 0:
            raise RealTimeError(f"duration_s must be positive, got {self.duration_s}")
        if self.buffer_seconds <= 0:
            raise RealTimeError(
                f"buffer_seconds must be positive, got {self.buffer_seconds}"
            )


@dataclass
class PipelineReport:
    """Outcome of one simulated run."""

    duration_s: float
    packets_encoded: int
    packets_decoded: int
    node_cpu_percent: float
    phone_cpu_percent: float
    phone_decode_percent: float
    phone_display_percent: float
    radio_utilization_percent: float
    buffer_min_s: float
    buffer_max_s: float
    underruns: int
    overruns: int
    decode_deadline_misses: int
    mean_end_to_end_latency_s: float
    per_packet_latency_s: list[float] = field(default_factory=list)

    def is_realtime(self) -> bool:
        """No glitches and no decode deadline misses."""
        return (
            self.underruns == 0
            and self.overruns == 0
            and self.decode_deadline_misses == 0
        )


class MonitorPipeline:
    """Wire the entities together and run the simulation."""

    def __init__(
        self,
        config: PipelineConfig,
        node_model: Msp430Model | None = None,
        phone_model: IPhoneModel | None = None,
        radio: BluetoothLink | None = None,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.node_model = node_model if node_model is not None else Msp430Model()
        self.phone_model = phone_model if phone_model is not None else IPhoneModel()
        self.radio = radio if radio is not None else BluetoothLink()
        #: optional telemetry plane: processor job ledgers stream into
        #: it live, and :meth:`run` publishes the report's utilization
        #: gauges so the realtime surface reads like every other one
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    def run(self) -> PipelineReport:
        """Execute the pipeline for the configured duration."""
        cfg = self.config
        system = cfg.system
        sim = Simulator()
        meter = (
            self.telemetry.meter()
            if self.telemetry is not None
            else NULL_METER
        )
        node_cpu = Processor("node", meter=meter)
        phone_cpu = Processor("phone", meter=meter)
        buffer = SampleRingBuffer(
            int(round(cfg.buffer_seconds * system.sample_rate_hz)), strict=False
        )

        period = system.packet_seconds
        encode_time = self.node_model.encode_packet_time_s(system)

        state = {
            "encoded": 0,
            "decoded": 0,
            "radio_busy": 0.0,
            "radio_free_at": 0.0,
            "display_started": False,
            "display_busy": 0.0,
            "deadline_misses": 0,
            "latencies": [],
            "pixel_residue": 0.0,
        }

        def packet_index() -> int:
            return state["encoded"] - 1

        def on_window_ready(s: Simulator) -> None:
            # window index state['encoded'] finished sampling at s.now
            state["encoded"] += 1
            done = node_cpu.submit(s.now, encode_time)
            index = packet_index()
            s.schedule_at(done, lambda s2, i=index: on_encoded(s2, i))

        def on_encoded(s: Simulator, index: int) -> None:
            bits = cfg.packet_bits[index % len(cfg.packet_bits)]
            airtime = self.radio.airtime_s(bits)
            start = max(s.now, state["radio_free_at"])
            state["radio_free_at"] = start + airtime
            state["radio_busy"] += airtime
            s.schedule_at(
                start + airtime, lambda s2, i=index: on_received(s2, i)
            )

        def on_received(s: Simulator, index: int) -> None:
            iterations = cfg.packet_iterations[index % len(cfg.packet_iterations)]
            decode_time = self.phone_model.decode_time_s(
                system, iterations, cfg.decode_pipeline
            )
            done = phone_cpu.submit(s.now, decode_time)
            s.schedule_at(done, lambda s2, i=index: on_decoded(s2, i))

        def on_decoded(s: Simulator, index: int) -> None:
            state["decoded"] += 1
            buffer.write(system.n)
            # the window's last sample was acquired at (index+1)*period
            acquired = (index + 1) * period
            state["latencies"].append(s.now - acquired)
            # real-time deadline: decoding must keep up with production,
            # i.e. finish within one packet period of reception start
            if s.now - acquired > period:
                state["deadline_misses"] += 1
            if (
                not state["display_started"]
                and buffer.occupancy_seconds(system.sample_rate_hz)
                >= cfg.display_start_threshold_s
            ):
                state["display_started"] = True
                s.schedule(0.0, start_display)

        def start_display(s: Simulator) -> None:
            s.schedule_every(self.phone_model.display_period_s, on_display_wakeup)

        def on_display_wakeup(s: Simulator) -> None:
            phone_cpu.submit(s.now, self.phone_model.display_wakeup_cpu_s)
            state["display_busy"] += self.phone_model.display_wakeup_cpu_s
            exact = (
                system.sample_rate_hz * self.phone_model.display_period_s
                + state["pixel_residue"]
            )
            consume = int(exact)
            state["pixel_residue"] = exact - consume
            if consume > 0:
                buffer.read(consume)

        # first window is fully sampled one period after start, then periodic
        sim.schedule_every(period, on_window_ready, start=period)
        sim.run_until(cfg.duration_s)

        elapsed = cfg.duration_s
        display_percent = 100.0 * state["display_busy"] / elapsed
        phone_percent = 100.0 * phone_cpu.utilization(elapsed)
        # Decode share from the phone CPU's busy-time ledger: everything
        # the phone did that was not display work.  Computed from busy
        # seconds directly (not phone_percent - display_percent) so it
        # cannot go negative under rounding or overload.
        decode_busy = phone_cpu.busy_seconds - state["display_busy"]
        decode_percent = 100.0 * max(decode_busy, 0.0) / elapsed
        latencies = state["latencies"]
        for cpu in (node_cpu, phone_cpu):
            meter.set_gauge(
                "realtime_utilization_percent",
                100.0 * cpu.utilization(elapsed),
                processor=cpu.name,
            )
        meter.set_gauge(
            "realtime_deadline_misses", state["deadline_misses"]
        )
        for latency in latencies:
            meter.observe("realtime_end_to_end_latency_seconds", latency)
        return PipelineReport(
            duration_s=elapsed,
            packets_encoded=state["encoded"],
            packets_decoded=state["decoded"],
            node_cpu_percent=100.0 * node_cpu.utilization(elapsed),
            phone_cpu_percent=phone_percent,
            phone_decode_percent=decode_percent,
            phone_display_percent=display_percent,
            radio_utilization_percent=100.0 * state["radio_busy"] / elapsed,
            buffer_min_s=buffer.min_occupancy_after_start / system.sample_rate_hz,
            buffer_max_s=buffer.max_occupancy / system.sample_rate_hz,
            underruns=buffer.underruns,
            overruns=buffer.overruns,
            decode_deadline_misses=state["deadline_misses"],
            mean_end_to_end_latency_s=(
                float(sum(latencies) / len(latencies)) if latencies else 0.0
            ),
            per_packet_latency_s=list(latencies),
        )
