"""Sensing-matrix substrate.

The paper explores three implementations of the random sensing matrix
``Phi`` on the MSP430 mote:

1. on-board 8-bit-quantized Gaussian generation (too slow to be
   real-time),
2. a stored dense Gaussian matrix (memory-infeasible, and the dense
   multiply remains the bottleneck),
3. a **sparse binary** matrix with ``d`` ones per column at ``1/sqrt(d)``
   (the adopted design; satisfies RIP-p rather than RIP-2).

All three are implemented here, along with the reference dense Gaussian /
Bernoulli constructions used on the Matlab side of Figure 2 and the
embedded-style integer PRNGs the firmware would use.
"""

from .base import SensingMatrix
from .dense import GaussianMatrix, BernoulliMatrix
from .quantized import QuantizedGaussianMatrix
from .sparse_binary import SparseBinaryMatrix
from .structured import LfsrCirculantMatrix
from .rng import (
    Lcg16,
    XorShift32,
    GaloisLfsr16,
    FixedPointGaussian,
    CltGaussian,
)
from .properties import (
    mutual_coherence,
    column_norms,
    empirical_rip_constant,
    row_weights,
)

__all__ = [
    "SensingMatrix",
    "GaussianMatrix",
    "BernoulliMatrix",
    "QuantizedGaussianMatrix",
    "SparseBinaryMatrix",
    "LfsrCirculantMatrix",
    "Lcg16",
    "XorShift32",
    "GaloisLfsr16",
    "FixedPointGaussian",
    "CltGaussian",
    "mutual_coherence",
    "column_norms",
    "empirical_rip_constant",
    "row_weights",
]
