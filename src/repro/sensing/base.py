"""Common interface of all sensing matrices."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import SensingError
from ..wavelet.operator import DenseOperator


class SensingMatrix(ABC):
    """An ``m x n`` measurement matrix ``Phi`` with ``y = Phi x``.

    Concrete classes expose the dense float matrix (for the decoder and
    for analysis), a measurement routine, and node-side storage
    accounting used by the platform memory models.
    """

    def __init__(self, m: int, n: int) -> None:
        if m < 1 or n < 1:
            raise SensingError(f"matrix dimensions must be positive, got {m}x{n}")
        if m > n:
            raise SensingError(
                f"compressed sensing requires m <= n, got m={m} > n={n}"
            )
        self.m = int(m)
        self.n = int(n)

    @property
    def shape(self) -> tuple[int, int]:
        """``(m, n)``."""
        return (self.m, self.n)

    @abstractmethod
    def matrix(self) -> np.ndarray:
        """Dense float64 representation of ``Phi``."""

    @abstractmethod
    def storage_bits(self) -> int:
        """Bits of node-side storage needed to hold/regenerate ``Phi``."""

    def measure(self, x: np.ndarray) -> np.ndarray:
        """Float measurement ``y = Phi x`` (decoder-precision reference)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise SensingError(f"expected signal shape ({self.n},), got {x.shape}")
        return self.matrix() @ x

    def operator(self) -> DenseOperator:
        """The matrix wrapped as a :class:`~repro.wavelet.operator.LinearOperator`."""
        return DenseOperator(self.matrix())

    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        return f"{type(self).__name__}(m={self.m}, n={self.n})"
