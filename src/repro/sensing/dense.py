"""Dense reference sensing matrices (the paper's Matlab-side baseline).

:class:`GaussianMatrix` draws i.i.d. ``N(0, 1/N)`` entries and
:class:`BernoulliMatrix` draws symmetric ``+-1/sqrt(N)`` entries — the
two "universal" RIP constructions cited in Section II-A.
"""

from __future__ import annotations

import numpy as np

from ..utils import rng_from
from .base import SensingMatrix


class GaussianMatrix(SensingMatrix):
    """i.i.d. Gaussian ``Phi`` with entries ``N(0, 1/n)``."""

    def __init__(self, m: int, n: int, seed: int = 2011) -> None:
        super().__init__(m, n)
        self.seed = int(seed)
        rng = rng_from(self.seed, "gaussian", m, n)
        self._matrix = rng.standard_normal((m, n)) / np.sqrt(n)
        self._matrix.setflags(write=False)

    def matrix(self) -> np.ndarray:
        return self._matrix

    def storage_bits(self) -> int:
        """Stored as 32-bit floats on the node (paper approach 2)."""
        return 32 * self.m * self.n


class BernoulliMatrix(SensingMatrix):
    """Symmetric Bernoulli ``Phi``: entries ``+-1/sqrt(n)`` w.p. 1/2."""

    def __init__(self, m: int, n: int, seed: int = 2011) -> None:
        super().__init__(m, n)
        self.seed = int(seed)
        rng = rng_from(self.seed, "bernoulli", m, n)
        signs = rng.integers(0, 2, size=(m, n)) * 2 - 1
        self._matrix = signs / np.sqrt(n)
        self._matrix.setflags(write=False)

    def matrix(self) -> np.ndarray:
        return self._matrix

    def storage_bits(self) -> int:
        """One sign bit per entry."""
        return self.m * self.n
