"""Diagnostics on sensing matrices: coherence and empirical RIP.

The paper justifies sparse binary sensing through the RIP-p theory of
Berinde et al.; these utilities let the test-suite and the sensing
ablation verify the practical proxies — bounded mutual coherence, tight
empirical isometry constants on random sparse vectors, and balanced row
weights.
"""

from __future__ import annotations

import numpy as np

from ..utils import rng_from


def column_norms(matrix: np.ndarray) -> np.ndarray:
    """l2 norm of every column."""
    return np.linalg.norm(np.asarray(matrix, dtype=np.float64), axis=0)


def mutual_coherence(matrix: np.ndarray) -> float:
    """Largest normalized inner product between distinct columns."""
    a = np.asarray(matrix, dtype=np.float64)
    norms = column_norms(a)
    norms = np.where(norms == 0, 1.0, norms)
    gram = (a / norms).T @ (a / norms)
    np.fill_diagonal(gram, 0.0)
    return float(np.max(np.abs(gram)))


def row_weights(matrix: np.ndarray) -> np.ndarray:
    """Number of nonzero entries in each row."""
    return np.count_nonzero(np.asarray(matrix) != 0, axis=1)


def empirical_rip_constant(
    matrix: np.ndarray,
    sparsity: int,
    trials: int = 200,
    seed: int = 0,
    norm_order: float = 2.0,
) -> float:
    """Empirical isometry constant over random S-sparse unit vectors.

    Returns the maximum observed ``| ||Phi v||_p / ||v||_p - 1 |`` over
    ``trials`` random ``sparsity``-sparse vectors with Gaussian nonzero
    values.  With ``norm_order=1`` this probes the RIP-p (p=1) flavor
    relevant to sparse binary matrices.
    """
    a = np.asarray(matrix, dtype=np.float64)
    n = a.shape[1]
    if not 0 < sparsity <= n:
        raise ValueError(f"sparsity must be in (0, {n}], got {sparsity}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rng = rng_from(seed, "rip", sparsity, trials)
    worst = 0.0
    for _ in range(trials):
        support = rng.choice(n, size=sparsity, replace=False)
        v = np.zeros(n)
        v[support] = rng.standard_normal(sparsity)
        numerator = np.linalg.norm(a @ v, ord=norm_order)
        denominator = np.linalg.norm(v, ord=norm_order)
        if denominator > 0:
            worst = max(worst, abs(numerator / denominator - 1.0))
    return worst
