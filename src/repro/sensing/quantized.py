"""8-bit quantized Gaussian sensing (the paper's rejected approach 1).

The firmware would generate ``Phi`` entries on the fly from a fixed-point
Gaussian generator quantized to 8 bits.  The paper found the on-board
generation itself broke real-time operation; we keep the construction
(a) to reproduce that negative result from the cost model and (b) to
show the quantized matrix is *numerically* adequate — the failure is
throughput, not recovery quality.
"""

from __future__ import annotations

import numpy as np

from ..errors import SensingError
from ..utils import derive_seed
from .base import SensingMatrix
from .rng import CltGaussian, FixedPointGaussian


class QuantizedGaussianMatrix(SensingMatrix):
    """Gaussian ``Phi`` with entries quantized to int8 on generation.

    Parameters
    ----------
    m, n:
        Matrix dimensions.
    seed:
        Seed for the embedded generator.
    generator:
        ``"box-muller"`` (table-driven fixed point) or ``"clt"``
        (sum of 12 uniforms).
    """

    QUANT_SCALE = 1.0 / 32.0  # int8 step in units of one std deviation

    def __init__(
        self,
        m: int,
        n: int,
        seed: int = 2011,
        generator: str = "box-muller",
    ) -> None:
        super().__init__(m, n)
        self.seed = int(seed)
        self.generator = generator
        child_seed = derive_seed(self.seed, "quantized", generator, m, n)
        if generator == "box-muller":
            source = FixedPointGaussian(seed=child_seed, scale=self.QUANT_SCALE)
            self._ops_per_draw = source.ops_per_draw
            self._quantized = source.draw_matrix(m, n)
        elif generator == "clt":
            source = CltGaussian(seed=child_seed)
            self._ops_per_draw = source.ops_per_draw
            values = np.empty((m, n), dtype=np.int8)
            for i in range(m):
                for j in range(n):
                    values[i, j] = source.next_q7(self.QUANT_SCALE)
            self._quantized = values
        else:
            raise SensingError(
                f"generator must be 'box-muller' or 'clt', got {generator!r}"
            )
        # Dense float view: int8 value * scale gives a ~N(0,1) entry;
        # normalize by sqrt(n) to match the N(0, 1/n) convention.
        self._matrix = self._quantized.astype(np.float64) * (
            self.QUANT_SCALE / np.sqrt(self.n)
        )
        self._matrix.setflags(write=False)

    @property
    def quantized_entries(self) -> np.ndarray:
        """The raw int8 entry matrix (what the node works with)."""
        return self._quantized

    @property
    def draws_required(self) -> int:
        """Gaussian draws needed to build the full matrix."""
        return self.m * self.n

    @property
    def ops_per_draw(self) -> int:
        """Integer operations per draw (input to the MSP430 cost model)."""
        return self._ops_per_draw

    def matrix(self) -> np.ndarray:
        return self._matrix

    def storage_bits(self) -> int:
        """int8 per entry when the matrix is stored rather than regenerated."""
        return 8 * self.m * self.n
