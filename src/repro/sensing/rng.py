"""Embedded-style pseudo-random number generators.

A WBSN mote cannot call :func:`numpy.random.default_rng`; its firmware
uses small integer generators.  These classes are bit-exact software
models of such generators — every draw goes through explicit 16/32-bit
integer arithmetic — so the sensing matrices built from them are exactly
reproducible on a real microcontroller.

Two Gaussian generators model the paper's rejected "approach (1)"
(on-board generation of an 8-bit-quantized normal matrix):

- :class:`FixedPointGaussian` — Box–Muller with table-driven ``sqrt(-2
  ln u)``, the structure a fixed-point firmware implementation would use;
- :class:`CltGaussian` — sum-of-12-uniforms central-limit approximation,
  the classic cheap embedded alternative.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SensingError

_MASK16 = 0xFFFF
_MASK32 = 0xFFFFFFFF


class Lcg16:
    """16-bit linear congruential generator (``x <- 25173 x + 13849``).

    This is the classic "ZX Spectrum" LCG, a realistic choice for a
    16-bit MSP430: one hardware multiply and one add per draw.
    """

    MULTIPLIER = 25173
    INCREMENT = 13849

    def __init__(self, seed: int = 1) -> None:
        self._state = int(seed) & _MASK16

    @property
    def state(self) -> int:
        """Current 16-bit state."""
        return self._state

    def next_u16(self) -> int:
        """Next raw 16-bit output."""
        self._state = (self.MULTIPLIER * self._state + self.INCREMENT) & _MASK16
        return self._state

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` by rejection (unbiased)."""
        if not 0 < bound <= 1 << 16:
            raise SensingError(f"bound must be in (0, 65536], got {bound}")
        limit = (1 << 16) - ((1 << 16) % bound)
        while True:
            value = self.next_u16()
            if value < limit:
                return value % bound


class XorShift32:
    """Marsaglia's 32-bit xorshift generator (shifts 13, 17, 5).

    Three shifts and three XORs per draw; the cheapest high-quality
    generator realizable on a 16-bit MCU using register pairs.
    """

    def __init__(self, seed: int = 2463534242) -> None:
        state = int(seed) & _MASK32
        if state == 0:
            state = 2463534242  # xorshift must not start at zero
        self._state = state

    @property
    def state(self) -> int:
        """Current 32-bit state."""
        return self._state

    def next_u32(self) -> int:
        """Next raw 32-bit output."""
        x = self._state
        x ^= (x << 13) & _MASK32
        x ^= x >> 17
        x ^= (x << 5) & _MASK32
        self._state = x
        return x

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` by rejection (unbiased)."""
        if not 0 < bound <= 1 << 32:
            raise SensingError(f"bound must be in (0, 2^32], got {bound}")
        limit = (1 << 32) - ((1 << 32) % bound)
        while True:
            value = self.next_u32()
            if value < limit:
                return value % bound

    def next_float(self) -> float:
        """Uniform float in ``(0, 1]`` (never exactly zero)."""
        return (self.next_u32() + 1) / 4294967296.0


class GaloisLfsr16:
    """16-bit Galois LFSR with maximal-length taps ``0xB400``.

    Period ``2^16 - 1``; one shift plus a conditional XOR per draw, the
    absolute minimum hardware-friendly generator.
    """

    TAPS = 0xB400

    def __init__(self, seed: int = 0xACE1) -> None:
        state = int(seed) & _MASK16
        if state == 0:
            state = 0xACE1  # all-zero state is absorbing
        self._state = state

    @property
    def state(self) -> int:
        """Current 16-bit state."""
        return self._state

    def next_bit(self) -> int:
        """Next output bit."""
        lsb = self._state & 1
        self._state >>= 1
        if lsb:
            self._state ^= self.TAPS
        return lsb

    def next_u16(self) -> int:
        """Next 16 bits, LSB of the register first."""
        value = 0
        for position in range(16):
            value |= self.next_bit() << position
        return value

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` by rejection (unbiased)."""
        if not 0 < bound <= 1 << 16:
            raise SensingError(f"bound must be in (0, 65536], got {bound}")
        limit = (1 << 16) - ((1 << 16) % bound)
        while True:
            value = self.next_u16()
            if value < limit:
                return value % bound


class FixedPointGaussian:
    """Box–Muller Gaussian draws through a fixed-point lookup structure.

    The radius term ``sqrt(-2 ln u)`` is taken from a 256-entry table
    (as firmware would store in flash) and the angle term uses a
    quarter-wave cosine table of 256 entries; both are quantized to
    Q8.8.  Output is an 8-bit-quantized standard normal in units of
    ``scale`` (i.e. ``value = q * scale`` with ``q`` in ``[-127, 127]``).

    The point is not statistical perfection — it is a faithful cost and
    quantization model of the paper's rejected approach (1).
    """

    TABLE_SIZE = 256

    def __init__(self, seed: int = 1, scale: float = 1.0 / 32.0) -> None:
        if scale <= 0:
            raise SensingError(f"scale must be positive, got {scale}")
        self._uniform = XorShift32(seed)
        self.scale = float(scale)
        # Q8.8 radius table over u in (0, 1]: sqrt(-2 ln u)
        u = (np.arange(self.TABLE_SIZE) + 0.5) / self.TABLE_SIZE
        self._radius_q88 = np.round(np.sqrt(-2.0 * np.log(u)) * 256.0).astype(
            np.int64
        )
        # Q8.8 quarter-wave cosine table
        theta = np.arange(self.TABLE_SIZE) * (math.pi / 2.0) / self.TABLE_SIZE
        self._cos_q88 = np.round(np.cos(theta) * 256.0).astype(np.int64)
        #: integer table operations performed per draw (for cost models)
        self.ops_per_draw = 2 + 2 + 1 + 1  # 2 PRNG draws, 2 lookups, mul, shift

    def _cos_lookup(self, index: int) -> int:
        """Full-wave Q8.8 cosine from the quarter-wave table."""
        quadrant, offset = divmod(index % (4 * self.TABLE_SIZE), self.TABLE_SIZE)
        if quadrant == 0:
            return int(self._cos_q88[offset])
        if quadrant == 1:
            return -int(self._cos_q88[self.TABLE_SIZE - 1 - offset])
        if quadrant == 2:
            return -int(self._cos_q88[offset])
        return int(self._cos_q88[self.TABLE_SIZE - 1 - offset])

    def next_q7(self) -> int:
        """One quantized draw in ``[-127, 127]`` (saturating)."""
        u_index = self._uniform.next_below(self.TABLE_SIZE)
        angle_index = self._uniform.next_below(4 * self.TABLE_SIZE)
        radius = int(self._radius_q88[u_index])  # Q8.8
        cosine = self._cos_lookup(angle_index)  # Q8.8
        # Q8.8 * Q8.8 -> Q16.16; value = radius*cos in Q16.16
        product = radius * cosine
        # convert to units of `scale`: q = round(value / scale) with
        # value = product / 2^16
        q = int(round(product / 65536.0 / self.scale))
        return max(-127, min(127, q))

    def draw_matrix(self, rows: int, cols: int) -> np.ndarray:
        """A ``rows x cols`` int8 matrix of quantized draws."""
        if rows < 1 or cols < 1:
            raise SensingError("matrix dimensions must be positive")
        values = np.empty((rows, cols), dtype=np.int8)
        for i in range(rows):
            for j in range(cols):
                values[i, j] = self.next_q7()
        return values


class CltGaussian:
    """Central-limit Gaussian: ``sum of 12 uniform(0,1) - 6``.

    Twelve 16-bit PRNG draws and adds per sample — the standard trick on
    multiplier-less microcontrollers.  Variance is exactly 1.
    """

    def __init__(self, seed: int = 1) -> None:
        self._uniform = Lcg16(seed)
        #: integer operations per draw (for cost models)
        self.ops_per_draw = 12 + 12

    def next_value(self) -> float:
        """One approximately standard-normal draw in ``[-6, 6]``."""
        total = 0
        for _ in range(12):
            total += self._uniform.next_u16()
        return total / 65536.0 - 6.0

    def next_q7(self, scale: float = 1.0 / 32.0) -> int:
        """One 8-bit-quantized draw in units of ``scale``."""
        if scale <= 0:
            raise SensingError(f"scale must be positive, got {scale}")
        q = int(round(self.next_value() / scale))
        return max(-127, min(127, q))
