"""Sparse binary sensing (the paper's adopted approach 3).

``Phi`` has exactly ``d`` nonzero entries per column, each ``1/sqrt(d)``,
at row positions chosen pseudo-randomly (incoherence between columns).
Such matrices do not satisfy the classical RIP of Eq. (1) but do satisfy
the RIP-p property of Berinde et al. (Allerton 2008), which suffices for
sparse recovery; Figure 2 of the paper confirms no meaningful loss
against dense Gaussian sensing.

On the mote, measuring with this matrix costs only ``n * d`` integer
*additions* (the ``1/sqrt(d)`` scale is folded into the decoder), which
is what makes real-time CS possible on a 16-bit MCU: a 2-second packet
is CS-sampled in 82 ms.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from ..errors import SensingError
from ..utils import check_integer_array, derive_seed
from .base import SensingMatrix
from .rng import XorShift32


class SparseBinaryMatrix(SensingMatrix):
    """Sparse binary ``Phi``: ``d`` ones per column, value ``1/sqrt(d)``.

    Row positions are drawn with an embedded-style
    :class:`~repro.sensing.rng.XorShift32` partial Fisher–Yates shuffle,
    exactly reproducible on the node and the coordinator from the shared
    seed (the paper stores the same fixed matrix on both sides).
    """

    def __init__(self, m: int, n: int, d: int = 12, seed: int = 2011) -> None:
        super().__init__(m, n)
        if not 0 < d <= m:
            raise SensingError(f"d must satisfy 0 < d <= m={m}, got {d}")
        self.d = int(d)
        self.seed = int(seed)

        generator = XorShift32(derive_seed(self.seed, "sparse-binary", m, n, d))
        rows = np.empty((n, self.d), dtype=np.int32)
        pool = np.arange(m, dtype=np.int32)
        for column in range(n):
            # partial Fisher–Yates: first d entries become this column's rows
            for i in range(self.d):
                j = i + generator.next_below(m - i)
                pool[i], pool[j] = pool[j], pool[i]
            rows[column] = np.sort(pool[: self.d])
        self._rows_per_column = rows
        self._rows_per_column.setflags(write=False)

        data = np.full(n * self.d, 1.0 / math.sqrt(self.d))
        col_indices = np.repeat(np.arange(n), self.d)
        self._csc = sp.csc_matrix(
            (data, (rows.ravel(), col_indices)), shape=(m, n)
        )
        self._csr = self._csc.tocsr()
        # unscaled 0/1 pattern with integer data: exact batched
        # accumulation (matching measure_integer) via one sparse matmul
        ones = np.ones(n * self.d, dtype=np.int64)
        self._int_csr = sp.csr_matrix(
            (ones, (rows.ravel(), col_indices)), shape=(m, n)
        )

    # ------------------------------------------------------------------
    @property
    def rows_per_column(self) -> np.ndarray:
        """``(n, d)`` array: the row indices of each column's ones."""
        return self._rows_per_column

    @property
    def scale(self) -> float:
        """The common nonzero value ``1/sqrt(d)``."""
        return 1.0 / math.sqrt(self.d)

    def matrix(self) -> np.ndarray:
        return self._csr.toarray()

    def sparse(self) -> sp.csr_matrix:
        """The CSR form (fast float measurements and analysis)."""
        return self._csr

    def measure(self, x: np.ndarray) -> np.ndarray:
        """Float measurement using the sparse structure."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise SensingError(f"expected signal shape ({self.n},), got {x.shape}")
        return self._csr @ x

    def measure_integer(self, x: np.ndarray) -> np.ndarray:
        """Node-side integer measurement: pure accumulation, no scaling.

        ``y_int[i] = sum of x[j] over columns j whose d ones hit row i``.
        The decoder divides by ``sqrt(d)`` (equivalently scales its
        operator), so the mote never multiplies — this is the kernel the
        MSP430 executes in 82 ms per 2-second packet.

        Accumulates in int32 exactly as the firmware would; with 12-bit
        samples and typical row weights (``n*d/m``) the sums stay far
        below the int32 rails, and we check that explicitly.
        """
        x = check_integer_array(np.asarray(x), "x")
        if x.shape != (self.n,):
            raise SensingError(f"expected signal shape ({self.n},), got {x.shape}")
        accumulator = np.zeros(self.m, dtype=np.int64)
        np.add.at(
            accumulator,
            self._rows_per_column.ravel(),
            np.repeat(x.astype(np.int64), self.d),
        )
        if accumulator.max(initial=0) > 2**31 - 1 or accumulator.min(initial=0) < -(2**31):
            raise SensingError("integer measurement overflows 32-bit accumulator")
        return accumulator

    def measure_integer_batch(self, x: np.ndarray) -> np.ndarray:
        """Integer sensing of many windows at once: ``(B, n) -> (B, m)``.

        One sparse integer matmul replaces ``B`` accumulation passes.
        Integer arithmetic is exact, so every row equals
        ``measure_integer(x[b])`` bit for bit; the same 32-bit
        accumulator headroom check applies to the whole batch.
        """
        x = check_integer_array(np.asarray(x), "x")
        if x.ndim != 2 or x.shape[1] != self.n:
            raise SensingError(
                f"expected batch shape (B, {self.n}), got {x.shape}"
            )
        accumulator = np.asarray(
            (self._int_csr @ x.astype(np.int64).T).T, dtype=np.int64
        )
        if (
            accumulator.max(initial=0) > 2**31 - 1
            or accumulator.min(initial=0) < -(2**31)
        ):
            raise SensingError("integer measurement overflows 32-bit accumulator")
        return accumulator

    def additions_per_packet(self) -> int:
        """Integer additions per measured packet (``n * d``)."""
        return self.n * self.d

    def storage_bits(self) -> int:
        """Row-index storage: ``n*d`` indices of ``ceil(log2 m)`` bits."""
        index_bits = max(1, math.ceil(math.log2(self.m)))
        return self.n * self.d * index_bits

    def describe(self) -> str:
        return (
            f"SparseBinaryMatrix(m={self.m}, n={self.n}, d={self.d}, "
            f"storage={self.storage_bits() // 8} B)"
        )
